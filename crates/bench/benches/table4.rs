//! Table IV: the reversible-logic benchmark suite — gate count and
//! quantum cost per benchmark, side by side with the paper's reported
//! results (RMRLS and the best published results from Maslov's page
//! [13]).
//!
//! Default: 3 s per benchmark; `RMRLS_FULL=1` uses the paper's 60 s.

use rmrls_bench::{print_row, print_rule, table4_options};
use rmrls_core::synthesize;
use rmrls_spec::benchmarks::table4_suite;

/// Paper Table IV: (name, ours gates, ours cost, [13] gates, [13] cost);
/// `None` where the paper prints `—`.
#[allow(clippy::type_complexity)]
const PAPER: &[(&str, usize, u64, Option<usize>, Option<u64>)] = &[
    ("2of5", 20, 100, Some(15), Some(107)),
    ("rd32", 4, 8, Some(4), Some(8)),
    ("3_17", 6, 14, Some(6), Some(12)),
    ("4_49", 13, 61, Some(16), Some(58)),
    ("alu", 18, 114, None, None),
    ("rd53", 13, 116, Some(16), Some(75)),
    ("xor5", 4, 4, Some(4), Some(4)),
    ("4mod5", 5, 13, Some(5), Some(13)),
    ("5mod5", 11, 91, Some(10), Some(90)),
    ("ham3", 5, 9, Some(5), Some(7)),
    ("ham7", 24, 68, Some(23), Some(81)),
    ("hwb4", 15, 35, Some(17), Some(63)),
    ("decod24", 11, 31, None, None),
    ("shift10", 27, 1469, Some(19), Some(1198)),
    ("shift15", 30, 3500, None, None),
    ("shift28", 56, 14310, None, None),
    ("5one013", 19, 95, None, None),
    ("5one245", 20, 104, None, None),
    ("6one135", 5, 5, None, None),
    ("6one0246", 6, 6, None, None),
    ("majority3", 4, 16, None, None),
    ("majority5", 16, 104, None, None),
    ("graycode6", 5, 5, Some(5), Some(5)),
    ("graycode10", 9, 9, Some(9), Some(9)),
    ("graycode20", 19, 19, Some(19), Some(19)),
    ("mod5adder", 19, 127, Some(21), Some(125)),
    ("mod32adder", 15, 154, None, None),
    ("mod15adder", 10, 71, None, None),
    ("mod64adder", 26, 333, None, None),
];

fn opt_str<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "-".into())
}

fn main() {
    let opts = table4_options();
    println!("# Table IV — reversible logic benchmarks");
    println!(
        "time limit {:?} per benchmark (paper: 60 s); verification by simulation\n",
        opts.time_limit.unwrap()
    );

    let widths = [11usize, 6, 8, 6, 8, 11, 10, 10, 10];
    print_row(
        &[
            "benchmark".into(),
            "wires".into(),
            "garbage".into(),
            "gates".into(),
            "cost".into(),
            "paper gates".into(),
            "paper cost".into(),
            "[13] gates".into(),
            "[13] cost".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    for bench in table4_suite() {
        let paper = PAPER.iter().find(|r| r.0 == bench.name);
        let spec = bench.to_multi_pprm();
        let (gates, cost) = match synthesize(&spec, &opts) {
            Ok(r) => {
                // Verify: exhaustively up to 2^20 rows, sampled beyond.
                let circuit = &r.circuit;
                if bench.width() <= 20 {
                    for x in 0..1u64 << bench.width() {
                        assert_eq!(circuit.apply(x), spec.eval(x), "{}: row {x}", bench.name);
                    }
                } else {
                    for i in 0..4096u64 {
                        let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) & ((1 << bench.width()) - 1);
                        assert_eq!(circuit.apply(x), spec.eval(x), "{}: row {x}", bench.name);
                    }
                }
                (Some(circuit.gate_count()), Some(circuit.quantum_cost()))
            }
            Err(_) => (None, None),
        };
        print_row(
            &[
                bench.name.into(),
                bench.width().to_string(),
                bench.garbage_inputs.to_string(),
                opt_str(gates),
                opt_str(cost),
                opt_str(paper.map(|r| r.1)),
                opt_str(paper.map(|r| r.2)),
                opt_str(paper.and_then(|r| r.3)),
                opt_str(paper.and_then(|r| r.4)),
            ],
            &widths,
        );
    }
    println!("\n'-' under gates/cost: not synthesized within the limit (paper hit the same on ham#/hwb#/symm families of [13]).");
}
