//! Examples 1–8 (§V-C) and Figs. 7/8: each literature example is
//! synthesized, verified by simulation, and compared against the gate
//! count of the circuit published in the paper.

use rmrls_bench::{print_row, print_rule, table4_options};
use rmrls_circuit::render;
use rmrls_core::synthesize;
use rmrls_spec::benchmarks::paper_example;

/// Gate counts of the circuits printed in the paper for Examples 1–8.
const PAPER_GATES: [usize; 8] = [4, 3, 3, 6, 7, 3, 4, 4];

fn main() {
    println!("# Examples 1-8 (§V-C) and Figs. 7/8\n");
    let opts = table4_options();

    let widths = [8usize, 6, 12, 10, 40];
    print_row(
        &[
            "example".into(),
            "gates".into(),
            "paper gates".into(),
            "cost".into(),
            "circuit".into(),
        ],
        &widths,
    );
    print_rule(&widths);

    for n in 1..=8usize {
        let bench = paper_example(n);
        let spec = bench.to_multi_pprm();
        let result = synthesize(&spec, &opts).unwrap_or_else(|e| panic!("ex{n}: {e}"));
        assert_eq!(
            result.circuit.to_permutation(),
            spec.to_permutation(),
            "ex{n}: circuit does not realize the published specification"
        );
        print_row(
            &[
                format!("ex{n}"),
                result.circuit.gate_count().to_string(),
                PAPER_GATES[n - 1].to_string(),
                result.circuit.quantum_cost().to_string(),
                result.circuit.to_string(),
            ],
            &widths,
        );
        if n == 1 {
            println!(
                "\nFig. 7 — Example 1 realization:\n{}",
                render(&result.circuit)
            );
        }
        if n == 8 {
            println!(
                "\nFig. 8 — augmented full-adder realization:\n{}",
                render(&result.circuit)
            );
        }
    }
}
