//! Table I: gate-count distribution over all 40 320 three-variable
//! reversible functions.
//!
//! Columns regenerated: RMRLS (ours, NCT), the MMD transformation-based
//! baseline (the "Miller [7]" comparison column, NCTS in the paper —
//! ours is NCT-only so slightly pessimistic), and the exact optimal
//! distributions for the NCT and NCTS libraries (the "Optimal [16]"
//! columns, reproduced exactly by BFS).
//!
//! Default: every 20th function by lexicographic rank (2 016 functions);
//! `RMRLS_FULL=1` sweeps all 40 320.

use rmrls_baselines::{mmd_synthesize, MmdVariant, OptimalLibrary, OptimalTable};
use rmrls_bench::{full_scale, print_row, print_rule, table1_options, SizeHistogram};
use rmrls_core::{synthesize, FredkinMode};
use rmrls_spec::Permutation;

/// Paper Table I, for side-by-side printing: (gates, ours, miller,
/// kerntopf, optimal-NCT, optimal-NCTS).
const PAPER: &[(usize, usize, usize, usize, usize, usize)] = &[
    (11, 0, 5, 0, 0, 0),
    (10, 0, 110, 0, 0, 0),
    (9, 36, 792, 86, 0, 0),
    (8, 3351, 4726, 2740, 577, 32),
    (7, 12476, 11199, 11774, 10253, 6817),
    (6, 13596, 12076, 13683, 17049, 17531),
    (5, 7479, 7518, 8068, 8921, 11194),
    (4, 2642, 2981, 3038, 2780, 3752),
    (3, 625, 767, 781, 625, 844),
    (2, 102, 130, 134, 102, 134),
    (1, 12, 15, 15, 12, 15),
    (0, 1, 1, 1, 1, 1),
];

fn main() {
    let step = if full_scale() { 1 } else { 20 };
    let total = (0..40320u128).step_by(step).count();
    println!("# Table I — all 3-variable reversible functions");
    println!("sample: {total} of 40320 functions (step {step}); RMRLS_FULL=1 for the full sweep\n");

    let opts = table1_options();
    let opts_ncts = table1_options().with_fredkin_substitutions(FredkinMode::SwapOnly);
    let mut ours = SizeHistogram::new();
    let mut ours_ncts = SizeHistogram::new();
    let mut mmd = SizeHistogram::new();
    let mut opt_nct_h = SizeHistogram::new();
    let mut opt_ncts_h = SizeHistogram::new();

    let opt_nct = OptimalTable::build(OptimalLibrary::Nct);
    let opt_ncts = OptimalTable::build(OptimalLibrary::Ncts);

    for rank in (0..40320u128).step_by(step) {
        let spec = Permutation::from_rank(3, rank);
        let result = synthesize(&spec.to_multi_pprm(), &opts)
            .unwrap_or_else(|e| panic!("rank {rank} failed: {e}"));
        assert_eq!(
            result.circuit.to_permutation(),
            spec.as_slice(),
            "rank {rank}: circuit does not realize the function"
        );
        ours.record(result.circuit.gate_count());
        let ncts = synthesize(&spec.to_multi_pprm(), &opts_ncts)
            .unwrap_or_else(|e| panic!("rank {rank} (NCTS) failed: {e}"));
        assert_eq!(
            ncts.circuit.to_permutation(),
            spec.as_slice(),
            "rank {rank} NCTS"
        );
        ours_ncts.record(ncts.circuit.gate_count());
        mmd.record(mmd_synthesize(&spec, MmdVariant::Bidirectional).gate_count());
        opt_nct_h.record(opt_nct.gate_count(&spec));
        opt_ncts_h.record(opt_ncts.gate_count(&spec));
    }

    let widths = [5usize, 10, 10, 10, 11, 12, 13, 13];
    print_row(
        &[
            "gates".into(),
            "ours NCT".into(),
            "ours NCTS".into(),
            "MMD bidi".into(),
            "opt NCT".into(),
            "opt NCTS".into(),
            "paper ours".into(),
            "paper opt".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    let max = ours
        .max_size()
        .max(mmd.max_size())
        .max(opt_nct_h.max_size());
    for gates in (0..=max).rev() {
        let paper = PAPER.iter().find(|r| r.0 == gates);
        print_row(
            &[
                gates.to_string(),
                ours.count(gates).to_string(),
                ours_ncts.count(gates).to_string(),
                mmd.count(gates).to_string(),
                opt_nct_h.count(gates).to_string(),
                opt_ncts_h.count(gates).to_string(),
                paper.map(|r| r.1.to_string()).unwrap_or_default(),
                paper.map(|r| r.4.to_string()).unwrap_or_default(),
            ],
            &widths,
        );
    }
    print_rule(&widths);
    print_row(
        &[
            "avg".into(),
            format!("{:.2}", ours.average()),
            format!("{:.2}", ours_ncts.average()),
            format!("{:.2}", mmd.average()),
            format!("{:.2}", opt_nct_h.average()),
            format!("{:.2}", opt_ncts_h.average()),
            "6.10".into(),
            "5.87".into(),
        ],
        &widths,
    );
    println!(
        "\npaper row: ours 6.10 | Miller [7] 6.18 | Kerntopf [6] 6.01 | optimal NCT 5.87 | optimal NCTS 5.63"
    );
    println!(
        "exact full-sweep optimal averages from our BFS: NCT {:.4}, NCTS {:.4}",
        opt_nct.average(),
        opt_ncts.average()
    );
}
