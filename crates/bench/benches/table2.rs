//! Table II: circuit-size distribution of random four-variable
//! reversible functions (§V-B: 50 000 samples, 60 s limit, 40-gate cap,
//! greedy-family pruning; all synthesized).
//!
//! Default: 300 samples with a 250 ms limit; `RMRLS_FULL=1` for the
//! paper-scale run.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rmrls_bench::{print_row, print_rule, scaled, table2_options, SizeHistogram};
use rmrls_core::synthesize;
use rmrls_spec::random_permutation;

/// Paper Table II: (circuit size, number of circuits) for 50 000 samples.
const PAPER: &[(usize, usize)] = &[
    (7, 3),
    (8, 34),
    (9, 159),
    (10, 604),
    (11, 1753),
    (12, 3917),
    (13, 6726),
    (14, 8704),
    (15, 9053),
    (16, 7665),
    (17, 5435),
    (18, 3225),
    (19, 1631),
    (20, 728),
    (21, 264),
    (22, 77),
    (23, 20),
    (24, 1),
];

fn main() {
    let samples = scaled(300, 50_000);
    let opts = table2_options();
    println!("# Table II — random 4-variable reversible functions");
    println!(
        "sample: {samples} functions, time limit {:?}, cap {} gates (paper: 50000 @ 60s)\n",
        opts.time_limit.unwrap(),
        opts.max_gates.unwrap()
    );

    let mut rng = StdRng::seed_from_u64(0x4242);
    let mut hist = SizeHistogram::new();
    let mut failures = 0usize;
    for i in 0..samples {
        let spec = random_permutation(4, &mut rng);
        match synthesize(&spec.to_multi_pprm(), &opts) {
            Ok(r) => {
                assert_eq!(
                    r.circuit.to_permutation(),
                    spec.as_slice(),
                    "sample {i}: invalid circuit"
                );
                hist.record(r.circuit.gate_count());
            }
            Err(_) => failures += 1,
        }
    }

    let widths = [12usize, 15, 18];
    print_row(
        &[
            "circuit size".into(),
            "no. of circuits".into(),
            "paper (of 50000)".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    let paper_max = PAPER.iter().map(|r| r.0).max().unwrap();
    for size in 1..=hist.max_size().max(paper_max) {
        let paper = PAPER
            .iter()
            .find(|r| r.0 == size)
            .map(|r| r.1.to_string())
            .unwrap_or_default();
        if hist.count(size) == 0 && paper.is_empty() {
            continue;
        }
        print_row(
            &[size.to_string(), hist.count(size).to_string(), paper],
            &widths,
        );
    }
    print_rule(&widths);
    println!(
        "synthesized {}/{samples} ({} failed); average size {:.2} (paper: all 50000 synthesized)",
        hist.samples(),
        failures,
        hist.average()
    );
}
