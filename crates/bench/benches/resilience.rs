//! Resilience-layer benchmark (PR 5): what never-fail mode costs.
//!
//! Three questions, each also asserted as a correctness check:
//!
//! 1. **Fallback overhead when idle** — on a workload the configured
//!    search solves outright, `--fallback` must be free: identical
//!    results, zero tier-2/tier-3 descents, and (full mode) a
//!    wall-clock delta under 5%.
//! 2. **Fallback tier hit rates when starved** — on a workload whose
//!    node budget is deliberately too small, the ladder must leave
//!    nothing unsolved; the report records which tier rescued how many
//!    jobs.
//! 3. **Degraded-mode overhead** — the same hard search with and
//!    without a memory budget that forces queue shedding: how much
//!    slower (or faster — a smaller frontier can win) a shed-and-
//!    continue run is, and that it still terminates cleanly.
//!
//! Output: a human-readable summary plus the `BENCH_pr5.json` payload
//! on request (`RMRLS_BENCH_OUT=path`). `RMRLS_SMOKE=1` shrinks the
//! workload for CI (the <5% timing assertion is full-mode only; smoke
//! timing is noise).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmrls_core::{synthesize, SynthesisOptions};
use rmrls_engine::manifest::{Admission, BatchJob, SpecData};
use rmrls_engine::{run_batch, suite_admissions, BatchOptions, ShutdownHandles};
use rmrls_obs::Json;
use rmrls_pprm::MultiPprm;
use rmrls_spec::random_permutation;

fn smoke() -> bool {
    std::env::var("RMRLS_SMOKE")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// All-solvable workload: the example suite plus random 3/4-variable
/// permutations — tier 1 solves every job, so the ladder never fires.
fn easy_workload(randoms: usize) -> Vec<Admission> {
    let mut jobs = suite_admissions("examples").expect("bundled suite");
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for i in 0..randoms {
        let n = 3 + (i % 2);
        jobs.push(Admission::Job(BatchJob {
            name: format!("easy{n}v-{i}"),
            origin: "bench:easy".to_string(),
            spec: SpecData::Perm(random_permutation(n, &mut rng)),
        }));
    }
    jobs
}

/// Starved workload: random 5-variable permutations under a node
/// budget far too small for the full search — most jobs need the
/// ladder.
fn hard_workload(count: usize) -> Vec<Admission> {
    let mut rng = StdRng::seed_from_u64(0xbad5eed);
    (0..count)
        .map(|i| {
            Admission::Job(BatchJob {
                name: format!("hard5v-{i}"),
                origin: "bench:hard".to_string(),
                spec: SpecData::Perm(random_permutation(5, &mut rng)),
            })
        })
        .collect()
}

fn options(fallback: bool, max_nodes: u64) -> BatchOptions {
    BatchOptions {
        fallback,
        synthesis: rmrls_core::SynthesisOptions::new()
            .with_stop_at_first(true)
            .with_max_nodes(max_nodes),
        ..BatchOptions::default()
    }
}

/// Median wall-clock over `reps` runs of a batch.
fn timed(jobs: &[Admission], opts: &BatchOptions, reps: usize) -> (f64, rmrls_engine::BatchRun) {
    let mut secs: Vec<f64> = Vec::new();
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let run = run_batch(jobs, opts, &ShutdownHandles::new());
        secs.push(start.elapsed().as_secs_f64());
        last = Some(run);
    }
    secs.sort_by(f64::total_cmp);
    (secs[secs.len() / 2], last.expect("reps >= 1"))
}

fn main() {
    let smoke = smoke();
    let (easy_randoms, hard_count, reps) = if smoke { (8, 4, 1) } else { (56, 24, 3) };

    println!("# Resilience layer: fallback & degraded-mode overhead");
    println!("mode: {}\n", if smoke { "smoke" } else { "full" });

    // ---- 1. Fallback overhead on an all-solvable workload ----------
    let easy = easy_workload(easy_randoms);
    // Warm-up pass so neither timed configuration pays first-run costs
    // (allocator growth, page faults) that would skew the comparison.
    run_batch(&easy, &options(false, 200_000), &ShutdownHandles::new());
    let (plain_secs, plain) = timed(&easy, &options(false, 200_000), reps);
    let (ladder_secs, ladder) = timed(&easy, &options(true, 200_000), reps);
    assert_eq!(plain.counters.jobs_unsolved, 0, "easy workload all solves");
    assert_eq!(
        ladder.results_jsonl(),
        plain.results_jsonl(),
        "an idle ladder must not change results"
    );
    assert_eq!(ladder.counters.solved_by_relaxed, 0, "tier 2 never fired");
    assert_eq!(ladder.counters.solved_by_mmd, 0, "tier 3 never fired");
    let overhead = (ladder_secs - plain_secs) / plain_secs;
    println!(
        "easy workload ({} jobs): rmrls-only {plain_secs:.3}s, --fallback {ladder_secs:.3}s \
         ({:+.1}% — ladder idle)",
        easy.len(),
        overhead * 100.0
    );
    if !smoke {
        // The contract is one-sided: an idle ladder must not be
        // *slower* by 5%; measuring faster is scheduler noise.
        assert!(
            overhead < 0.05,
            "idle fallback must cost <5% wall-clock, measured {:+.1}%",
            overhead * 100.0
        );
    }

    // ---- 2. Tier hit rates on a starved workload -------------------
    let hard = hard_workload(hard_count);
    let (hard_secs, rescued) = timed(&hard, &options(true, 200), reps.min(2));
    assert_eq!(
        rescued.counters.jobs_unsolved, 0,
        "the ladder leaves nothing unsolved"
    );
    assert_eq!(rescued.counters.verify_failures, 0);
    let c = &rescued.counters;
    println!(
        "hard workload ({} jobs, 200-node budget): {hard_secs:.3}s — solved_by: \
         {} rmrls, {} relaxed, {} mmd",
        hard.len(),
        c.solved_by_rmrls,
        c.solved_by_relaxed,
        c.solved_by_mmd
    );
    assert!(
        c.solved_by_relaxed + c.solved_by_mmd > 0,
        "a starved workload must actually descend the ladder"
    );

    // ---- 3. Degraded-mode (queue shedding) overhead ----------------
    // One hard 5-variable spec, searched directly: unbudgeted vs a
    // live-term cap that forces shedding. stop_at_first keeps both
    // searches comparable; the budgeted run must shed at least once
    // and still terminate cleanly (solved or a clean stop).
    let mut rng = StdRng::seed_from_u64(7);
    let spec_perm = random_permutation(5, &mut rng);
    let spec = MultiPprm::from_permutation(spec_perm.as_slice(), 5);
    let base = SynthesisOptions::new()
        .with_stop_at_first(true)
        .with_initial_dive(false)
        .with_max_nodes(30_000);
    let start = Instant::now();
    let unbudgeted = synthesize(&spec, &base);
    let free_secs = start.elapsed().as_secs_f64();
    let budgeted_opts = base.clone().with_max_live_terms(2_000);
    let start = Instant::now();
    let budgeted = synthesize(&spec, &budgeted_opts);
    let degraded_secs = start.elapsed().as_secs_f64();
    let (sheds, peak) = match &budgeted {
        Ok(s) => (s.stats.memory_sheds, s.stats.live_terms_peak),
        Err(e) => (e.stats.memory_sheds, e.stats.live_terms_peak),
    };
    assert!(sheds >= 1, "the cap must force at least one shed");
    let degraded_overhead = (degraded_secs - free_secs) / free_secs;
    println!(
        "degraded mode (5-var, 2k live-term cap): unbudgeted {free_secs:.3}s, \
         budgeted {degraded_secs:.3}s ({:+.1}%), sheds: {sheds}, peak live terms: {peak}",
        degraded_overhead * 100.0
    );

    let report = Json::Obj(vec![
        ("bench".to_string(), Json::str("resilience_pr5")),
        ("smoke".to_string(), Json::Bool(smoke)),
        (
            "fallback_idle".to_string(),
            Json::Obj(vec![
                ("jobs".to_string(), Json::uint(easy.len() as u64)),
                ("reps".to_string(), Json::uint(reps as u64)),
                ("seconds_rmrls_only".to_string(), Json::Num(plain_secs)),
                ("seconds_fallback".to_string(), Json::Num(ladder_secs)),
                ("overhead_fraction".to_string(), Json::Num(overhead)),
                (
                    "tier2_or_tier3_hits".to_string(),
                    Json::uint(ladder.counters.solved_by_relaxed + ladder.counters.solved_by_mmd),
                ),
            ]),
        ),
        (
            "fallback_starved".to_string(),
            Json::Obj(vec![
                ("jobs".to_string(), Json::uint(hard.len() as u64)),
                ("node_budget".to_string(), Json::uint(200)),
                ("seconds".to_string(), Json::Num(hard_secs)),
                ("solved_by_rmrls".to_string(), Json::uint(c.solved_by_rmrls)),
                (
                    "solved_by_relaxed".to_string(),
                    Json::uint(c.solved_by_relaxed),
                ),
                ("solved_by_mmd".to_string(), Json::uint(c.solved_by_mmd)),
                ("jobs_unsolved".to_string(), Json::uint(c.jobs_unsolved)),
            ]),
        ),
        (
            "degraded_mode".to_string(),
            Json::Obj(vec![
                ("max_live_terms".to_string(), Json::uint(2_000)),
                ("seconds_unbudgeted".to_string(), Json::Num(free_secs)),
                ("seconds_budgeted".to_string(), Json::Num(degraded_secs)),
                (
                    "overhead_fraction".to_string(),
                    Json::Num(degraded_overhead),
                ),
                ("memory_sheds".to_string(), Json::uint(sheds)),
                ("live_terms_peak".to_string(), Json::uint(peak)),
                (
                    "solved".to_string(),
                    Json::Bool(budgeted.is_ok() && unbudgeted.is_ok()),
                ),
            ]),
        ),
    ]);

    if let Ok(path) = std::env::var("RMRLS_BENCH_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, format!("{report}\n")).expect("write RMRLS_BENCH_OUT");
            println!("\nwrote {path}");
        }
    }
}
