//! Table VI: random reversible circuits of 6-16 variables with at most
//! 20 gates (1000 samples each in the paper).

use rmrls_bench::run_scalability_table;

const PAPER_FAIL: &[(usize, f64)] = &[
    (6, 0.1),
    (7, 0.5),
    (8, 2.6),
    (9, 5.6),
    (10, 6.6),
    (11, 9.0),
    (12, 11.1),
    (13, 12.5),
    (14, 15.1),
    (15, 16.2),
    (16, 16.0),
];

fn main() {
    run_scalability_table("Table VI", 20, 25, 1000, PAPER_FAIL, 0x66);
}
