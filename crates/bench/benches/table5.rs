//! Table V: random reversible circuits of 6-16 variables with at most
//! 15 gates (500 samples each in the paper).

use rmrls_bench::run_scalability_table;

const PAPER_FAIL: &[(usize, f64)] = &[
    (6, 0.2),
    (7, 0.0),
    (8, 0.8),
    (9, 1.2),
    (10, 0.6),
    (11, 1.4),
    (12, 2.8),
    (13, 3.2),
    (14, 3.0),
    (15, 4.6),
    (16, 3.6),
];

fn main() {
    run_scalability_table("Table V", 15, 25, 500, PAPER_FAIL, 0x55);
}
