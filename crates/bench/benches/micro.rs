//! Criterion micro-benchmarks of the individual components: the ANF
//! transform, PPRM substitution, a full RMRLS synthesis, the MMD
//! baseline, and the optimal-table BFS.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rmrls_baselines::{
    mmd_synthesize, MmdVariant, OptimalLibrary, OptimalTable, PeepholeOptimizer,
};
use rmrls_circuit::decompose_to_nct;
use rmrls_core::{synthesize, synthesize_with_observer, Observer, SynthesisOptions};
use rmrls_pprm::{anf_transform, walsh_spectrum, BitTable, MultiPprm, Term};
use rmrls_spec::Permutation;

fn bench_anf(c: &mut Criterion) {
    let mut group = c.benchmark_group("anf_transform");
    for n in [8usize, 12, 16] {
        let table = BitTable::from_fn(1 << n, |x| x.count_ones() % 3 == 1);
        group.bench_function(format!("n{n}"), |b| {
            b.iter_batched(
                || table.clone(),
                |mut t| {
                    anf_transform(&mut t, n);
                    black_box(t)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_substitution(c: &mut Criterion) {
    let spec = Permutation::from_rank(4, 20_123_456_789).to_multi_pprm();
    c.bench_function("multipprm_substitute", |b| {
        b.iter(|| {
            let (next, elim) = spec.substitute(1, Term::of(&[0, 2]));
            black_box((next.total_terms(), elim))
        })
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    group.sample_size(20);
    let fig1 = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
    let opts = SynthesisOptions::new();
    group.bench_function("fig1_3var", |b| {
        b.iter(|| {
            black_box(
                synthesize(&fig1, &opts)
                    .expect("solvable")
                    .circuit
                    .gate_count(),
            )
        })
    });
    let four = Permutation::from_rank(4, 9_876_543_210).to_multi_pprm();
    let opts4 = SynthesisOptions::new()
        .with_stop_at_first(true)
        .with_max_gates(40)
        .with_max_nodes(100_000);
    group.bench_function("random_4var_first_solution", |b| {
        b.iter(|| {
            black_box(
                synthesize(&four, &opts4)
                    .expect("solvable")
                    .circuit
                    .gate_count(),
            )
        })
    });
    group.finish();
}

/// The `--report`/`--log-json` acceptance check: a null observer must
/// not measurably slow the search relative to the plain entry point.
/// Compare `synthesize/fig1_3var` above against these two runs.
fn bench_observer_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer_overhead");
    group.sample_size(20);
    let fig1 = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
    let opts = SynthesisOptions::new();
    group.bench_function("fig1_null_observer", |b| {
        b.iter(|| {
            let mut obs = Observer::null();
            black_box(
                synthesize_with_observer(&fig1, &opts, &mut obs)
                    .expect("solvable")
                    .circuit
                    .gate_count(),
            )
        })
    });
    group.bench_function("fig1_metrics_observer", |b| {
        b.iter(|| {
            let mut obs = Observer::null().with_metrics();
            black_box(
                synthesize_with_observer(&fig1, &opts, &mut obs)
                    .expect("solvable")
                    .circuit
                    .gate_count(),
            )
        })
    });
    group.finish();
}

fn bench_mmd(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut group = c.benchmark_group("mmd");
    let mut rng = StdRng::seed_from_u64(5);
    for n in [3usize, 6, 8] {
        let spec = rmrls_spec::random_permutation(n, &mut rng);
        group.bench_function(format!("bidirectional_n{n}"), |b| {
            b.iter(|| black_box(mmd_synthesize(&spec, MmdVariant::Bidirectional).gate_count()))
        });
    }
    group.finish();
}

fn bench_spectrum(c: &mut Criterion) {
    let table = BitTable::from_fn(1 << 12, |x| x.count_ones() % 3 == 1);
    c.bench_function("walsh_spectrum_n12", |b| {
        b.iter(|| black_box(walsh_spectrum(&table, 12).len()))
    });
}

fn bench_fredkin_substitution(c: &mut Criterion) {
    let spec = Permutation::from_rank(4, 9_876_543_210).to_multi_pprm();
    c.bench_function("multipprm_substitute_fredkin", |b| {
        b.iter(|| black_box(spec.substitute_fredkin(0, 1, Term::var(3)).1))
    });
}

fn bench_decompose(c: &mut Criterion) {
    use rmrls_circuit::{Circuit, Gate};
    let wide = Circuit::from_gates(10, vec![Gate::toffoli(&[0, 1, 2, 3, 4, 5, 6, 7], 8)]);
    c.bench_function("decompose_tof9_to_nct", |b| {
        b.iter(|| black_box(decompose_to_nct(&wide).expect("free line").gate_count()))
    });
}

fn bench_peephole(c: &mut Criterion) {
    let mut group = c.benchmark_group("peephole");
    group.sample_size(10);
    let optimizer = PeepholeOptimizer::new();
    let spec = Permutation::from_rank(3, 20_000);
    let circuit = mmd_synthesize(&spec, MmdVariant::Unidirectional);
    group.bench_function("optimize_mmd_3var", |b| {
        b.iter_batched(
            || circuit.clone(),
            |mut c| {
                optimizer.optimize(&mut c);
                black_box(c.gate_count())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_optimal_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_bfs");
    group.sample_size(10);
    group.bench_function("build_nct_40320", |b| {
        b.iter(|| black_box(OptimalTable::build(OptimalLibrary::Nct).average()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_anf,
    bench_substitution,
    bench_synthesis,
    bench_observer_overhead,
    bench_mmd,
    bench_spectrum,
    bench_fredkin_substitution,
    bench_decompose,
    bench_peephole,
    bench_optimal_bfs
);
criterion_main!(benches);
