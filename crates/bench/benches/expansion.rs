//! Expansion-kernel micro-benchmark: the two-phase score-then-
//! materialize kernel against the pre-change materialize-everything
//! kernel, on a Table-I-class workload under top-k pruning.
//!
//! The baseline reproduces the old inner loop faithfully: every
//! candidate substitution clones and merges a full child `MultiPprm`,
//! recomputes its total term count by walking every output, and each
//! pruning survivor is fingerprinted with SipHash (`DefaultHasher`)
//! before the dedup check. The two-phase kernel scores every candidate
//! with `count_substitute` (no allocation, fingerprint included),
//! consults dedup on the *predicted* fingerprint, and materializes only
//! novel survivors via the scratch-buffer kernel — exactly the
//! restructuring `rmrls-core`'s `expand`/`push_child` received.
//!
//! The frontier is built by breadth-first expansion of Table I specs
//! *without* dedup, so duplicate states appear with the same frequency
//! the real search encounters them (commuting gate orders): that is
//! what makes dedup-before-materialization the dominant saving. Both
//! kernels must push identical survivor sequences — verified on every
//! frontier state before any timing happens.
//!
//! A second section runs the end-to-end search on Examples 1–14 and a
//! Table I workload sample, recording nodes/sec and the
//! scored/materialized counters.
//!
//! Output: a human-readable table, plus the `BENCH_pr2.json` payload on
//! request (`RMRLS_BENCH_OUT=path`). `RMRLS_SMOKE=1` shrinks the
//! workload to a CI-sized smoke run (correctness checks still run).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::time::Instant;

use rmrls_bench::{table1_options, table4_options};
use rmrls_circuit::Gate;
use rmrls_core::{synthesize, Pruning, SynthesisOptions};
use rmrls_obs::Json;
use rmrls_pprm::{MultiPprm, SubstScratch, Term};
use rmrls_spec::benchmarks::{self, Benchmark};
use rmrls_spec::Permutation;

/// Top-k kept per (state, target variable), as `Pruning::TopK(4)`.
const KEEP: usize = 4;

fn smoke() -> bool {
    std::env::var("RMRLS_SMOKE")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// One pushed (post-dedup) survivor of an expansion.
struct Survivor {
    gate: Gate,
    child: MultiPprm,
    eliminated: i64,
}

/// Priority shared by both kernels (the search's `FewestTerms` shape —
/// any fixed formula works as long as the two kernels rank candidates
/// identically).
fn priority(terms: usize, lits: u32) -> f64 {
    -(terms as f64) - 0.05 * f64::from(lits)
}

/// The pre-change kernel: materialize every candidate, recompute its
/// total term count the O(outputs·terms) way, rank, keep k, then
/// SipHash-fingerprint each survivor for the dedup check — the
/// materialization cost is paid even for candidates dedup rejects.
fn expand_baseline(state: &MultiPprm, visited: &mut HashSet<u64>, out: &mut Vec<Survivor>) {
    let n = state.num_vars();
    for var in 0..n {
        let factors: Vec<Term> = state
            .output(var)
            .terms()
            .iter()
            .copied()
            .filter(|t| !t.contains_var(var))
            .collect();
        let mut cands: Vec<(f64, Survivor)> = Vec::new();
        for factor in factors {
            let (child, eliminated) = state.substitute(var, factor);
            // The old `total_terms()` walked every output on each call.
            let terms: usize = child.outputs().iter().map(|p| p.len()).sum();
            let p = priority(terms, factor.literal_count());
            cands.push((
                p,
                Survivor {
                    gate: Gate::toffoli_mask(factor.mask(), var),
                    child,
                    eliminated,
                },
            ));
        }
        cands.sort_by(|a, b| b.0.total_cmp(&a.0));
        cands.truncate(KEEP);
        for (_, s) in cands {
            let mut h = DefaultHasher::new();
            s.child.hash(&mut h);
            if visited.insert(h.finish()) {
                out.push(s);
            }
        }
    }
}

/// The two-phase kernel: score all candidates without allocating, rank
/// on the scores, consult dedup on the predicted fingerprint, and
/// materialize only novel survivors.
fn expand_two_phase(
    state: &MultiPprm,
    scratch: &mut SubstScratch,
    visited: &mut HashSet<u64>,
    out: &mut Vec<Survivor>,
) {
    let n = state.num_vars();
    for var in 0..n {
        let factors: Vec<Term> = state
            .output(var)
            .terms()
            .iter()
            .copied()
            .filter(|t| !t.contains_var(var))
            .collect();
        let mut cands: Vec<(f64, Term, i64, u64)> = Vec::new();
        for factor in factors {
            let score = state.count_substitute(var, factor, scratch);
            let p = priority(score.terms, factor.literal_count());
            cands.push((p, factor, score.eliminated, score.fingerprint));
        }
        cands.sort_by(|a, b| b.0.total_cmp(&a.0));
        cands.truncate(KEEP);
        for (_, factor, eliminated, fp) in cands {
            if visited.insert(fp) {
                let (child, elim) = state.substitute_with(var, factor, scratch);
                assert_eq!(elim, eliminated, "score/materialize elim mismatch");
                out.push(Survivor {
                    gate: Gate::toffoli_mask(factor.mask(), var),
                    child,
                    eliminated,
                });
            }
        }
    }
}

/// A Table-I-class frontier: breadth-first expansion of 3-variable
/// specs, two levels deep, *keeping duplicates* — the same state
/// reached through commuting gate orders appears once per path, exactly
/// as the search's queue would see it without dedup.
fn build_frontier(ranks: &[u128], cap: usize) -> Vec<MultiPprm> {
    let mut frontier: Vec<MultiPprm> = Vec::new();
    let mut level: Vec<MultiPprm> = ranks
        .iter()
        .map(|&rank| Permutation::from_rank(3, rank).to_multi_pprm())
        .collect();
    for _depth in 0..=2 {
        let mut next = Vec::new();
        for state in &level {
            if frontier.len() >= cap {
                return frontier;
            }
            frontier.push(state.clone());
            let n = state.num_vars();
            for var in 0..n {
                let factors: Vec<Term> = state
                    .output(var)
                    .terms()
                    .iter()
                    .copied()
                    .filter(|t| !t.contains_var(var))
                    .collect();
                for factor in factors {
                    let (child, _) = state.substitute(var, factor);
                    if !child.is_identity() {
                        next.push(child);
                    }
                }
            }
        }
        level = next;
    }
    frontier
}

/// Checks both kernels push identical survivor sequences over the whole
/// frontier sweep (each with its own visited set, in the same order).
fn verify_kernels(frontier: &[MultiPprm]) {
    let mut scratch = SubstScratch::new();
    let mut visited_a = HashSet::new();
    let mut visited_b = HashSet::new();
    let mut base = Vec::new();
    let mut two = Vec::new();
    for state in frontier {
        expand_baseline(state, &mut visited_a, &mut base);
        expand_two_phase(state, &mut scratch, &mut visited_b, &mut two);
    }
    assert_eq!(base.len(), two.len(), "pushed survivor count differs");
    for (i, (b, t)) in base.iter().zip(&two).enumerate() {
        assert_eq!(b.gate, t.gate, "survivor {i}: gate differs");
        assert_eq!(b.eliminated, t.eliminated, "survivor {i}: elim differs");
        assert_eq!(b.child, t.child, "survivor {i}: child state differs");
    }
}

/// Times one kernel over the whole frontier, `reps` times.
///
/// `steady` controls the dedup regime: `false` gives every rep a fresh
/// visited set (cold start — most survivors are novel and must be
/// materialized by both kernels), `true` reuses one set warmed by an
/// untimed sweep (steady state — the long-run regime of a hard search,
/// where almost every candidate is a revisit and the baseline's
/// materializations are pure waste; compare ex5's end-to-end counters).
fn time_kernel<F: FnMut(&MultiPprm, &mut HashSet<u64>, &mut Vec<Survivor>)>(
    frontier: &[MultiPprm],
    reps: usize,
    steady: bool,
    mut f: F,
) -> (f64, usize) {
    let mut warm = HashSet::new();
    if steady {
        let mut out = Vec::new();
        for state in frontier {
            f(state, &mut warm, &mut out);
        }
    }
    let mut pushed = 0usize;
    let start = Instant::now();
    for _ in 0..reps {
        let mut visited = if steady { warm.clone() } else { HashSet::new() };
        let mut out = Vec::new();
        for state in frontier {
            f(state, &mut visited, &mut out);
        }
        pushed += out.len();
    }
    let secs = start.elapsed().as_secs_f64();
    let rate = (frontier.len() * reps) as f64 / secs;
    (rate, pushed / reps)
}

/// End-to-end synthesis measurement for one named workload.
fn run_workload(name: &str, spec: &MultiPprm, opts: &SynthesisOptions) -> Json {
    let start = Instant::now();
    let result = synthesize(spec, opts);
    let secs = start.elapsed().as_secs_f64();
    let (stats, gates) = match &result {
        Ok(r) => (&r.stats, Some(r.circuit.gate_count() as u64)),
        Err(e) => (&e.stats, None),
    };
    assert!(
        stats.candidates_materialized <= stats.candidates_scored,
        "{name}: materialized {} > scored {}",
        stats.candidates_materialized,
        stats.candidates_scored
    );
    let nodes_per_sec = if secs > 0.0 {
        stats.nodes_expanded as f64 / secs
    } else {
        0.0
    };
    println!(
        "| {name:>12} | {:>8} | {:>12.0} | {:>10} | {:>12} | {:>5} |",
        stats.nodes_expanded,
        nodes_per_sec,
        stats.candidates_scored,
        stats.candidates_materialized,
        gates.map(|g| g.to_string()).unwrap_or_else(|| "-".into()),
    );
    Json::Obj(vec![
        ("name".to_string(), Json::str(name)),
        ("solved".to_string(), Json::Bool(gates.is_some())),
        (
            "gates".to_string(),
            gates.map(Json::uint).unwrap_or(Json::Null),
        ),
        (
            "nodes_expanded".to_string(),
            Json::uint(stats.nodes_expanded),
        ),
        ("nodes_per_sec".to_string(), Json::Num(nodes_per_sec)),
        (
            "candidates_scored".to_string(),
            Json::uint(stats.candidates_scored),
        ),
        (
            "candidates_materialized".to_string(),
            Json::uint(stats.candidates_materialized),
        ),
        ("elapsed_seconds".to_string(), Json::Num(secs)),
    ])
}

/// Examples 1–14: the paper's worked examples plus the published
/// literature circuits.
fn example_benchmarks() -> Vec<Benchmark> {
    let mut v = benchmarks::example_suite();
    v.push(benchmarks::find("3_17").expect("3_17"));
    v.push(benchmarks::find("4_49").expect("4_49"));
    v.push(benchmarks::find("alu").expect("alu"));
    v.push(benchmarks::find("decod24").expect("decod24"));
    v.push(benchmarks::find("majority5").expect("majority5"));
    v.push(benchmarks::find("5one013").expect("5one013"));
    v
}

fn main() {
    let smoke = smoke();
    let ranks: &[u128] = if smoke {
        &[9_973]
    } else {
        &[123, 9_973, 23_456, 39_999]
    };
    let (frontier_cap, reps) = if smoke { (80, 3) } else { (800, 20) };

    println!("# Expansion kernel: score-then-materialize vs materialize-everything");
    println!(
        "mode: {}, top-{KEEP} pruning per target variable, dedup before push\n",
        if smoke { "smoke" } else { "full" }
    );

    let frontier = build_frontier(ranks, frontier_cap);
    println!(
        "frontier: {} Table-I-class states (3 variables, BFS depth ≤ 2, duplicates kept)",
        frontier.len()
    );

    verify_kernels(&frontier);
    println!("kernel agreement: identical pushed survivors over the whole sweep\n");

    // Time each kernel in both dedup regimes. The steady-state numbers
    // are the ones that matter for hard instances: a long Table-I-class
    // run revisits states constantly (ex5 below materializes ~6% of
    // what it scores), so the baseline's eager materializations are
    // almost all wasted.
    let mut scratch = SubstScratch::new();
    let (base_cold, base_pushed) = time_kernel(&frontier, reps, false, |s, v, out| {
        expand_baseline(s, v, out);
    });
    let (two_cold, two_pushed) = time_kernel(&frontier, reps, false, |s, v, out| {
        expand_two_phase(s, &mut scratch, v, out);
    });
    assert_eq!(base_pushed, two_pushed, "kernels pushed different counts");
    let (base_steady, _) = time_kernel(&frontier, reps, true, |s, v, out| {
        expand_baseline(s, v, out);
    });
    let (two_steady, _) = time_kernel(&frontier, reps, true, |s, v, out| {
        expand_two_phase(s, &mut scratch, v, out);
    });
    let cold_speedup = two_cold / base_cold;
    let speedup = two_steady / base_steady;
    println!(
        "cold start   (fresh dedup, {base_pushed} of {} expansions pushed):",
        frontier.len()
    );
    println!("  baseline (materialize all): {base_cold:>12.0} expansions/sec");
    println!("  two-phase (score first):    {two_cold:>12.0} expansions/sec  ({cold_speedup:.2}x)");
    println!("steady state (warmed dedup, revisit-dominated):");
    println!("  baseline (materialize all): {base_steady:>12.0} expansions/sec");
    println!("  two-phase (score first):    {two_steady:>12.0} expansions/sec  ({speedup:.2}x)\n");

    // End-to-end: Examples 1-14 + a Table I workload sample.
    println!("# End-to-end search (TopK pruning)\n");
    println!(
        "| {:>12} | {:>8} | {:>12} | {:>10} | {:>12} | {:>5} |",
        "workload", "nodes", "nodes/sec", "scored", "materialized", "gates"
    );
    let mut workloads = Vec::new();
    let example_opts = table4_options().with_pruning(Pruning::TopK(4));
    for b in example_benchmarks() {
        workloads.push(run_workload(b.name, &b.to_multi_pprm(), &example_opts));
    }
    let table1_opts = table1_options().with_pruning(Pruning::TopK(4));
    let table1_step = if smoke { 8_009 } else { 977 };
    for rank in (0..40_320u128).step_by(table1_step) {
        let spec = Permutation::from_rank(3, rank).to_multi_pprm();
        workloads.push(run_workload(&format!("s8_rank{rank}"), &spec, &table1_opts));
    }

    let report = Json::Obj(vec![
        ("bench".to_string(), Json::str("expansion_pr2")),
        ("smoke".to_string(), Json::Bool(smoke)),
        (
            "kernel".to_string(),
            Json::Obj(vec![
                (
                    "frontier_states".to_string(),
                    Json::uint(frontier.len() as u64),
                ),
                ("top_k".to_string(), Json::uint(KEEP as u64)),
                ("reps".to_string(), Json::uint(reps as u64)),
                (
                    "pushed_per_sweep".to_string(),
                    Json::uint(base_pushed as u64),
                ),
                (
                    "cold_baseline_expansions_per_sec".to_string(),
                    Json::Num(base_cold),
                ),
                (
                    "cold_two_phase_expansions_per_sec".to_string(),
                    Json::Num(two_cold),
                ),
                ("cold_speedup".to_string(), Json::Num(cold_speedup)),
                (
                    "steady_baseline_expansions_per_sec".to_string(),
                    Json::Num(base_steady),
                ),
                (
                    "steady_two_phase_expansions_per_sec".to_string(),
                    Json::Num(two_steady),
                ),
                ("steady_speedup".to_string(), Json::Num(speedup)),
            ]),
        ),
        ("workloads".to_string(), Json::Arr(workloads)),
    ]);

    if let Ok(path) = std::env::var("RMRLS_BENCH_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, format!("{report}\n")).expect("write RMRLS_BENCH_OUT");
            println!("\nwrote {path}");
        }
    }

    if !smoke {
        assert!(
            speedup >= 2.0,
            "two-phase kernel must be ≥2x over the baseline, got {speedup:.2}x"
        );
    }
}
