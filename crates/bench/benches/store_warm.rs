//! Durable-store benchmark (PR 10): what a warm store buys.
//!
//! A batch re-run over a manifest it has already solved should pay for
//! **verification, not search**: every canonical form is served from
//! the durable store (re-verified on open, verified again per job),
//! and the search tiers never run. This bench measures that end to
//! end, through the real batch engine:
//!
//! 1. **No store** — fresh process state, everything is searched.
//! 2. **Cold store** — same workload against an empty store file: the
//!    search cost plus the append/fsync cost of populating it.
//! 3. **Warm store** — same workload again with fresh in-process state
//!    (new LRU, new handles) over the now-populated file: every unique
//!    canonical is a store hit.
//!
//! Contracts (asserted in every mode): all three runs produce
//! byte-identical results JSONL, the warm run searches nothing it can
//! load (`store_hits` = unique canonicals, `store_inserts` = 0), and
//! zero verification failures anywhere. Full mode additionally asserts
//! the warm run beats the no-store baseline — if loading + verifying
//! were slower than searching, the store would be pointless.
//!
//! Output: a human-readable table plus the `BENCH_pr10.json` payload on
//! request (`RMRLS_BENCH_OUT=path`). `RMRLS_SMOKE=1` shrinks the
//! workload for CI.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmrls_engine::manifest::{Admission, BatchJob, SpecData};
use rmrls_engine::{
    run_batch, suite_admissions, BatchOptions, BatchRun, SharedStore, ShutdownHandles,
};
use rmrls_obs::Json;
use rmrls_spec::random_permutation;

fn smoke() -> bool {
    std::env::var("RMRLS_SMOKE")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// The example suite plus deterministic random 3/4-variable
/// permutations — all unique canonicals solvable well inside the
/// default budget, so the warm run's advantage is pure search
/// avoidance, not deadline luck.
fn workload(randoms: usize) -> Vec<Admission> {
    let mut jobs = suite_admissions("examples").expect("bundled suite");
    let mut rng = StdRng::seed_from_u64(0x570e5eed);
    for i in 0..randoms {
        let n = 3 + (i % 2);
        jobs.push(Admission::Job(BatchJob {
            name: format!("rand{n}v-{i}"),
            origin: "bench:random".to_string(),
            spec: SpecData::Perm(random_permutation(n, &mut rng)),
        }));
    }
    jobs
}

fn options(store: Option<SharedStore>) -> BatchOptions {
    let mut opts = BatchOptions {
        workers: 2,
        fallback: true,
        store,
        store_provenance: "bench".to_string(),
        ..BatchOptions::default()
    };
    // A deterministic node budget (never a wall-clock deadline — tier
    // attribution must be identical across the three runs) plus the
    // fallback ladder, so every job solves and the search cost per
    // job is bounded.
    opts.synthesis = opts
        .synthesis
        .clone()
        .with_stop_at_first(true)
        .with_max_nodes(50_000);
    opts
}

fn timed(jobs: &[Admission], opts: &BatchOptions) -> (f64, BatchRun) {
    let start = Instant::now();
    let run = run_batch(jobs, opts, &ShutdownHandles::new());
    (start.elapsed().as_secs_f64(), run)
}

fn main() {
    let smoke = smoke();
    let randoms = if smoke { 8 } else { 64 };
    let jobs = workload(randoms);
    let dir = std::env::temp_dir().join("rmrls-bench-store-warm");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("circuits.store").to_str().unwrap().to_string();

    println!("# Durable store: warm-rerun vs cold-store vs no-store");
    println!(
        "mode: {} — {} jobs (examples suite + {randoms} random perms), 2 workers\n",
        if smoke { "smoke" } else { "full" },
        jobs.len()
    );

    // Warm-up pass so no timed run pays first-touch costs.
    run_batch(&jobs, &options(None), &ShutdownHandles::new());

    // 1. No store: every job searched (modulo the in-run LRU).
    let (base_secs, base) = timed(&jobs, &options(None));

    // 2. Cold store: search plus persist (one fsync'd append per
    //    unique canonical).
    let cold_store = SharedStore::open(&path).expect("store opens");
    let (cold_secs, cold) = timed(&jobs, &options(Some(cold_store)));
    let inserts = cold.counters.store_inserts;

    // 3. Warm store: a fresh handle over the populated file — fresh
    //    LRU too, so every unique canonical must come off disk.
    let warm_store = SharedStore::open(&path).expect("store reopens");
    let loaded = warm_store.len() as u64;
    let (warm_secs, warm) = timed(&jobs, &options(Some(warm_store)));

    // Correctness before speed.
    for (name, run) in [("base", &base), ("cold", &cold), ("warm", &warm)] {
        assert_eq!(run.counters.panics_contained, 0, "{name}");
        assert_eq!(run.counters.verify_failures, 0, "{name}");
        assert_eq!(run.counters.jobs_completed, jobs.len() as u64, "{name}");
    }
    assert_eq!(
        base.results_jsonl(),
        cold.results_jsonl(),
        "persisting must not change results"
    );
    assert_eq!(
        base.results_jsonl(),
        warm.results_jsonl(),
        "store-served circuits must be byte-identical"
    );
    assert!(inserts > 0, "the cold run must populate the store");
    assert_eq!(loaded, inserts, "every insert must re-verify on open");
    assert_eq!(
        warm.counters.store_hits, inserts,
        "the warm run must load every unique canonical"
    );
    assert_eq!(warm.counters.store_inserts, 0, "nothing new to persist");

    let speedup = base_secs / warm_secs;
    println!("no store (all searched):   {base_secs:.3}s");
    println!(
        "cold store (search+fsync): {cold_secs:.3}s ({:+.1}% vs no store)",
        (cold_secs - base_secs) / base_secs * 100.0
    );
    println!(
        "warm store (verify only):  {warm_secs:.3}s ({speedup:.1}x vs no store, {} hits)",
        warm.counters.store_hits
    );
    if !smoke {
        assert!(
            warm_secs < base_secs,
            "warm rerun must beat searching: {warm_secs:.3}s vs {base_secs:.3}s"
        );
    }

    let report = Json::Obj(vec![
        ("bench".to_string(), Json::str("store_warm_pr10")),
        ("smoke".to_string(), Json::Bool(smoke)),
        ("jobs".to_string(), Json::uint(jobs.len() as u64)),
        ("unique_canonicals".to_string(), Json::uint(inserts)),
        ("seconds_no_store".to_string(), Json::Num(base_secs)),
        ("seconds_cold_store".to_string(), Json::Num(cold_secs)),
        ("seconds_warm_store".to_string(), Json::Num(warm_secs)),
        ("warm_speedup".to_string(), Json::Num(speedup)),
        (
            "warm_store_hits".to_string(),
            Json::uint(warm.counters.store_hits),
        ),
        (
            "cold_overhead_fraction".to_string(),
            Json::Num((cold_secs - base_secs) / base_secs),
        ),
    ]);

    if let Ok(path) = std::env::var("RMRLS_BENCH_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, format!("{report}\n")).expect("write RMRLS_BENCH_OUT");
            println!("\nwrote {path}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
