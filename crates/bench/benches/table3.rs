//! Table III: circuit-size distribution of random five-variable
//! reversible functions (§V-B: 3 000 samples, 180 s limit, 60-gate cap;
//! 194 of 3 000 = 6.5 % failed in the paper).
//!
//! Default: 60 samples with a 600 ms limit; `RMRLS_FULL=1` for the
//! paper-scale run.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rmrls_bench::{print_row, print_rule, scaled, table3_options, SizeHistogram};
use rmrls_core::synthesize;
use rmrls_spec::random_permutation;

/// Paper Table III: (circuit size, number of circuits) for 3 000 samples.
const PAPER: &[(usize, usize)] = &[
    (28, 1),
    (29, 3),
    (30, 8),
    (31, 29),
    (32, 45),
    (33, 82),
    (34, 130),
    (35, 202),
    (36, 206),
    (37, 310),
    (38, 344),
    (39, 307),
    (40, 304),
    (41, 297),
    (42, 176),
    (43, 151),
    (44, 117),
    (45, 47),
    (46, 27),
    (47, 15),
    (48, 4),
    (51, 1),
];

fn main() {
    let samples = scaled(60, 3_000);
    let opts = table3_options();
    println!("# Table III — random 5-variable reversible functions");
    println!(
        "sample: {samples} functions, time limit {:?}, cap {} gates (paper: 3000 @ 180s, 6.5% failed)\n",
        opts.time_limit.unwrap(),
        opts.max_gates.unwrap()
    );

    let mut rng = StdRng::seed_from_u64(0x5151);
    let mut hist = SizeHistogram::new();
    let mut failures = 0usize;
    for i in 0..samples {
        let spec = random_permutation(5, &mut rng);
        match synthesize(&spec.to_multi_pprm(), &opts) {
            Ok(r) => {
                assert_eq!(
                    r.circuit.to_permutation(),
                    spec.as_slice(),
                    "sample {i}: invalid circuit"
                );
                hist.record(r.circuit.gate_count());
            }
            Err(_) => failures += 1,
        }
    }

    let widths = [12usize, 15, 17];
    print_row(
        &[
            "circuit size".into(),
            "no. of circuits".into(),
            "paper (of 3000)".into(),
        ],
        &widths,
    );
    print_rule(&widths);
    let paper_max = PAPER.iter().map(|r| r.0).max().unwrap();
    for size in 20..=hist.max_size().max(paper_max) {
        let paper = PAPER
            .iter()
            .find(|r| r.0 == size)
            .map(|r| r.1.to_string())
            .unwrap_or_default();
        if hist.count(size) == 0 && paper.is_empty() {
            continue;
        }
        print_row(
            &[size.to_string(), hist.count(size).to_string(), paper],
            &widths,
        );
    }
    print_rule(&widths);
    println!(
        "synthesized {}/{samples}, failed {failures} ({:.1}%); average size {:.2} (paper: 6.5% failed, sizes centered 37-41)",
        hist.samples(),
        100.0 * failures as f64 / samples as f64,
        hist.average()
    );
}
