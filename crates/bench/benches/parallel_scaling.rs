//! Parallel-search scaling: wall-clock speedup of the speculative
//! worker pool (`SynthesisOptions::threads`) on the four hard
//! single-job workloads (ex5, 4_49, alu, decod24) across thread counts
//! 1/2/4/8, under a *node* budget so every run pops the identical
//! sequence of states regardless of machine speed.
//!
//! Correctness is asserted before any number is reported: for every
//! workload the synthesized circuit, the expansion count, and the stop
//! reason must be byte-identical at every thread count — the parallel
//! search is speculation around an unchanged sequential commit order
//! (DESIGN §5f), so any divergence is a bug, not noise.
//!
//! Single-thread regression: `threads = 1` short-circuits to the serial
//! loop before any parallel structure is allocated (`pop_next` returns
//! straight off the heap when no engine is attached), so the serial
//! path is the pre-change instruction stream plus dead `Option` checks.
//! The bench still measures it twice — once before and once after the
//! parallel sweep — and reports the spread between the two passes as
//! the noise floor the speedup figures are quoted against; a future
//! change that accidentally drags parallel work onto the serial path
//! shows up here as an inflated serial time (and therefore a fake
//! speedup). The 3% spread bound is enforced under the same condition
//! as the speedup contract (≥4 cores, non-smoke): on a 1-core host
//! every background process steals directly from the measured core
//! and wall-clock spreads are dominated by neighbors, not by rmrls.
//!
//! The speedup contract (≥2.5x at 4 threads) is only *enforced* when
//! the host actually has ≥4 cores: `available_cores` is recorded in the
//! JSON payload, and on a 1-core host the multi-thread figures measure
//! oversubscription overhead, not speedup (same policy as the batch
//! bench, DESIGN §5c).
//!
//! Output: a human-readable table, plus the `BENCH_pr7.json` payload on
//! request (`RMRLS_BENCH_OUT=path`). `RMRLS_SMOKE=1` shrinks the node
//! budget to a CI-sized smoke run (correctness checks still run).

use std::time::Instant;

use rmrls_core::{synthesize, Pruning, StopReason, SynthesisOptions};
use rmrls_obs::Json;
use rmrls_spec::benchmarks;

const WORKLOADS: [&str; 4] = ["ex5", "4_49", "alu", "decod24"];
const THREADS: [usize; 4] = [1, 2, 4, 8];
const SPEEDUP_TARGET: f64 = 2.5;
const SPEEDUP_TARGET_THREADS: usize = 4;
const SERIAL_SPREAD_BOUND: f64 = 0.03;

fn smoke() -> bool {
    std::env::var("RMRLS_SMOKE")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// Everything a run must reproduce exactly at every thread count.
#[derive(PartialEq, Debug)]
struct Outcome {
    circuit: Option<String>,
    gates: Option<usize>,
    nodes_expanded: u64,
    children_pushed: u64,
    stop_reason: Option<StopReason>,
}

/// One timed synthesis; returns the deterministic outcome, the elapsed
/// seconds, and the speculation-hit count (scheduling-dependent, only
/// used to confirm the pool actually engaged).
fn run(spec: &rmrls_pprm::MultiPprm, options: &SynthesisOptions) -> (Outcome, f64, u64) {
    let start = Instant::now();
    let (outcome, hits) = match synthesize(spec, options) {
        Ok(result) => (
            Outcome {
                circuit: Some(result.circuit.to_string()),
                gates: Some(result.circuit.gate_count()),
                nodes_expanded: result.stats.nodes_expanded,
                children_pushed: result.stats.children_pushed,
                stop_reason: result.stats.stop_reason,
            },
            result.stats.spec_hits,
        ),
        Err(err) => (
            Outcome {
                circuit: None,
                gates: None,
                nodes_expanded: err.stats.nodes_expanded,
                children_pushed: err.stats.children_pushed,
                stop_reason: err.stats.stop_reason,
            },
            err.stats.spec_hits,
        ),
    };
    (outcome, start.elapsed().as_secs_f64(), hits)
}

/// Minimum elapsed over `reps` runs (asserting every rep reproduces the
/// reference outcome).
fn timed(
    spec: &rmrls_pprm::MultiPprm,
    options: &SynthesisOptions,
    reps: usize,
    reference: Option<&Outcome>,
    name: &str,
) -> (Outcome, f64, u64) {
    let mut best = f64::INFINITY;
    let mut kept: Option<(Outcome, u64)> = None;
    for _ in 0..reps {
        let (outcome, secs, hits) = run(spec, options);
        if let Some(reference) = reference {
            assert_eq!(
                &outcome, reference,
                "{name}: outcome diverged at {} threads",
                options.threads
            );
        }
        if secs < best {
            best = secs;
        }
        kept = Some((outcome, hits));
    }
    let (outcome, hits) = kept.expect("reps >= 1");
    (outcome, best, hits)
}

fn main() {
    let smoke = smoke();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let enforce = !smoke && cores >= SPEEDUP_TARGET_THREADS;
    let (max_nodes, serial_reps, par_reps) = if smoke {
        (2_000u64, 1usize, 1usize)
    } else {
        (120_000, 3, 1)
    };
    println!(
        "parallel scaling: {} workloads x threads {THREADS:?}, node budget {max_nodes}, \
         available cores: {cores}{}",
        WORKLOADS.len(),
        if smoke { " (smoke)" } else { "" }
    );

    let base = SynthesisOptions::new()
        .with_pruning(Pruning::TopK(4))
        .with_max_gates(150)
        .with_max_nodes(max_nodes);

    let mut total_hits = 0u64;
    let mut rows: Vec<Json> = Vec::new();
    let mut speedup_at_target: Vec<(String, f64)> = Vec::new();

    for name in WORKLOADS {
        let spec = benchmarks::find(name)
            .unwrap_or_else(|| panic!("benchmark {name} missing"))
            .to_multi_pprm();

        // Serial pass A establishes the reference outcome.
        let serial = base.clone().with_threads(1);
        let (reference, serial_a, _) = timed(&spec, &serial, serial_reps, None, name);

        let mut thread_times: Vec<(usize, f64)> = Vec::new();
        for threads in THREADS.into_iter().skip(1) {
            let options = base.clone().with_threads(threads);
            let (_, secs, hits) = timed(&spec, &options, par_reps, Some(&reference), name);
            total_hits += hits;
            thread_times.push((threads, secs));
        }

        // Serial pass B: the A/B spread is the noise floor, and a
        // serial path that silently grew parallel work inflates it.
        let (_, serial_b, _) = timed(&spec, &serial, serial_reps, Some(&reference), name);
        let serial_secs = serial_a.min(serial_b);
        let spread = (serial_a - serial_b).abs() / serial_secs;

        println!(
            "\n{name}: {} nodes, {}, serial {serial_secs:.3}s (A/B spread {:+.1}%)",
            reference.nodes_expanded,
            match reference.gates {
                Some(g) => format!("solved in {g} gates"),
                None => "unsolved within budget".to_string(),
            },
            spread * 100.0
        );
        println!("| threads | seconds | speedup |");
        println!("|---------|---------|---------|");
        println!("| {:>7} | {serial_secs:>7.3} | {:>6.2}x |", 1, 1.0);
        let mut finished_rows = vec![Json::Obj(vec![
            ("threads".to_string(), Json::uint(1)),
            ("seconds".to_string(), Json::Num(serial_secs)),
            ("speedup_vs_serial".to_string(), Json::Num(1.0)),
        ])];
        for (threads, secs) in thread_times {
            let speedup = serial_secs / secs;
            println!("| {threads:>7} | {secs:>7.3} | {speedup:>6.2}x |");
            if threads == SPEEDUP_TARGET_THREADS {
                speedup_at_target.push((name.to_string(), speedup));
            }
            finished_rows.push(Json::Obj(vec![
                ("threads".to_string(), Json::uint(threads as u64)),
                ("seconds".to_string(), Json::Num(secs)),
                ("speedup_vs_serial".to_string(), Json::Num(speedup)),
            ]));
        }

        if enforce {
            assert!(
                spread < SERIAL_SPREAD_BOUND,
                "{name}: serial A/B passes differ by {:+.1}% (bound {:.0}%)",
                spread * 100.0,
                SERIAL_SPREAD_BOUND * 100.0
            );
        }

        rows.push(Json::Obj(vec![
            ("name".to_string(), Json::str(name)),
            (
                "solved".to_string(),
                Json::Bool(reference.circuit.is_some()),
            ),
            (
                "gates".to_string(),
                match reference.gates {
                    Some(g) => Json::uint(g as u64),
                    None => Json::Null,
                },
            ),
            (
                "nodes_expanded".to_string(),
                Json::uint(reference.nodes_expanded),
            ),
            (
                "children_pushed".to_string(),
                Json::uint(reference.children_pushed),
            ),
            ("seconds_serial".to_string(), Json::Num(serial_secs)),
            (
                "serial_nodes_per_sec".to_string(),
                Json::Num(reference.nodes_expanded as f64 / serial_secs),
            ),
            ("serial_ab_spread_fraction".to_string(), Json::Num(spread)),
            ("threads".to_string(), Json::Arr(finished_rows)),
        ]));
    }

    // The pool must have actually served speculated expansions — a
    // scheduler that never completes a speculation in time would still
    // produce identical circuits (live expansion covers every miss) but
    // would make the speedup table meaningless.
    assert!(
        total_hits > 0,
        "no speculative expansion was consumed anywhere in the sweep"
    );

    let enforce_speedup = enforce;
    println!(
        "\nspeedup contract (>={SPEEDUP_TARGET}x at {SPEEDUP_TARGET_THREADS} threads): {}",
        if enforce_speedup {
            "enforced"
        } else if smoke {
            "skipped (smoke run)"
        } else {
            "skipped (host has too few cores; figures above measure oversubscription)"
        }
    );
    if enforce_speedup {
        for (name, speedup) in &speedup_at_target {
            assert!(
                *speedup >= SPEEDUP_TARGET,
                "{name}: {speedup:.2}x at {SPEEDUP_TARGET_THREADS} threads is below the \
                 {SPEEDUP_TARGET}x contract"
            );
        }
    }

    let report = Json::Obj(vec![
        ("bench".to_string(), Json::str("parallel_scaling_pr7")),
        ("smoke".to_string(), Json::Bool(smoke)),
        ("available_cores".to_string(), Json::uint(cores as u64)),
        ("max_nodes".to_string(), Json::uint(max_nodes)),
        ("speedup_target".to_string(), Json::Num(SPEEDUP_TARGET)),
        (
            "speedup_target_threads".to_string(),
            Json::uint(SPEEDUP_TARGET_THREADS as u64),
        ),
        (
            "speedup_contract_enforced".to_string(),
            Json::Bool(enforce_speedup),
        ),
        (
            "serial_spread_bound".to_string(),
            Json::Num(SERIAL_SPREAD_BOUND),
        ),
        ("workloads".to_string(), Json::Arr(rows)),
    ]);

    if let Ok(path) = std::env::var("RMRLS_BENCH_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, format!("{report}\n")).expect("write RMRLS_BENCH_OUT");
            println!("wrote {path}");
        }
    }
}
