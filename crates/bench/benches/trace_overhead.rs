//! Flight-recorder overhead benchmark (PR 6): what observability costs.
//!
//! The search kernel is permanently instrumented — every expansion can
//! report to an attached [`rmrls_obs::FlightRecorder`] and every phase
//! can be timed by the profiler. The contract is that the *cheap path*
//! (no recorder attached, profiling off) compiles down to a branch on
//! an empty `Option`, so always-on instrumentation is affordable:
//!
//! 1. **Recorder disabled** — `synthesize_with_observer` with a null
//!    observer must stay within 3% of the plain `synthesize` baseline.
//! 2. **Recorder enabled** — a per-search recorder (sampled expansion
//!    records, gauges, anomalies — what `--trace` turns on) must stay
//!    within 10% of the baseline.
//! 3. **Recorder + profiler** — adding per-phase timing (`--profile`)
//!    reads the clock around every scoring / materialize / dedup span,
//!    which is real per-node cost on a small kernel; its overhead is
//!    reported but not capped (see DESIGN.md §5e).
//! 4. **Live telemetry** (PR 8) — the `--metrics-addr` hook: a progress
//!    beat per `TIME_CHECK_INTERVAL` pops updating the job board's
//!    atomics and the latency histograms, exactly what the engine wires
//!    up for a scrapeable run. Must stay within 3% of the baseline
//!    (`BENCH_pr8.json`; see DESIGN.md §5g).
//!
//! Throughput is measured as full searches over a fixed set of random
//! 4-variable permutations, median-of-reps, same-workload
//! back-to-back. Output: a human-readable table plus the
//! `BENCH_pr6.json` payload on request (`RMRLS_BENCH_OUT=path`).
//! `RMRLS_SMOKE=1` shrinks the workload for CI; the percentage
//! assertions are full-mode only (smoke timing is noise).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmrls_core::{
    synthesize, synthesize_with_observer, FlightRecorder, Observer, SynthesisOptions,
};
use rmrls_obs::Json;
use rmrls_pprm::MultiPprm;
use rmrls_spec::random_permutation;

fn smoke() -> bool {
    std::env::var("RMRLS_SMOKE")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

fn workload(count: usize) -> Vec<MultiPprm> {
    let mut rng = StdRng::seed_from_u64(0x0b5e7ed);
    (0..count)
        .map(|_| {
            let perm = random_permutation(4, &mut rng);
            MultiPprm::from_permutation(perm.as_slice(), 4)
        })
        .collect()
}

fn options() -> SynthesisOptions {
    SynthesisOptions::new()
        .with_stop_at_first(true)
        .with_max_nodes(50_000)
}

/// One pass over the workload; returns (wall seconds, solved count).
fn pass<F: FnMut(&MultiPprm) -> bool>(specs: &[MultiPprm], mut run: F) -> (f64, usize) {
    let start = Instant::now();
    let solved = specs.iter().filter(|s| run(s)).count();
    (start.elapsed().as_secs_f64(), solved)
}

/// Median wall-clock over `reps` passes.
fn timed<F: FnMut(&MultiPprm) -> bool>(
    specs: &[MultiPprm],
    reps: usize,
    mut run: F,
) -> (f64, usize) {
    let mut secs = Vec::new();
    let mut solved = 0;
    for _ in 0..reps {
        let (s, n) = pass(specs, &mut run);
        secs.push(s);
        solved = n;
    }
    secs.sort_by(f64::total_cmp);
    (secs[secs.len() / 2], solved)
}

fn main() {
    let smoke = smoke();
    let (count, reps) = if smoke { (4, 1) } else { (16, 5) };
    let specs = workload(count);
    let opts = options();

    println!("# Flight recorder: instrumentation overhead");
    println!(
        "mode: {} — {count} random 4-var permutations, median of {reps} passes\n",
        if smoke { "smoke" } else { "full" }
    );

    // Warm-up so no timed configuration pays first-run costs.
    pass(&specs, |s| synthesize(s, &opts).is_ok());

    // 1. Baseline: the plain entry point, no observer in sight.
    let (base_secs, base_solved) = timed(&specs, reps, |s| synthesize(s, &opts).is_ok());

    // 2. Recorder disabled: the observer plumbing is live but nothing
    //    is attached — this is the always-on cheap path.
    let (off_secs, off_solved) = timed(&specs, reps, |s| {
        let mut obs = Observer::null();
        synthesize_with_observer(s, &opts, &mut obs).is_ok()
    });

    // 3. Recorder enabled: a fresh per-search ring buffer, the way the
    //    batch engine runs under `--trace` (profiling stays off).
    let mut records = 0u64;
    let (on_secs, on_solved) = timed(&specs, reps, |s| {
        let recorder = FlightRecorder::with_default_budget();
        let mut obs = Observer::null().with_recorder(recorder.clone());
        let ok = synthesize_with_observer(s, &opts, &mut obs).is_ok();
        records += recorder.len() as u64;
        ok
    });

    // 4. Recorder + per-phase profiling (`--trace --profile`).
    let profiled = opts.clone().with_profile(true);
    let (prof_secs, prof_solved) = timed(&specs, reps, |s| {
        let recorder = FlightRecorder::with_default_budget();
        let mut obs = Observer::null().with_recorder(recorder.clone());
        synthesize_with_observer(s, &profiled, &mut obs).is_ok()
    });

    // 5. Live telemetry: the --metrics-addr progress hook — job-board
    //    atomics plus expansion-batch histogram per beat, job latency
    //    histogram per search. (The HTTP server itself is off the hot
    //    path: scrapes happen on their own thread.)
    let telemetry =
        std::sync::Arc::new(rmrls_engine::BatchTelemetry::new(vec!["bench".to_string()]));
    let (tele_secs, tele_solved) = timed(&specs, reps, |s| {
        let t = std::sync::Arc::clone(&telemetry);
        let batches = std::sync::Arc::clone(&telemetry.expansion_batch_seconds);
        let mut last_beat = Instant::now();
        let mut obs = Observer::null().with_progress(Box::new(move |p| {
            t.jobs.update_progress(
                0,
                p.nodes_expanded,
                p.queue_depth as u64,
                p.live_terms,
                p.memory_sheds,
            );
            let now = Instant::now();
            batches.record(now.duration_since(last_beat).as_secs_f64());
            last_beat = now;
        }));
        telemetry.jobs.mark_running(0);
        let started = Instant::now();
        let ok = synthesize_with_observer(s, &opts, &mut obs).is_ok();
        telemetry
            .job_seconds
            .record(started.elapsed().as_secs_f64());
        ok
    });
    let beats = telemetry.expansion_batch_seconds.count();

    assert_eq!(base_solved, off_solved, "observer must not change results");
    assert_eq!(base_solved, on_solved, "recorder must not change results");
    assert_eq!(base_solved, prof_solved, "profiler must not change results");
    assert_eq!(
        base_solved, tele_solved,
        "telemetry must not change results"
    );
    assert!(records > 0, "the enabled recorder must actually record");
    assert!(beats > 0, "the telemetry hook must actually beat");

    let off_overhead = (off_secs - base_secs) / base_secs;
    let on_overhead = (on_secs - base_secs) / base_secs;
    let prof_overhead = (prof_secs - base_secs) / base_secs;
    let tele_overhead = (tele_secs - base_secs) / base_secs;
    println!("baseline (plain synthesize): {base_secs:.3}s, {base_solved}/{count} solved");
    println!(
        "recorder disabled:           {off_secs:.3}s ({:+.1}%)",
        off_overhead * 100.0
    );
    println!(
        "recorder enabled:            {on_secs:.3}s ({:+.1}%)",
        on_overhead * 100.0
    );
    println!(
        "recorder + profiler:         {prof_secs:.3}s ({:+.1}% — uncapped, see DESIGN §5e)",
        prof_overhead * 100.0
    );
    println!(
        "live telemetry hook:         {tele_secs:.3}s ({:+.1}%)",
        tele_overhead * 100.0
    );
    if !smoke {
        // One-sided contracts: measuring *faster* is scheduler noise.
        assert!(
            off_overhead < 0.03,
            "disabled recorder must cost <3%, measured {:+.1}%",
            off_overhead * 100.0
        );
        assert!(
            on_overhead < 0.10,
            "enabled recorder must cost <10%, measured {:+.1}%",
            on_overhead * 100.0
        );
        assert!(
            tele_overhead < 0.03,
            "live telemetry must cost <3%, measured {:+.1}%",
            tele_overhead * 100.0
        );
    }

    let report = Json::Obj(vec![
        ("bench".to_string(), Json::str("trace_overhead_pr6")),
        ("smoke".to_string(), Json::Bool(smoke)),
        ("specs".to_string(), Json::uint(count as u64)),
        ("reps".to_string(), Json::uint(reps as u64)),
        ("seconds_baseline".to_string(), Json::Num(base_secs)),
        ("seconds_disabled".to_string(), Json::Num(off_secs)),
        ("seconds_enabled".to_string(), Json::Num(on_secs)),
        ("seconds_profiled".to_string(), Json::Num(prof_secs)),
        (
            "disabled_overhead_fraction".to_string(),
            Json::Num(off_overhead),
        ),
        (
            "enabled_overhead_fraction".to_string(),
            Json::Num(on_overhead),
        ),
        (
            "profiled_overhead_fraction".to_string(),
            Json::Num(prof_overhead),
        ),
        ("seconds_telemetry".to_string(), Json::Num(tele_secs)),
        (
            "telemetry_overhead_fraction".to_string(),
            Json::Num(tele_overhead),
        ),
        ("telemetry_beats".to_string(), Json::uint(beats)),
        (
            "records_per_run".to_string(),
            Json::uint(records / reps as u64),
        ),
    ]);

    if let Ok(path) = std::env::var("RMRLS_BENCH_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, format!("{report}\n")).expect("write RMRLS_BENCH_OUT");
            println!("\nwrote {path}");
        }
    }
}
