//! Ablation study of the design choices documented in DESIGN.md:
//! priority modes (Eq. 4 readings vs. the A* default), pruning
//! strategies, the §IV-D additional substitutions, and template
//! post-processing — all on a fixed deterministic workload.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rmrls_baselines::{mmd_synthesize, MmdVariant, PeepholeOptimizer};
use rmrls_bench::{print_row, print_rule, scaled};
use rmrls_circuit::simplify;
use rmrls_core::{synthesize, FredkinMode, PriorityMode, Pruning, SynthesisOptions};
use rmrls_spec::{random_permutation, Permutation};

fn workload_3var(samples: usize) -> Vec<Permutation> {
    (0..40320u128)
        .step_by((40320 / samples).max(1))
        .map(|r| Permutation::from_rank(3, r))
        .collect()
}

fn workload_4var(samples: usize) -> Vec<Permutation> {
    let mut rng = StdRng::seed_from_u64(0xab1a);
    (0..samples)
        .map(|_| random_permutation(4, &mut rng))
        .collect()
}

fn evaluate(name: &str, workload: &[Permutation], opts: &SynthesisOptions, widths: &[usize]) {
    let mut solved = 0usize;
    let mut total_gates = 0usize;
    let mut simplified_gates = 0usize;
    let t0 = std::time::Instant::now();
    for spec in workload {
        if let Ok(r) = synthesize(&spec.to_multi_pprm(), opts) {
            solved += 1;
            total_gates += r.circuit.gate_count();
            let mut c = r.circuit;
            simplify(&mut c);
            simplified_gates += c.gate_count();
        }
    }
    let avg = |total: usize| {
        if solved == 0 {
            f64::NAN
        } else {
            total as f64 / solved as f64
        }
    };
    print_row(
        &[
            name.into(),
            format!("{solved}/{}", workload.len()),
            format!("{:.3}", avg(total_gates)),
            format!("{:.3}", avg(simplified_gates)),
            format!("{:.2?}", t0.elapsed()),
        ],
        widths,
    );
}

fn main() {
    println!("# Ablation — priority modes, pruning, §IV-D substitutions, templates\n");
    let widths = [26usize, 10, 10, 14, 12];
    let header = [
        "configuration".to_string(),
        "solved".into(),
        "avg gates".into(),
        "avg simplified".into(),
        "elapsed".into(),
    ];

    let base = SynthesisOptions::new()
        .with_max_gates(40)
        .with_max_nodes(20_000)
        .with_time_limit(Duration::from_millis(500));

    println!("## 3-variable sweep (sampled)");
    let w3 = workload_3var(scaled(200, 2016));
    print_row(&header, &widths);
    print_rule(&widths);
    for (name, opts) in [
        ("astar (default)", base.clone()),
        (
            "eq4 cumulative",
            base.clone()
                .with_priority_mode(PriorityMode::CumulativeRate),
        ),
        (
            "eq4 step",
            base.clone().with_priority_mode(PriorityMode::StepElim),
        ),
        (
            "fewest-terms",
            base.clone().with_priority_mode(PriorityMode::FewestTerms),
        ),
        (
            "no additional subs",
            base.clone().with_additional_substitutions(false),
        ),
        (
            "monotone-only (paper lit.)",
            base.clone().with_monotone_only(true),
        ),
        ("greedy pruning", base.clone().with_pruning(Pruning::Greedy)),
        ("top-3 pruning", base.clone().with_pruning(Pruning::TopK(3))),
        (
            "ncts (swap subs, §VI)",
            base.clone()
                .with_fredkin_substitutions(FredkinMode::SwapOnly),
        ),
        (
            "gf (full fredkin, §VI)",
            base.clone().with_fredkin_substitutions(FredkinMode::Full),
        ),
        ("no seeding dive", base.clone().with_initial_dive(false)),
    ] {
        evaluate(name, &w3, &opts, &widths);
    }

    println!("\n## 4-variable random functions");
    let w4 = workload_4var(scaled(40, 500));
    let base4 = base
        .clone()
        .with_max_nodes(60_000)
        .with_pruning(Pruning::TopK(4));
    print_row(&header, &widths);
    print_rule(&widths);
    for (name, opts) in [
        ("astar top-4 (default)", base4.clone()),
        (
            "eq4 cumulative top-4",
            base4
                .clone()
                .with_priority_mode(PriorityMode::CumulativeRate),
        ),
        ("astar greedy", base4.clone().with_pruning(Pruning::Greedy)),
        (
            "astar exhaustive",
            base4.clone().with_pruning(Pruning::Exhaustive),
        ),
        ("no restarts", base4.clone().with_restart_after(None)),
        ("no state dedup", base4.clone().with_dedup_states(false)),
    ] {
        evaluate(name, &w4, &opts, &widths);
    }

    println!("\n'avg simplified' shows the effect of template post-processing ([21]; the paper reports 6.10 → 6.05 on Table I).");

    // Post-processing comparison on MMD output, which the paper notes
    // "frequently contains sequences of gates that can be simplified".
    println!("\n## Post-processing of MMD unidirectional output (3-variable sample)");
    let peephole = PeepholeOptimizer::new();
    let (mut raw, mut templated, mut peeped, mut n) = (0usize, 0usize, 0usize, 0usize);
    for spec in workload_3var(scaled(200, 2016)) {
        let c = mmd_synthesize(&spec, MmdVariant::Unidirectional);
        raw += c.gate_count();
        let mut t = c.clone();
        simplify(&mut t);
        templated += t.gate_count();
        let mut pkt = c.clone();
        peephole.optimize(&mut pkt);
        peeped += pkt.gate_count();
        n += 1;
    }
    println!(
        "raw MMD avg {:.3} | after templates {:.3} | after peephole ([17]) {:.3} (n={n})",
        raw as f64 / n as f64,
        templated as f64 / n as f64,
        peeped as f64 / n as f64
    );
}
