//! Figures 1–6: the worked example — the Fig. 1 function, its PPRM
//! expansion (Eq. 3), the synthesized circuit of Fig. 3(d), and the
//! search-tree walk of Figs. 5/6 reproduced from the recorded trace.

use rmrls_circuit::render;
use rmrls_core::{synthesize, PriorityMode, SynthesisOptions, TraceEvent};
use rmrls_spec::Permutation;

fn main() {
    println!("# Figures 1-6 — the worked example\n");

    let spec = Permutation::from_vec(vec![1, 0, 7, 2, 3, 4, 5, 6]).expect("Fig. 1 spec");
    println!("## Fig. 1 — specification");
    println!("{spec}\n");

    let pprm = spec.to_multi_pprm();
    println!("## Eq. 3 — PPRM expansion");
    println!("{pprm}\n");

    // Basic algorithm (paper Eq. 4 reading), as in the Fig. 5 narrative.
    let opts = SynthesisOptions::new()
        .with_priority_mode(PriorityMode::CumulativeRate)
        .with_additional_substitutions(false)
        .with_trace(true);
    let result = synthesize(&pprm, &opts).expect("Fig. 1 function synthesizes");
    assert_eq!(result.circuit.to_permutation(), spec.as_slice());

    println!(
        "## Fig. 3(d) — synthesized circuit ({} gates)",
        result.circuit.gate_count()
    );
    println!("{}", result.circuit);
    println!("{}", render(&result.circuit));

    println!("## Figs. 5/6 — search walk (basic algorithm)");
    let mut expansions = 0;
    for event in &result.stats.trace {
        match event {
            TraceEvent::Expand { .. } => {
                expansions += 1;
                println!("step {expansions}: {event}");
            }
            _ => println!("         {event}"),
        }
    }
    println!("\nsearch stats: {}", result.stats);

    // Fig. 6: the additional substitutions enlarge the first level from
    // 3 to 7 children.
    let with_extra = SynthesisOptions::new()
        .with_priority_mode(PriorityMode::CumulativeRate)
        .with_trace(true);
    let r2 = synthesize(&pprm, &with_extra).expect("synthesis");
    let first_level_pushes = r2
        .stats
        .trace
        .iter()
        .take_while(|e| !matches!(e, TraceEvent::Expand { depth: 1, .. }))
        .filter(|e| matches!(e, TraceEvent::Push { depth: 1, .. }))
        .count();
    println!(
        "\n## Fig. 6 — with the §IV-D additional substitutions the root expands into {first_level_pushes} children (paper: 7)"
    );
}
