//! Table VII: random reversible circuits of 6-16 variables with at most
//! 25 gates (1000 samples each in the paper) — the hardest scalability
//! setting, where the paper reports 1-45% failures.

use rmrls_bench::run_scalability_table;

const PAPER_FAIL: &[(usize, f64)] = &[
    (6, 1.1),
    (7, 5.4),
    (8, 9.7),
    (9, 15.7),
    (10, 21.9),
    (11, 23.0),
    (12, 27.5),
    (13, 26.3),
    (14, 29.5),
    (15, 45.2),
    (16, 38.3),
];

fn main() {
    run_scalability_table("Table VII", 25, 25, 1000, PAPER_FAIL, 0x77);
}
