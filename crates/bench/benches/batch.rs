//! Batch-engine throughput benchmark: specs/sec at 1/2/4/8 workers
//! over a mixed workload (the bundled example suite plus random
//! Table-I/II-class permutations), and the canonical-form cache's
//! hit-rate on a relabeling-heavy workload.
//!
//! Every timed run is also a correctness run: per-worker-count results
//! must be byte-identical to the single-worker reference, every
//! circuit is equivalence-verified against its specification, and zero
//! contained panics are tolerated.
//!
//! Scaling context matters for reading the numbers: worker threads
//! beyond the physical core count cannot add throughput, so the report
//! records `available_cores` alongside the sweep. On a single-core
//! host the 8-worker figure measures scheduling overhead, not speedup.
//!
//! Output: a human-readable table, plus the `BENCH_pr4.json` payload on
//! request (`RMRLS_BENCH_OUT=path`). `RMRLS_SMOKE=1` shrinks the
//! workload to a CI-sized smoke run (correctness checks still run).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmrls_engine::canon::conjugate_table;
use rmrls_engine::manifest::{Admission, BatchJob, SpecData};
use rmrls_engine::{run_batch, suite_admissions, BatchOptions, ShutdownHandles};
use rmrls_obs::Json;
use rmrls_spec::{random_permutation, Permutation};

fn smoke() -> bool {
    std::env::var("RMRLS_SMOKE")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// The throughput workload: the example suite plus deterministic random
/// 3- and 4-variable permutations (Table I/II class — all solvable well
/// inside the default node budget).
fn throughput_workload(randoms: usize) -> Vec<Admission> {
    let mut jobs = suite_admissions("examples").expect("bundled suite");
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for i in 0..randoms {
        let n = 3 + (i % 2);
        jobs.push(Admission::Job(BatchJob {
            name: format!("rand{n}v-{i}"),
            origin: "bench:random".to_string(),
            spec: SpecData::Perm(random_permutation(n, &mut rng)),
        }));
    }
    jobs
}

/// The cache workload: `bases` random 3-variable permutations, each
/// admitted under four wire labelings (one trivial, three not). All
/// 4 labelings share one canonical form, so a warm cache serves 3 of
/// every 4 jobs.
fn relabeling_workload(bases: usize) -> Vec<Admission> {
    let mut rng = StdRng::seed_from_u64(0xcafe);
    let sigmas: [[u8; 3]; 4] = [[0, 1, 2], [1, 0, 2], [2, 1, 0], [1, 2, 0]];
    let mut jobs = Vec::new();
    for b in 0..bases {
        let p = random_permutation(3, &mut rng);
        for (s, sigma) in sigmas.iter().enumerate() {
            let table = conjugate_table(p.as_slice(), sigma);
            jobs.push(Admission::Job(BatchJob {
                name: format!("base{b}-relabel{s}"),
                origin: "bench:relabel".to_string(),
                spec: SpecData::Perm(Permutation::from_vec(table).expect("conjugate is a perm")),
            }));
        }
    }
    jobs
}

fn options(workers: usize, cache: Option<usize>) -> BatchOptions {
    BatchOptions {
        workers,
        cache_size: cache,
        // First-solution mode: a throughput bench measures jobs moved
        // through the pool, not circuit optimality — the default
        // optimal-seeking search would dominate every timing with a
        // handful of hard specs.
        synthesis: rmrls_core::SynthesisOptions::new()
            .with_stop_at_first(true)
            .with_max_nodes(200_000),
        ..BatchOptions::default()
    }
}

fn main() {
    let smoke = smoke();
    let (randoms, bases, reps) = if smoke { (8, 4, 1) } else { (72, 24, 3) };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("# Batch engine: specs/sec by worker count, cache hit-rate");
    println!(
        "mode: {}, available cores: {cores}\n",
        if smoke { "smoke" } else { "full" }
    );

    let jobs = throughput_workload(randoms);
    println!(
        "throughput workload: {} jobs (8 example benchmarks + {randoms} random 3/4-var perms)",
        jobs.len()
    );

    // Single-worker reference: both the baseline rate and the byte-wise
    // determinism oracle for every other worker count.
    let reference = run_batch(&jobs, &options(1, Some(1024)), &ShutdownHandles::new());
    assert_eq!(reference.counters.panics_contained, 0);
    assert_eq!(reference.counters.verify_failures, 0);
    assert_eq!(
        reference.counters.jobs_completed,
        jobs.len() as u64,
        "every throughput job must solve"
    );
    let reference_jsonl = reference.results_jsonl();

    println!(
        "\n| {:>7} | {:>12} | {:>9} |",
        "workers", "specs/sec", "vs 1w"
    );
    let mut sweep = Vec::new();
    let mut base_rate = 0.0;
    for workers in [1usize, 2, 4, 8] {
        // Median-of-reps to damp scheduler noise.
        let mut rates: Vec<f64> = (0..reps)
            .map(|_| {
                let run = run_batch(
                    &jobs,
                    &options(workers, Some(1024)),
                    &ShutdownHandles::new(),
                );
                assert_eq!(run.counters.panics_contained, 0);
                assert_eq!(run.counters.verify_failures, 0);
                assert_eq!(
                    run.results_jsonl(),
                    reference_jsonl,
                    "results must not depend on worker count ({workers})"
                );
                run.specs_per_second()
            })
            .collect();
        rates.sort_by(f64::total_cmp);
        let rate = rates[rates.len() / 2];
        if workers == 1 {
            base_rate = rate;
        }
        let speedup = rate / base_rate;
        println!("| {workers:>7} | {rate:>12.1} | {speedup:>8.2}x |");
        sweep.push(Json::Obj(vec![
            ("workers".to_string(), Json::uint(workers as u64)),
            ("specs_per_sec".to_string(), Json::Num(rate)),
            ("speedup_vs_1".to_string(), Json::Num(speedup)),
        ]));
    }

    // Cache section: same jobs, cache off vs on.
    let cache_jobs = relabeling_workload(bases);
    println!(
        "\ncache workload: {} jobs ({bases} bases x 4 labelings)",
        cache_jobs.len()
    );
    let start = Instant::now();
    let cold = run_batch(&cache_jobs, &options(1, None), &ShutdownHandles::new());
    let cold_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm = run_batch(
        &cache_jobs,
        &options(1, Some(1024)),
        &ShutdownHandles::new(),
    );
    let warm_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        warm.results_jsonl(),
        cold.results_jsonl(),
        "cache must not change results"
    );
    assert_eq!(warm.counters.verify_failures, 0);
    assert_eq!(
        warm.counters.verified_ok,
        cache_jobs.len() as u64,
        "every job, hit-served or not, is equivalence-verified"
    );
    let hit_rate = warm.counters.cache_hit_rate().expect("cache was consulted");
    println!(
        "  cache off: {cold_secs:.3}s   cache on: {warm_secs:.3}s   \
         hits: {} / misses: {} ({:.0}% hit rate)",
        warm.counters.cache_hits,
        warm.counters.cache_misses,
        hit_rate * 100.0
    );
    assert!(
        hit_rate >= 0.5,
        "relabeling workload must reach >=50% hit rate, got {:.0}%",
        hit_rate * 100.0
    );

    let report = Json::Obj(vec![
        ("bench".to_string(), Json::str("batch_pr4")),
        ("smoke".to_string(), Json::Bool(smoke)),
        ("available_cores".to_string(), Json::uint(cores as u64)),
        (
            "throughput".to_string(),
            Json::Obj(vec![
                ("jobs".to_string(), Json::uint(jobs.len() as u64)),
                ("reps".to_string(), Json::uint(reps as u64)),
                ("workers_sweep".to_string(), Json::Arr(sweep)),
            ]),
        ),
        (
            "cache".to_string(),
            Json::Obj(vec![
                ("jobs".to_string(), Json::uint(cache_jobs.len() as u64)),
                ("hit_rate".to_string(), Json::Num(hit_rate)),
                ("hits".to_string(), Json::uint(warm.counters.cache_hits)),
                ("misses".to_string(), Json::uint(warm.counters.cache_misses)),
                ("seconds_cache_off".to_string(), Json::Num(cold_secs)),
                ("seconds_cache_on".to_string(), Json::Num(warm_secs)),
                (
                    "verified_ok".to_string(),
                    Json::uint(warm.counters.verified_ok),
                ),
            ]),
        ),
    ]);

    if let Ok(path) = std::env::var("RMRLS_BENCH_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, format!("{report}\n")).expect("write RMRLS_BENCH_OUT");
            println!("\nwrote {path}");
        }
    }
}
