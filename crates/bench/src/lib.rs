//! Shared infrastructure for the experiment harness that regenerates
//! every table and figure of the paper.
//!
//! Each `benches/tableN.rs` target is a plain `harness = false` binary
//! run by `cargo bench`: it generates the paper's workload, synthesizes
//! with the configuration the paper describes, and prints the same rows
//! the paper reports, side by side with the paper's published numbers.
//!
//! Sample sizes default to laptop scale; set `RMRLS_FULL=1` to run the
//! paper-scale workloads (50 000 four-variable functions, 60-second time
//! limits, …). Every table header states the sample size actually used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use rmrls_core::{NoSolutionError, Pruning, Synthesis, SynthesisOptions};

/// Whether paper-scale workloads were requested via `RMRLS_FULL=1`.
pub fn full_scale() -> bool {
    std::env::var("RMRLS_FULL")
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

/// Picks the reduced or full-scale value.
pub fn scaled(reduced: usize, full: usize) -> usize {
    if full_scale() {
        full
    } else {
        reduced
    }
}

/// Per-function time limit, scaled the same way.
pub fn scaled_time(reduced: Duration, full: Duration) -> Duration {
    if full_scale() {
        full
    } else {
        reduced
    }
}

/// The synthesis configuration for the Table I sweep (basic algorithm,
/// three variables).
pub fn table1_options() -> SynthesisOptions {
    SynthesisOptions::new()
        .with_max_gates(20)
        .with_max_nodes(20_000)
        .with_time_limit(Duration::from_millis(500))
}

/// The synthesis configuration of §V-B for four-variable functions:
/// greedy-family pruning, 40-gate cap, 60-second limit in the paper.
pub fn table2_options() -> SynthesisOptions {
    SynthesisOptions::new()
        .with_pruning(Pruning::TopK(4))
        .with_max_gates(40)
        .with_time_limit(scaled_time(
            Duration::from_millis(250),
            Duration::from_secs(60),
        ))
}

/// The §V-B five-variable configuration: 60-gate cap, 180 s in the paper.
pub fn table3_options() -> SynthesisOptions {
    SynthesisOptions::new()
        .with_pruning(Pruning::TopK(4))
        // Deep solutions (30-50 gates) need the greedier heuristic
        // weight; see the AStar weight docs and the ablation bench.
        .with_astar_weight(1.0)
        .with_max_gates(60)
        .with_time_limit(scaled_time(
            Duration::from_millis(600),
            Duration::from_secs(180),
        ))
}

/// The benchmark-suite configuration (§V-C/V-D): 60 s in the paper.
pub fn table4_options() -> SynthesisOptions {
    SynthesisOptions::new()
        .with_pruning(Pruning::TopK(4))
        .with_max_gates(150)
        .with_time_limit(scaled_time(Duration::from_secs(3), Duration::from_secs(60)))
}

/// The scalability configuration (§V-E): greedy pruning, 60 s in the
/// paper, and "as soon as a solution was found we chose to move on".
pub fn scalability_options() -> SynthesisOptions {
    SynthesisOptions::new()
        .with_pruning(Pruning::Greedy)
        .with_max_gates(60)
        .with_stop_at_first(true)
        .with_time_limit(scaled_time(
            Duration::from_millis(500),
            Duration::from_secs(60),
        ))
}

/// A histogram over exact circuit sizes.
#[derive(Clone, Debug, Default)]
pub struct SizeHistogram {
    counts: Vec<usize>,
    total_gates: usize,
    samples: usize,
}

impl SizeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        SizeHistogram::default()
    }

    /// Records one synthesized circuit size.
    pub fn record(&mut self, gates: usize) {
        if self.counts.len() <= gates {
            self.counts.resize(gates + 1, 0);
        }
        self.counts[gates] += 1;
        self.total_gates += gates;
        self.samples += 1;
    }

    /// Number of circuits with exactly `gates` gates.
    pub fn count(&self, gates: usize) -> usize {
        self.counts.get(gates).copied().unwrap_or(0)
    }

    /// Largest recorded size.
    pub fn max_size(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Number of recorded circuits.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Mean circuit size.
    pub fn average(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_gates as f64 / self.samples as f64
        }
    }

    /// Counts bucketed into the ranges used by Tables V–VII
    /// (1–5, 6–10, …, 36–40).
    pub fn bucketed(&self, bucket_width: usize, num_buckets: usize) -> Vec<usize> {
        let mut out = vec![0usize; num_buckets];
        for (size, &count) in self.counts.iter().enumerate() {
            if size == 0 {
                continue;
            }
            let b = ((size - 1) / bucket_width).min(num_buckets - 1);
            out[b] += count;
        }
        out
    }
}

/// Appends one run-report line for a finished synthesis attempt — the
/// same JSON shape the CLI's `--report` flag writes (see
/// [`rmrls_core::run_report`] and DESIGN.md for the schema), so tooling
/// that parses CLI reports parses bench output unchanged.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_report_line<W: std::io::Write>(
    w: &mut W,
    options: &SynthesisOptions,
    result: &Result<Synthesis, NoSolutionError>,
) -> std::io::Result<()> {
    let (stats, circuit) = match result {
        Ok(r) => (&r.stats, Some(&r.circuit)),
        Err(e) => (&e.stats, None),
    };
    let json = rmrls_core::run_report(options, stats, circuit, None, 0);
    writeln!(w, "{json}")
}

/// Opens the JSON-lines run-report sink requested via the
/// `RMRLS_REPORT` environment variable, if any. Each synthesis attempt
/// of a table sweep appends one report line.
pub fn report_sink_from_env() -> Option<(String, std::io::BufWriter<std::fs::File>)> {
    let path = std::env::var("RMRLS_REPORT")
        .ok()
        .filter(|p| !p.is_empty())?;
    match std::fs::File::create(&path) {
        Ok(f) => Some((path, std::io::BufWriter::new(f))),
        Err(e) => {
            eprintln!("RMRLS_REPORT: cannot create {path}: {e}");
            None
        }
    }
}

/// Runs one of the scalability experiments (Tables V–VII, §V-E): for
/// each width 6..=16, generate random GT-library circuits with
/// `workload_gates` gates, simulate them into specifications, and
/// re-synthesize with the greedy option, moving on at the first solution
/// exactly as the paper does. Prints the bucketed size histogram and the
/// failure rate next to the paper's reported failure rate.
pub fn run_scalability_table(
    table_name: &str,
    workload_gates: usize,
    default_samples: usize,
    full_samples: usize,
    paper_failure_pct: &[(usize, f64)],
    seed: u64,
) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmrls_core::synthesize;
    use rmrls_spec::{random_circuit_spec, GateLibrary};

    let samples = scaled(default_samples, full_samples);
    let opts = scalability_options();
    println!("# {table_name} — random reversible circuits, max {workload_gates} gates");
    println!(
        "sample: {samples} specs per width (paper: {full_samples}), time limit {:?} (paper: 60s), greedy pruning, first solution\n",
        opts.time_limit.unwrap()
    );

    let buckets = [
        "1-5", "6-10", "11-15", "16-20", "21-25", "26-30", "31-35", "36-40",
    ];
    let mut widths_fmt = vec![9usize];
    widths_fmt.extend(std::iter::repeat_n(7, buckets.len()));
    widths_fmt.extend([7, 7, 12]);
    let mut header: Vec<String> = vec!["variables".into()];
    header.extend(buckets.iter().map(|b| b.to_string()));
    header.extend(["failed".into(), "fail %".into(), "paper fail %".into()]);
    print_row(&header, &widths_fmt);
    print_rule(&widths_fmt);

    let mut report_sink = report_sink_from_env();
    let mut reports_written = 0u64;

    for num_vars in 6..=16usize {
        let mut rng = StdRng::seed_from_u64(seed ^ (num_vars as u64) << 8);
        let mut hist = SizeHistogram::new();
        let mut failures = 0usize;
        for i in 0..samples {
            let (spec, _circuit) =
                random_circuit_spec(num_vars, workload_gates, GateLibrary::Gt, &mut rng);
            let result = synthesize(&spec.to_multi_pprm(), &opts);
            if let Some((path, w)) = &mut report_sink {
                match write_report_line(w, &opts, &result) {
                    Ok(()) => reports_written += 1,
                    Err(e) => eprintln!("RMRLS_REPORT: write to {path} failed: {e}"),
                }
            }
            match result {
                Ok(r) => {
                    debug_assert_eq!(
                        r.circuit.to_permutation(),
                        spec.as_slice(),
                        "width {num_vars} sample {i}"
                    );
                    hist.record(r.circuit.gate_count());
                }
                Err(_) => failures += 1,
            }
        }
        let bucketed = hist.bucketed(5, buckets.len());
        let mut row: Vec<String> = vec![num_vars.to_string()];
        row.extend(bucketed.iter().map(|c| c.to_string()));
        row.push(failures.to_string());
        row.push(format!("{:.1}", 100.0 * failures as f64 / samples as f64));
        row.push(
            paper_failure_pct
                .iter()
                .find(|(v, _)| *v == num_vars)
                .map(|(_, p)| format!("{p:.1}"))
                .unwrap_or_default(),
        );
        print_row(&row, &widths_fmt);
    }

    if let Some((path, w)) = &mut report_sink {
        use std::io::Write;
        if let Err(e) = w.flush() {
            eprintln!("RMRLS_REPORT: flushing {path} failed: {e}");
        } else {
            println!("\nwrote {reports_written} run-report lines to {path}");
        }
    }
}

/// Prints a Markdown-ish table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::from("|");
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!(" {cell:>w$} |"));
    }
    println!("{line}");
}

/// Prints a rule under a header.
pub fn print_rule(widths: &[usize]) {
    let mut line = String::from("|");
    for w in widths {
        line.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    println!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_average() {
        let mut h = SizeHistogram::new();
        for g in [3, 3, 5, 7] {
            h.record(g);
        }
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(4), 0);
        assert_eq!(h.max_size(), 7);
        assert_eq!(h.samples(), 4);
        assert!((h.average() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn bucketing_matches_table5_ranges() {
        let mut h = SizeHistogram::new();
        for g in [1, 5, 6, 10, 11, 40, 60] {
            h.record(g);
        }
        let b = h.bucketed(5, 8);
        assert_eq!(b[0], 2, "sizes 1-5");
        assert_eq!(b[1], 2, "sizes 6-10");
        assert_eq!(b[2], 1, "sizes 11-15");
        assert_eq!(b[7], 2, "sizes 36+ clamp into the last bucket");
    }

    #[test]
    fn scaled_respects_env() {
        // Not set in the test environment by default.
        if !full_scale() {
            assert_eq!(scaled(10, 100), 10);
        }
    }

    #[test]
    fn report_line_matches_cli_report_shape() {
        use rmrls_core::synthesize;
        use rmrls_obs::Json;
        use rmrls_spec::Permutation;

        // Figure 1 example: a small spec every preset solves instantly.
        let spec = Permutation::from_vec(vec![1, 0, 7, 2, 3, 4, 5, 6]).unwrap();
        let opts = table1_options();
        let result = synthesize(&spec.to_multi_pprm(), &opts);
        assert!(result.is_ok());

        let mut buf = Vec::new();
        write_report_line(&mut buf, &opts, &result).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let json = Json::parse(line.trim()).expect("report line must be valid JSON");

        let obj = match &json {
            Json::Obj(pairs) => pairs,
            other => panic!("expected object, got {other:?}"),
        };
        let get = |k: &str| obj.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        assert_eq!(get("schema_version"), Some(&Json::Num(1.0)));
        assert_eq!(get("solved"), Some(&Json::Bool(true)));
        assert!(matches!(get("circuit"), Some(Json::Obj(_))));
        assert!(matches!(get("stats"), Some(Json::Obj(_))));
        // Bench reports carry no metrics registry.
        assert_eq!(get("metrics"), Some(&Json::Null));

        // A failed attempt reports a null circuit on the same schema.
        let tight = table1_options().with_max_gates(0);
        let failed = synthesize(&spec.to_multi_pprm(), &tight);
        assert!(failed.is_err());
        let mut buf = Vec::new();
        write_report_line(&mut buf, &tight, &failed).unwrap();
        let line = String::from_utf8(buf).unwrap();
        let json = Json::parse(line.trim()).unwrap();
        let Json::Obj(pairs) = json else { panic!() };
        let circuit = pairs
            .iter()
            .find(|(k, _)| k == "circuit")
            .map(|(_, v)| v.clone());
        assert_eq!(circuit, Some(Json::Null));
    }

    #[test]
    fn option_presets_differ() {
        assert_eq!(table2_options().max_gates, Some(40));
        assert_eq!(table3_options().max_gates, Some(60));
        assert!(scalability_options().stop_at_first);
    }
}
