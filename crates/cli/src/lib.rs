//! Implementation of the `rmrls` command-line tool.
//!
//! Subcommands:
//!
//! - `rmrls synth` — synthesize a specification (inline permutation,
//!   named benchmark, or TFC file) with RMRLS;
//! - `rmrls batch` — run a manifest or bundled suite of specifications
//!   on the concurrent batch engine;
//! - `rmrls serve` — run the long-lived synthesis daemon (`POST
//!   /synthesize`, request status, live telemetry, crash-safe journal);
//! - `rmrls mmd` — synthesize with the MMD transformation baseline;
//! - `rmrls info` — inspect a TFC circuit (gates, cost, diagram);
//! - `rmrls trace` — summarize a flight-recorder dump (top phases,
//!   record-kind counts, anomaly context);
//! - `rmrls benchmarks` — list the built-in benchmark suite.
//!
//! The library layer exists so argument parsing and command execution
//! are unit-testable; `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::time::Duration;

use rmrls_baselines::{mmd_synthesize, MmdVariant};
use rmrls_circuit::{analyze, real, render, simplify, simplify_with_stats, tfc, Circuit};
use rmrls_core::{
    run_report, synthesize_bidirectional, synthesize_embedded, synthesize_with_observer,
    FlightRecorder, FredkinMode, Observer, Progress, Pruning, SynthesisOptions,
};
use rmrls_obs::{
    chrome_trace_json, prometheus_text, EventSink, JsonLinesSink, RecorderSnapshot, TraceKind,
    TraceRecord,
};
use rmrls_pprm::MultiPprm;
use rmrls_spec::{benchmarks, Permutation};

/// A usage or input error, printed to stderr with exit code 2.
#[derive(Debug)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text for `--help`.
pub const USAGE: &str = "\
rmrls — Reed-Muller reversible logic synthesizer

USAGE:
  rmrls synth    [OPTIONS] (--spec \"1,0,7,2,...\" | --benchmark NAME |
                            --tfc FILE | --spec-file FILE)
  rmrls batch    [OPTIONS] (--manifest FILE | --suite table4|examples|
                            extended|all)
  rmrls serve    [OPTIONS] [--addr HOST:PORT]   long-lived synthesis
                 daemon: POST /synthesize, GET /requests/<id>[/events],
                 /metrics, /healthz, /jobs
  rmrls mmd      (--spec \"...\" | --benchmark NAME | --tfc FILE) [--uni]
  rmrls info     --tfc FILE
  rmrls analyze  --tfc FILE
  rmrls simplify --tfc FILE [--tfc-out FILE]
  rmrls embed    --table FILE --outputs N   (irreversible truth table:
                 2^k output words, whitespace-separated; embeds with the
                 don't-care portfolio, then synthesizes)
  rmrls trace    --dump FILE [--chrome-out FILE]   summarize a
                 flight-recorder dump (phases, anomalies, record counts)
  rmrls store    (stats | fsck | compact) --store FILE   inspect or
                 repair a persistent circuit store
  rmrls benchmarks

SYNTH OPTIONS:
  --pruning greedy|exhaustive|topN   substitution pruning (default exhaustive)
  --threads N                        search threads inside the job
                                     (default: available parallelism;
                                     1 = serial; output is byte-identical
                                     for any value)
  --time-limit SECONDS               wall-clock budget
  --max-gates N                      circuit size cap
  --bidi                             synthesize f and f^-1, keep the smaller
  --fredkin swap|full                enable Fredkin substitutions (SVI ext.)
  --simplify                         post-process with templates
  --render                           print an ASCII diagram
  --tfc-out FILE                     write the circuit as TFC
  --real-out FILE                    write the circuit as RevLib .real
  --report FILE                      write a machine-readable JSON run report
  --progress                         print periodic search progress to stderr
  --log-json FILE                    stream search events as JSON lines
                                     (FILE '-' streams to stderr)
  --profile                          collect a per-phase timing profile
                                     (scoring / materialize / dedup) into
                                     the output and --report
  --trace FILE                       write the flight-recorder dump as
                                     JSON (read it with 'rmrls trace')
  --trace-out FILE                   write a Chrome trace-event JSON file
                                     (load in chrome://tracing)
  --metrics-out FILE                 write metrics as Prometheus text
                                     exposition
  --metrics-addr HOST:PORT           serve live telemetry over HTTP while
                                     the search runs: GET /metrics
                                     (Prometheus text), /healthz, /jobs.
                                     Port 0 picks a free port; the bound
                                     address is announced on stderr

BATCH OPTIONS:
  --jobs N            worker threads (default: available parallelism)
  --threads N         search threads inside each job (default 1; results
                      are byte-identical for any value, but workers ×
                      threads is checked against the core count and
                      oversubscription draws a warning)
  --deadline-ms M     per-job wall-clock deadline in milliseconds
  --cache-size K      canonical-form result cache capacity (default 1024)
  --no-cache          disable the result cache
  --canon-limit N     widest spec canonicalized for caching (default 8)
  --no-verify         skip per-circuit equivalence verification
  --fallback          never-fail mode: retry failed searches with relaxed
                      pruning, then the MMD baseline (tier recorded per
                      job as solved_by)
  --results FILE      write per-job results as a crash-safe journal
                      (header line + one JSON record per job, fsync'd as
                      jobs finish; readable as JSON lines)
  --resume FILE       resume from a results journal: completed jobs are
                      recovered, only the remainder re-runs (requires
                      the same job list and options; a torn final
                      record is tolerated)
  --report FILE       write the aggregate JSON run report
  --trace DIR         write per-job flight-recorder dumps into DIR as
                      <index>-<job>.trace.json; jobs with anomalies
                      (shed, escalation, deadline, panic) also write
                      <index>-<job>.anomaly.json
  --profile           aggregate a per-phase timing profile across jobs
                      into the batch report
  --store FILE        persistent circuit store: canonical results are
                      loaded (verified) at start and fresh syntheses are
                      appended, so reruns serve repeated specs from disk
                      instead of searching. Crash-safe and
                      corruption-detecting; see 'rmrls store'
  --strict            exit nonzero on any error, panic, or verify failure
  --metrics-addr HOST:PORT
                      serve live telemetry over HTTP during the run:
                      GET /metrics (Prometheus counters, latency
                      histograms, sampled gauges), /healthz (liveness +
                      degraded flag), /jobs (per-job status board).
                      Port 0 picks a free port; the bound address is
                      announced on stderr. Telemetry is observation-only:
                      results are byte-identical with or without it

SERVE OPTIONS:
  --addr HOST:PORT    listen address (default 127.0.0.1:0; port 0 picks
                      a free port, announced on stderr)
  --jobs N            worker threads executing requests (default:
                      available parallelism)
  --threads N         search threads inside each request (default 1)
  --queue N           admission-queue depth; beyond it new requests are
                      shed with 429 + Retry-After (default 16)
  --deadline-ms M     default per-request deadline for requests that do
                      not carry their own deadline_ms
  --cache-size K      shared canonical result cache, warm across
                      requests (default 1024); --no-cache disables it
  --canon-limit N     widest spec canonicalized for caching (default 8)
  --no-verify         skip per-circuit equivalence verification
  --fallback          never-fail mode: relaxed pruning then the MMD
                      baseline for requests RMRLS cannot solve
  --max-body-bytes N  largest accepted request body (default 262144)
  --journal FILE      append-only request journal: on restart completed
                      requests are restored read-only and interrupted
                      ones re-run (crash recovery)
  --store FILE        persistent circuit store shared by all workers:
                      the warm cache survives restarts, and every fresh
                      synthesis is appended (store gauges on /metrics)

STORE SUBCOMMANDS (rmrls store <sub> --store FILE):
  stats               print the store's index and health counters as JSON
  fsck                read-only integrity check: scans every record,
                      re-verifies every circuit, reports quarantined /
                      torn / unverifiable bytes without modifying the
                      file; exits nonzero if damage is found
  compact             atomically rewrite the file keeping only the live
                      best-known records (drops quarantined regions and
                      superseded entries)
";

/// Where the input specification comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecSource {
    /// Inline permutation, e.g. `1,0,7,2,3,4,5,6`.
    Inline(String),
    /// Named benchmark from the built-in suite.
    Benchmark(String),
    /// TFC circuit file whose permutation is re-synthesized.
    Tfc(String),
    /// `.perm` specification file.
    PermFile(String),
}

impl SpecSource {
    /// Resolves the source into a multi-output PPRM plus a display name.
    ///
    /// # Errors
    ///
    /// Fails on malformed inline specs, unknown benchmarks, or unreadable
    /// TFC files.
    pub fn resolve(&self) -> Result<(MultiPprm, String), CliError> {
        match self {
            SpecSource::Inline(text) => {
                let values: Result<Vec<u64>, _> =
                    text.split(',').map(|s| s.trim().parse::<u64>()).collect();
                let values = values.map_err(|e| err(format!("bad --spec: {e}")))?;
                let perm =
                    Permutation::from_vec(values).map_err(|e| err(format!("bad --spec: {e}")))?;
                Ok((perm.to_multi_pprm(), format!("{perm}")))
            }
            SpecSource::Benchmark(name) => {
                let b = benchmarks::find(name)
                    .ok_or_else(|| err(format!("unknown benchmark '{name}'")))?;
                Ok((b.to_multi_pprm(), b.to_string()))
            }
            SpecSource::PermFile(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| err(format!("cannot read {path}: {e}")))?;
                let perm = rmrls_spec::formats::parse_permutation(&text)
                    .map_err(|e| err(format!("cannot parse {path}: {e}")))?;
                Ok((perm.to_multi_pprm(), format!("permutation from {path}")))
            }
            SpecSource::Tfc(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| err(format!("cannot read {path}: {e}")))?;
                let circuit =
                    tfc::parse(&text).map_err(|e| err(format!("cannot parse {path}: {e}")))?;
                if circuit.width() > 16 {
                    return Err(err("TFC re-synthesis is limited to 16 wires"));
                }
                let perm = Permutation::from_circuit(&circuit);
                Ok((perm.to_multi_pprm(), format!("circuit from {path}")))
            }
        }
    }
}

/// Where a batch run's job list comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchSource {
    /// Manifest file, one job per line.
    Manifest(String),
    /// Bundled suite: `table4`, `examples`, `extended`, or `all`.
    Suite(String),
}

/// What `rmrls store` does to a store file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreAction {
    /// Print index and health counters.
    Stats,
    /// Read-only integrity check (exits nonzero on damage).
    Fsck,
    /// Atomic rewrite keeping only live records.
    Compact,
}

/// Parsed command line.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// `rmrls synth`.
    Synth {
        /// Input specification.
        source: SpecSource,
        /// Pruning strategy.
        pruning: Pruning,
        /// Intra-job search threads (`None` = available parallelism).
        threads: Option<usize>,
        /// Wall-clock budget.
        time_limit: Option<Duration>,
        /// Gate cap.
        max_gates: Option<usize>,
        /// Synthesize both directions, keep the smaller circuit.
        bidirectional: bool,
        /// Fredkin substitution mode.
        fredkin: FredkinMode,
        /// Run template simplification afterwards.
        simplify: bool,
        /// Print an ASCII diagram.
        render: bool,
        /// Write the result to this TFC file.
        tfc_out: Option<String>,
        /// Write the result to this RevLib .real file.
        real_out: Option<String>,
        /// Write a machine-readable JSON run report to this file.
        report: Option<String>,
        /// Print periodic progress snapshots to stderr.
        progress: bool,
        /// Stream search events as JSON lines to this file (`-` =
        /// stderr).
        log_json: Option<String>,
        /// Collect a per-phase timing profile into output and report.
        profile: bool,
        /// Write the flight-recorder dump (JSON) to this file.
        trace: Option<String>,
        /// Write a Chrome trace-event JSON export to this file.
        trace_out: Option<String>,
        /// Write a Prometheus text exposition of metrics to this file.
        metrics_out: Option<String>,
        /// Serve live telemetry over HTTP at this address while the
        /// search runs.
        metrics_addr: Option<String>,
    },
    /// `rmrls batch`.
    Batch {
        /// Job list: a manifest file or a bundled suite.
        source: BatchSource,
        /// Worker threads (`None` = available parallelism).
        jobs: Option<usize>,
        /// Intra-job search threads (`None` = the batch default of 1;
        /// batch parallelism comes from `jobs` unless asked otherwise).
        threads: Option<usize>,
        /// Per-job wall-clock deadline.
        deadline: Option<Duration>,
        /// Result-cache capacity (`None` disables the cache).
        cache_size: Option<usize>,
        /// Widest spec canonicalized for caching.
        canon_limit: usize,
        /// Verify each circuit against its specification.
        verify: bool,
        /// Run the fallback ladder so every well-formed job solves.
        fallback: bool,
        /// Write per-job records to this file as a crash-safe journal.
        results: Option<String>,
        /// Resume from this results journal, skipping completed jobs.
        resume: Option<String>,
        /// Write the aggregate JSON run report to this file.
        report: Option<String>,
        /// Write per-job flight-recorder dumps into this directory.
        trace_dir: Option<String>,
        /// Aggregate a per-phase timing profile into the batch report.
        profile: bool,
        /// Exit nonzero on any error, panic, or verification failure.
        strict: bool,
        /// Serve live telemetry over HTTP at this address during the
        /// run.
        metrics_addr: Option<String>,
        /// Persistent circuit store opened (or created) for the run.
        store: Option<String>,
    },
    /// `rmrls serve`.
    Serve {
        /// Listen address (`host:0` binds a free port, announced on
        /// stderr).
        addr: String,
        /// Worker threads executing requests (`None` = available
        /// parallelism).
        jobs: Option<usize>,
        /// Intra-request search threads (`None` = the serve default of
        /// 1; concurrency comes from `jobs` unless asked otherwise).
        threads: Option<usize>,
        /// Admission-queue depth; beyond it requests are shed with 429.
        queue: usize,
        /// Default deadline for requests without their own
        /// `deadline_ms`.
        deadline: Option<Duration>,
        /// Result-cache capacity (`None` disables the cache).
        cache_size: Option<usize>,
        /// Widest spec canonicalized for caching.
        canon_limit: usize,
        /// Verify each circuit against its specification.
        verify: bool,
        /// Run the fallback ladder so every well-formed request solves.
        fallback: bool,
        /// Largest accepted request body in bytes.
        max_body_bytes: usize,
        /// Request-journal path enabling crash recovery.
        journal: Option<String>,
        /// Persistent circuit store keeping the warm cache across
        /// restarts.
        store: Option<String>,
    },
    /// `rmrls mmd`.
    Mmd {
        /// Input specification.
        source: SpecSource,
        /// Unidirectional instead of bidirectional.
        unidirectional: bool,
    },
    /// `rmrls info`.
    Info {
        /// TFC file to inspect.
        tfc_path: String,
    },
    /// `rmrls analyze`.
    Analyze {
        /// TFC file to analyze.
        tfc_path: String,
    },
    /// `rmrls simplify`.
    Simplify {
        /// TFC file to simplify.
        tfc_path: String,
        /// Output file (stdout when absent).
        tfc_out: Option<String>,
    },
    /// `rmrls embed`.
    Embed {
        /// Truth-table file (whitespace-separated output words).
        table_path: String,
        /// Number of output bits.
        outputs: usize,
        /// Wall-clock budget.
        time_limit: Option<Duration>,
    },
    /// `rmrls trace`.
    Trace {
        /// Flight-recorder dump file to summarize.
        dump: String,
        /// Also write a Chrome trace-event export to this file.
        chrome_out: Option<String>,
    },
    /// `rmrls store`.
    Store {
        /// Subcommand: what to do with the store file.
        action: StoreAction,
        /// Store file path.
        store: String,
    },
    /// `rmrls benchmarks`.
    Benchmarks,
    /// `rmrls --help` / no arguments.
    Help,
}

fn parse_source(
    spec: Option<String>,
    benchmark: Option<String>,
    tfc_path: Option<String>,
    spec_file: Option<String>,
) -> Result<SpecSource, CliError> {
    match (spec, benchmark, tfc_path, spec_file) {
        (Some(s), None, None, None) => Ok(SpecSource::Inline(s)),
        (None, Some(b), None, None) => Ok(SpecSource::Benchmark(b)),
        (None, None, Some(t), None) => Ok(SpecSource::Tfc(t)),
        (None, None, None, Some(p)) => Ok(SpecSource::PermFile(p)),
        _ => Err(err(
            "provide exactly one of --spec, --benchmark, --tfc, --spec-file",
        )),
    }
}

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] on unknown flags, missing values, or conflicting
/// sources.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let mut args = args.into_iter().peekable();
    let Some(cmd) = args.next() else {
        return Ok(Command::Help);
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        return Ok(Command::Help);
    }
    // `rmrls store` takes its subcommand as the next positional word.
    let store_action = if cmd == "store" {
        Some(match args.next().as_deref() {
            Some("stats") => StoreAction::Stats,
            Some("fsck") => StoreAction::Fsck,
            Some("compact") => StoreAction::Compact,
            Some(other) => {
                return Err(err(format!(
                    "unknown store subcommand '{other}' (stats, fsck, compact)"
                )))
            }
            None => return Err(err("store needs a subcommand: stats, fsck, or compact")),
        })
    } else {
        None
    };

    let mut spec = None;
    let mut benchmark = None;
    let mut tfc_path = None;
    let mut pruning = Pruning::Exhaustive;
    let mut time_limit = None;
    let mut max_gates = None;
    let mut do_simplify = false;
    let mut do_render = false;
    let mut tfc_out = None;
    let mut real_out = None;
    let mut unidirectional = false;
    let mut bidirectional = false;
    let mut fredkin = FredkinMode::Off;
    let mut table_path = None;
    let mut outputs = None;
    let mut spec_file = None;
    let mut report = None;
    let mut progress = false;
    let mut log_json = None;
    let mut manifest = None;
    let mut suite = None;
    let mut jobs = None;
    let mut threads = None;
    let mut deadline_ms = None;
    let mut cache_size = None;
    let mut no_cache = false;
    let mut canon_limit = None;
    let mut no_verify = false;
    let mut fallback = false;
    let mut results = None;
    let mut resume = None;
    let mut strict = false;
    let mut profile = false;
    let mut trace = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut metrics_addr = None;
    let mut dump = None;
    let mut chrome_out = None;
    let mut addr = None;
    let mut queue = None;
    let mut max_body_bytes = None;
    let mut journal = None;
    let mut store = None;

    let take_value =
        |args: &mut std::iter::Peekable<I::IntoIter>, flag: &str| -> Result<String, CliError> {
            args.next()
                .ok_or_else(|| err(format!("{flag} needs a value")))
        };

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => spec = Some(take_value(&mut args, "--spec")?),
            "--benchmark" => benchmark = Some(take_value(&mut args, "--benchmark")?),
            "--tfc" => tfc_path = Some(take_value(&mut args, "--tfc")?),
            "--pruning" => {
                let v = take_value(&mut args, "--pruning")?;
                pruning = match v.as_str() {
                    "greedy" => Pruning::Greedy,
                    "exhaustive" => Pruning::Exhaustive,
                    other => match other.strip_prefix("top") {
                        Some(k) => Pruning::TopK(
                            k.parse()
                                .map_err(|_| err(format!("bad --pruning value '{other}'")))?,
                        ),
                        None => return Err(err(format!("bad --pruning value '{other}'"))),
                    },
                };
            }
            "--time-limit" => {
                let v = take_value(&mut args, "--time-limit")?;
                let secs: f64 = v.parse().map_err(|_| err("bad --time-limit"))?;
                time_limit = Some(Duration::from_secs_f64(secs));
            }
            "--max-gates" => {
                let v = take_value(&mut args, "--max-gates")?;
                max_gates = Some(v.parse().map_err(|_| err("bad --max-gates"))?);
            }
            "--simplify" => do_simplify = true,
            "--render" => do_render = true,
            "--tfc-out" => tfc_out = Some(take_value(&mut args, "--tfc-out")?),
            "--real-out" => real_out = Some(take_value(&mut args, "--real-out")?),
            "--uni" => unidirectional = true,
            "--bidi" => bidirectional = true,
            "--table" => table_path = Some(take_value(&mut args, "--table")?),
            "--spec-file" => spec_file = Some(take_value(&mut args, "--spec-file")?),
            "--outputs" => {
                let v = take_value(&mut args, "--outputs")?;
                outputs = Some(v.parse().map_err(|_| err("bad --outputs"))?);
            }
            "--report" => report = Some(take_value(&mut args, "--report")?),
            "--progress" => progress = true,
            "--log-json" => log_json = Some(take_value(&mut args, "--log-json")?),
            "--manifest" => manifest = Some(take_value(&mut args, "--manifest")?),
            "--suite" => suite = Some(take_value(&mut args, "--suite")?),
            "--jobs" => {
                let v = take_value(&mut args, "--jobs")?;
                let n: usize = v.parse().map_err(|_| err("bad --jobs"))?;
                if n == 0 {
                    return Err(err("--jobs must be at least 1"));
                }
                jobs = Some(n);
            }
            "--threads" => {
                let v = take_value(&mut args, "--threads")?;
                let n: usize = v.parse().map_err(|_| err("bad --threads"))?;
                if n == 0 {
                    return Err(err("--threads must be at least 1"));
                }
                threads = Some(n);
            }
            "--deadline-ms" => {
                let v = take_value(&mut args, "--deadline-ms")?;
                let ms: u64 = v.parse().map_err(|_| err("bad --deadline-ms"))?;
                deadline_ms = Some(Duration::from_millis(ms));
            }
            "--cache-size" => {
                let v = take_value(&mut args, "--cache-size")?;
                cache_size = Some(v.parse().map_err(|_| err("bad --cache-size"))?);
            }
            "--no-cache" => no_cache = true,
            "--canon-limit" => {
                let v = take_value(&mut args, "--canon-limit")?;
                canon_limit = Some(v.parse().map_err(|_| err("bad --canon-limit"))?);
            }
            "--no-verify" => no_verify = true,
            "--fallback" => fallback = true,
            "--results" => results = Some(take_value(&mut args, "--results")?),
            "--resume" => resume = Some(take_value(&mut args, "--resume")?),
            "--strict" => strict = true,
            "--profile" => profile = true,
            "--trace" => trace = Some(take_value(&mut args, "--trace")?),
            "--trace-out" => trace_out = Some(take_value(&mut args, "--trace-out")?),
            "--metrics-out" => metrics_out = Some(take_value(&mut args, "--metrics-out")?),
            "--metrics-addr" => metrics_addr = Some(take_value(&mut args, "--metrics-addr")?),
            "--addr" => addr = Some(take_value(&mut args, "--addr")?),
            "--queue" => {
                let v = take_value(&mut args, "--queue")?;
                let n: usize = v.parse().map_err(|_| err("bad --queue"))?;
                if n == 0 {
                    return Err(err("--queue must be at least 1"));
                }
                queue = Some(n);
            }
            "--max-body-bytes" => {
                let v = take_value(&mut args, "--max-body-bytes")?;
                max_body_bytes = Some(v.parse().map_err(|_| err("bad --max-body-bytes"))?);
            }
            "--journal" => journal = Some(take_value(&mut args, "--journal")?),
            "--store" => store = Some(take_value(&mut args, "--store")?),
            "--dump" => dump = Some(take_value(&mut args, "--dump")?),
            "--chrome-out" => chrome_out = Some(take_value(&mut args, "--chrome-out")?),
            "--fredkin" => {
                fredkin = match take_value(&mut args, "--fredkin")?.as_str() {
                    "swap" => FredkinMode::SwapOnly,
                    "full" => FredkinMode::Full,
                    other => return Err(err(format!("bad --fredkin value '{other}'"))),
                };
            }
            other => return Err(err(format!("unknown argument '{other}'"))),
        }
    }

    if report.is_some() && cmd != "synth" && cmd != "batch" {
        return Err(err("--report applies only to 'synth' and 'batch'"));
    }
    if (progress || log_json.is_some()) && cmd != "synth" {
        return Err(err("--progress and --log-json apply only to 'synth'"));
    }
    if (profile || trace.is_some()) && cmd != "synth" && cmd != "batch" {
        return Err(err(
            "--profile and --trace apply only to 'synth' and 'batch'",
        ));
    }
    if (trace_out.is_some() || metrics_out.is_some()) && cmd != "synth" {
        return Err(err("--trace-out and --metrics-out apply only to 'synth'"));
    }
    if metrics_addr.is_some() && cmd != "synth" && cmd != "batch" {
        return Err(err("--metrics-addr applies only to 'synth' and 'batch'"));
    }
    if (dump.is_some() || chrome_out.is_some()) && cmd != "trace" {
        return Err(err("--dump and --chrome-out apply only to 'trace'"));
    }
    if threads.is_some() && cmd != "synth" && cmd != "batch" && cmd != "serve" {
        return Err(err(
            "--threads applies only to 'synth', 'batch', and 'serve'",
        ));
    }
    if (addr.is_some() || queue.is_some() || max_body_bytes.is_some() || journal.is_some())
        && cmd != "serve"
    {
        return Err(err(
            "--addr, --queue, --max-body-bytes, and --journal apply only to 'serve'",
        ));
    }
    if store.is_some() && cmd != "batch" && cmd != "serve" && cmd != "store" {
        return Err(err("--store applies only to 'batch', 'serve', and 'store'"));
    }

    match cmd.as_str() {
        "synth" => {
            if progress && log_json.as_deref() == Some("-") {
                return Err(err(
                    "--progress and '--log-json -' both write to stderr; pick one",
                ));
            }
            if bidirectional && (progress || log_json.is_some()) {
                return Err(err(
                    "--progress/--log-json instrument a single search; drop --bidi \
                     (--report works with --bidi)",
                ));
            }
            if bidirectional && (trace.is_some() || trace_out.is_some()) {
                return Err(err(
                    "--trace/--trace-out record a single search; drop --bidi",
                ));
            }
            Ok(Command::Synth {
                source: parse_source(spec, benchmark, tfc_path, spec_file)?,
                pruning,
                threads,
                time_limit,
                max_gates,
                bidirectional,
                fredkin,
                simplify: do_simplify,
                render: do_render,
                tfc_out,
                real_out,
                report,
                progress,
                log_json,
                profile,
                trace,
                trace_out,
                metrics_out,
                metrics_addr,
            })
        }
        "batch" => {
            if no_cache && cache_size.is_some() {
                return Err(err("--no-cache conflicts with --cache-size"));
            }
            let source = match (manifest, suite) {
                (Some(m), None) => BatchSource::Manifest(m),
                (None, Some(s)) => BatchSource::Suite(s),
                _ => return Err(err("batch needs exactly one of --manifest, --suite")),
            };
            Ok(Command::Batch {
                source,
                jobs,
                threads,
                deadline: deadline_ms,
                cache_size: if no_cache {
                    None
                } else {
                    Some(cache_size.unwrap_or(1024))
                },
                canon_limit: canon_limit.unwrap_or(8),
                verify: !no_verify,
                fallback,
                results,
                resume,
                report,
                trace_dir: trace,
                profile,
                strict,
                metrics_addr,
                store,
            })
        }
        "serve" => {
            if no_cache && cache_size.is_some() {
                return Err(err("--no-cache conflicts with --cache-size"));
            }
            Ok(Command::Serve {
                addr: addr.unwrap_or_else(|| "127.0.0.1:0".to_string()),
                jobs,
                threads,
                queue: queue.unwrap_or(16),
                deadline: deadline_ms,
                cache_size: if no_cache {
                    None
                } else {
                    Some(cache_size.unwrap_or(1024))
                },
                canon_limit: canon_limit.unwrap_or(8),
                verify: !no_verify,
                fallback,
                max_body_bytes: max_body_bytes.unwrap_or(256 * 1024),
                journal,
                store,
            })
        }
        "store" => Ok(Command::Store {
            action: store_action.expect("store action parsed above"),
            store: store.ok_or_else(|| err("store needs --store FILE"))?,
        }),
        "trace" => Ok(Command::Trace {
            dump: dump.ok_or_else(|| err("trace needs --dump FILE"))?,
            chrome_out,
        }),
        "mmd" => Ok(Command::Mmd {
            source: parse_source(spec, benchmark, tfc_path, spec_file)?,
            unidirectional,
        }),
        "info" => Ok(Command::Info {
            tfc_path: tfc_path.ok_or_else(|| err("info needs --tfc FILE"))?,
        }),
        "analyze" => Ok(Command::Analyze {
            tfc_path: tfc_path.ok_or_else(|| err("analyze needs --tfc FILE"))?,
        }),
        "simplify" => Ok(Command::Simplify {
            tfc_path: tfc_path.ok_or_else(|| err("simplify needs --tfc FILE"))?,
            tfc_out,
        }),
        "embed" => Ok(Command::Embed {
            table_path: table_path.ok_or_else(|| err("embed needs --table FILE"))?,
            outputs: outputs.ok_or_else(|| err("embed needs --outputs N"))?,
            time_limit,
        }),
        "benchmarks" => Ok(Command::Benchmarks),
        other => Err(err(format!("unknown command '{other}'"))),
    }
}

fn report(circuit: &Circuit, name: &str, out: &mut impl fmt::Write) -> fmt::Result {
    writeln!(out, "specification: {name}")?;
    writeln!(out, "circuit: {circuit}")?;
    writeln!(
        out,
        "gates: {}   quantum cost: {}   width: {}",
        circuit.gate_count(),
        circuit.quantum_cost(),
        circuit.width()
    )
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on input errors or failed synthesis.
pub fn run(command: Command, out: &mut impl fmt::Write) -> Result<(), CliError> {
    // Fault injection (no-op unless built with `--features failpoints`
    // *and* RMRLS_FAILPOINTS is set) — armed before any work starts so
    // the CI fault matrix covers the whole run.
    rmrls_obs::fail::configure_from_env().map_err(err)?;
    match command {
        Command::Help => {
            out.write_str(USAGE).map_err(|e| err(e.to_string()))?;
            Ok(())
        }
        Command::Benchmarks => {
            for b in benchmarks::table4_suite()
                .iter()
                .chain(&benchmarks::example_suite())
            {
                writeln!(out, "{b}").map_err(|e| err(e.to_string()))?;
            }
            Ok(())
        }
        Command::Synth {
            source,
            pruning,
            threads,
            time_limit,
            max_gates,
            bidirectional,
            fredkin,
            simplify: do_simplify,
            render: do_render,
            tfc_out,
            real_out,
            report: report_path,
            progress,
            log_json,
            profile,
            trace,
            trace_out,
            metrics_out,
            metrics_addr,
        } => {
            let (pprm, name) = source.resolve()?;
            let mut opts = SynthesisOptions::new()
                .with_pruning(pruning)
                .with_fredkin_substitutions(fredkin)
                .with_profile(profile);
            if let Some(n) = threads {
                opts = opts.with_threads(n);
            }
            if let Some(t) = time_limit {
                opts = opts.with_time_limit(t);
            }
            if let Some(g) = max_gates {
                opts = opts.with_max_gates(g);
            }
            // One recorder serves both the raw dump and the Chrome
            // export; absent both flags the search pays nothing.
            let recorder =
                (trace.is_some() || trace_out.is_some()).then(FlightRecorder::with_default_budget);

            let mut obs = match &log_json {
                Some(path) if path == "-" => {
                    Observer::with_sink(Box::new(JsonLinesSink::new(std::io::stderr())))
                }
                Some(path) => {
                    let file = std::fs::File::create(path)
                        .map_err(|e| err(format!("cannot create {path}: {e}")))?;
                    let sink: Box<dyn EventSink> =
                        Box::new(JsonLinesSink::new(std::io::BufWriter::new(file)));
                    Observer::with_sink(sink)
                }
                None => Observer::null(),
            };
            if report_path.is_some() || metrics_out.is_some() {
                obs = obs.with_metrics();
            }
            if let Some(r) = &recorder {
                obs = obs.with_recorder(r.clone());
            }
            // Live telemetry: a one-job status board plus latency
            // histograms, served over HTTP while the search runs.
            // Observation-only — the progress hook writes slot atomics
            // and a histogram, so the synthesized circuit is
            // byte-identical with or without --metrics-addr.
            let telemetry = metrics_addr.as_ref().map(|_| {
                std::sync::Arc::new(rmrls_engine::BatchTelemetry::new(vec![name.clone()]))
            });
            let _server = match (&metrics_addr, &telemetry) {
                (Some(addr), Some(t)) => Some(bind_telemetry_server(addr, t)?),
                _ => None,
            };
            if progress || telemetry.is_some() {
                let tele = telemetry.clone();
                let mut last_beat = std::time::Instant::now();
                obs = obs.with_progress(Box::new(move |p: &Progress| {
                    if let Some(t) = &tele {
                        t.jobs.update_progress(
                            0,
                            p.nodes_expanded,
                            p.queue_depth as u64,
                            p.live_terms,
                            p.memory_sheds,
                        );
                        let now = std::time::Instant::now();
                        t.expansion_batch_seconds
                            .record(now.duration_since(last_beat).as_secs_f64());
                        last_beat = now;
                        t.sample(None);
                    }
                    if progress {
                        eprintln!(
                            "progress: {} nodes, queue {}, best {}, {} restarts, {:.1}s",
                            p.nodes_expanded,
                            p.queue_depth,
                            p.best_gates
                                .map(|g| g.to_string())
                                .unwrap_or_else(|| "-".into()),
                            p.restarts,
                            p.elapsed.as_secs_f64()
                        );
                    }
                }));
            }

            let write_report = |stats: &rmrls_core::SearchStats,
                                circuit: Option<&Circuit>,
                                obs: &Observer,
                                out: &mut dyn fmt::Write|
             -> Result<(), CliError> {
                let Some(path) = &report_path else {
                    return Ok(());
                };
                let metrics = obs.metrics_snapshot();
                let json = run_report(
                    &opts,
                    stats,
                    circuit,
                    metrics.as_ref(),
                    obs.dropped_events(),
                );
                rmrls_engine::write_atomic(path, &format!("{json}\n")).map_err(CliError)?;
                writeln!(out, "wrote {path}").map_err(|e| err(e.to_string()))?;
                Ok(())
            };

            // Trace, Chrome, and metrics files are written on failures
            // too — a run that died of a budget or anomaly is exactly
            // the one worth inspecting.
            let write_observability =
                |obs: &Observer, out: &mut dyn fmt::Write| -> Result<(), CliError> {
                    if let Some(r) = &recorder {
                        let snapshot = r.snapshot();
                        if snapshot.dropped > 0 {
                            writeln!(
                                out,
                                "note: {} trace records evicted (ring budget); the dump \
                             holds the most recent history",
                                snapshot.dropped
                            )
                            .map_err(|e| err(e.to_string()))?;
                        }
                        if let Some(path) = &trace {
                            rmrls_engine::write_atomic(path, &format!("{}\n", snapshot.to_json()))
                                .map_err(CliError)?;
                            writeln!(out, "wrote {path}").map_err(|e| err(e.to_string()))?;
                        }
                        if let Some(path) = &trace_out {
                            rmrls_engine::write_atomic(
                                path,
                                &format!("{}\n", chrome_trace_json(&snapshot)),
                            )
                            .map_err(CliError)?;
                            writeln!(out, "wrote {path}").map_err(|e| err(e.to_string()))?;
                        }
                    }
                    if let Some(path) = &metrics_out {
                        let snapshot = obs.metrics_snapshot().unwrap_or_default();
                        rmrls_engine::write_atomic(path, &prometheus_text(&snapshot))
                            .map_err(CliError)?;
                        writeln!(out, "wrote {path}").map_err(|e| err(e.to_string()))?;
                    }
                    Ok(())
                };

            if let Some(t) = &telemetry {
                t.jobs.mark_running(0);
                t.sample(None);
            }
            let job_started = std::time::Instant::now();
            let outcome = if bidirectional {
                if pprm.num_vars() > 16 {
                    return Err(err("--bidi needs an explicit truth table (<= 16 wires)"));
                }
                let perm = Permutation::from_vec(pprm.to_permutation())
                    .map_err(|e| err(format!("specification is not reversible: {e}")))?;
                synthesize_bidirectional(&perm, &opts)
            } else {
                synthesize_with_observer(&pprm, &opts, &mut obs)
            };
            if let Some(t) = &telemetry {
                t.job_seconds.record(job_started.elapsed().as_secs_f64());
                match &outcome {
                    Ok(_) => t.jobs.mark_done(0, Some(rmrls_engine::SolveTier::Rmrls)),
                    Err(_) => t.jobs.mark_failed(0),
                }
                t.sample(None);
            }
            let result = match outcome {
                Ok(r) => r,
                Err(e) => {
                    // Failed runs still get a report (stop reason and
                    // counters are exactly what post-mortems need).
                    write_report(&e.stats, None, &obs, out)?;
                    write_observability(&obs, out)?;
                    return Err(err(e.to_string()));
                }
            };
            let mut circuit = result.circuit;
            if do_simplify {
                let s = simplify_with_stats(&mut circuit);
                writeln!(
                    out,
                    "template simplification removed {} gates \
                     ({} cancellations, {} merges, {} passes)",
                    s.removed(),
                    s.cancellations,
                    s.merges,
                    s.passes
                )
                .map_err(|e| err(e.to_string()))?;
            }
            write_report(&result.stats, Some(&circuit), &obs, out)?;
            write_observability(&obs, out)?;
            report(&circuit, &name, out).map_err(|e| err(e.to_string()))?;
            writeln!(out, "search: {}", result.stats).map_err(|e| err(e.to_string()))?;
            if !result.stats.profile.is_empty() {
                let total = result.stats.profile.total_seconds().max(f64::EPSILON);
                let mut line = String::from("profile:");
                for p in &result.stats.profile.phases {
                    line.push_str(&format!(
                        " {} {:.1}ms ({:.0}%)",
                        p.name,
                        p.seconds * 1e3,
                        p.seconds / total * 100.0
                    ));
                }
                writeln!(out, "{line}").map_err(|e| err(e.to_string()))?;
            }
            if do_render {
                out.write_str(&render(&circuit))
                    .map_err(|e| err(e.to_string()))?;
            }
            if let Some(path) = tfc_out {
                std::fs::write(&path, tfc::write(&circuit))
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?;
                writeln!(out, "wrote {path}").map_err(|e| err(e.to_string()))?;
            }
            if let Some(path) = real_out {
                let doc = real::RealDocument::new(circuit.clone());
                std::fs::write(&path, real::write(&doc))
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?;
                writeln!(out, "wrote {path}").map_err(|e| err(e.to_string()))?;
            }
            Ok(())
        }
        Command::Batch {
            source,
            jobs,
            threads,
            deadline,
            cache_size,
            canon_limit,
            verify,
            fallback,
            results,
            resume,
            report: report_path,
            trace_dir,
            profile,
            strict,
            metrics_addr,
            store,
        } => {
            let admissions = match &source {
                BatchSource::Manifest(path) => {
                    rmrls_engine::load_manifest(path).map_err(CliError)?
                }
                BatchSource::Suite(name) => {
                    rmrls_engine::suite_admissions(name).ok_or_else(|| {
                        err(format!(
                            "unknown suite '{name}' (table4, examples, extended, all)"
                        ))
                    })?
                }
            };
            let workers = jobs.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
            if let Some(dir) = &trace_dir {
                std::fs::create_dir_all(dir)
                    .map_err(|e| err(format!("cannot create --trace dir {dir}: {e}")))?;
            }
            let mut options = rmrls_engine::BatchOptions {
                workers,
                deadline,
                cache_size,
                canon_limit,
                verify,
                fallback,
                trace_dir: trace_dir.clone(),
                ..rmrls_engine::BatchOptions::default()
            };
            if profile {
                options.synthesis = options.synthesis.with_profile(true);
            }
            if let Some(n) = threads {
                options.synthesis = options.synthesis.clone().with_threads(n);
            }
            // An unopenable store degrades to a store-less run: the
            // batch still produces correct results, it merely won't
            // remember them. The warning is the only difference.
            let store_handle = match &store {
                Some(path) => match rmrls_engine::SharedStore::open(path) {
                    Ok(s) => Some(s),
                    Err(e) => {
                        writeln!(
                            out,
                            "warning: --store {path}: {e}; continuing without a store"
                        )
                        .map_err(|e| err(e.to_string()))?;
                        None
                    }
                },
                None => None,
            };
            if let Some(s) = &store_handle {
                let st = s.stats();
                if st.quarantined_records > 0 || st.verify_rejected > 0 {
                    writeln!(
                        out,
                        "warning: store {}: {} corrupt records quarantined, {} rejected \
                         by re-verification (run 'rmrls store fsck' for details)",
                        store.as_deref().unwrap_or(""),
                        st.quarantined_records,
                        st.verify_rejected
                    )
                    .map_err(|e| err(e.to_string()))?;
                }
                options.store = Some(s.clone());
            }
            // workers × per-job search threads is the real concurrency;
            // oversubscribing cores costs throughput without changing
            // results (the parallel search is deterministic), so it is
            // a warning, not an error.
            let per_job_threads = options.synthesis.resolved_threads();
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            if workers * per_job_threads > cores {
                let suggested = (cores / workers).max(1);
                writeln!(
                    out,
                    "warning: {workers} workers x {per_job_threads} search threads \
                     oversubscribes {cores} available cores; try --threads {suggested}"
                )
                .map_err(|e| err(e.to_string()))?;
            }

            // Live telemetry: per-job status board, latency histograms,
            // and sampled gauges served over HTTP for the whole run.
            // Deliberately excluded from the options fingerprint — a
            // scraped run resumes a plain journal and vice versa.
            let telemetry = metrics_addr.as_ref().map(|_| {
                std::sync::Arc::new(rmrls_engine::BatchTelemetry::new(
                    admissions.iter().map(|a| a.name().to_string()).collect(),
                ))
            });
            let _server = match (&metrics_addr, &telemetry) {
                (Some(addr), Some(t)) => Some(bind_telemetry_server(addr, t)?),
                _ => None,
            };
            if let Some(t) = &telemetry {
                options.telemetry = Some(std::sync::Arc::clone(t));
            }
            let header = rmrls_engine::JournalHeader::new(&admissions, &options);

            // --resume: recover completed jobs, refusing a journal that
            // was written for a different job list or configuration.
            let resumed = match &resume {
                Some(path) => {
                    let data = rmrls_engine::read_journal(path).map_err(CliError)?;
                    if data.header.manifest_hash != header.manifest_hash {
                        return Err(err(format!(
                            "--resume {path}: journal was written for a different job list \
                             (manifest hash {:016x}, expected {:016x})",
                            data.header.manifest_hash, header.manifest_hash
                        )));
                    }
                    if data.header.options_fingerprint != header.options_fingerprint {
                        return Err(err(format!(
                            "--resume {path}: journal was written under different options \
                             (fingerprint {:016x}, expected {:016x})",
                            data.header.options_fingerprint, header.options_fingerprint
                        )));
                    }
                    if data.torn_tail {
                        writeln!(
                            out,
                            "note: {path} ends in a torn record (crash mid-append); \
                             that job will re-run"
                        )
                        .map_err(|e| err(e.to_string()))?;
                    }
                    writeln!(
                        out,
                        "resuming: {} of {} jobs already complete",
                        data.completed.len(),
                        admissions.len()
                    )
                    .map_err(|e| err(e.to_string()))?;
                    Some(data.completed)
                }
                None => None,
            };

            // The journal target: --results when given, else continue
            // journaling into the --resume file itself. Recovered
            // records are re-seeded first, so the journal is complete
            // from the moment the resumed run starts.
            let journal_path = results.clone().or_else(|| resume.clone());
            let journal = match &journal_path {
                Some(path) => {
                    let mut w =
                        rmrls_engine::JournalWriter::create(path, &header).map_err(CliError)?;
                    if let Some(done) = &resumed {
                        let mut indices: Vec<usize> = done.keys().copied().collect();
                        indices.sort_unstable();
                        for i in indices {
                            w.append(&done[&i].json.to_string()).map_err(CliError)?;
                        }
                    }
                    Some(std::sync::Mutex::new(w))
                }
                None => None,
            };

            // Ctrl-C once drains (running jobs finish, the rest are
            // skipped and the partial report is still written); twice
            // aborts in-flight searches.
            let shutdown = rmrls_engine::ShutdownHandles::install_sigint();
            let run = rmrls_engine::run_batch_resumable(
                &admissions,
                &options,
                &shutdown,
                journal.as_ref(),
                resumed.as_ref(),
            );
            drop(journal);

            let c = &run.counters;
            writeln!(
                out,
                "batch: {} jobs on {} workers in {:.2}s ({:.1} specs/sec)",
                c.jobs_total,
                run.workers,
                run.elapsed.as_secs_f64(),
                run.specs_per_second()
            )
            .map_err(|e| err(e.to_string()))?;
            writeln!(
                out,
                "  solved: {}   unsolved: {}   errors: {}   \
                 panics_contained: {}   skipped: {}",
                c.jobs_completed,
                c.jobs_unsolved,
                c.jobs_errored,
                c.panics_contained,
                c.jobs_skipped
            )
            .map_err(|e| err(e.to_string()))?;
            if let Some(rate) = c.cache_hit_rate() {
                writeln!(
                    out,
                    "  cache: {} hits / {} misses ({:.0}% hit rate)",
                    c.cache_hits,
                    c.cache_misses,
                    rate * 100.0
                )
                .map_err(|e| err(e.to_string()))?;
            }
            if let Some(s) = &store_handle {
                let st = s.stats();
                writeln!(
                    out,
                    "  store: {} hits, {} inserts, {} append errors; \
                     {} entries on disk ({} bytes)",
                    c.store_hits, c.store_inserts, c.store_append_errors, st.entries, st.file_bytes
                )
                .map_err(|e| err(e.to_string()))?;
            }
            if verify {
                writeln!(
                    out,
                    "  verified: {} ok, {} failed",
                    c.verified_ok, c.verify_failures
                )
                .map_err(|e| err(e.to_string()))?;
            }
            if options.fallback {
                writeln!(
                    out,
                    "  solved_by: {} rmrls, {} relaxed, {} mmd",
                    c.solved_by_rmrls, c.solved_by_relaxed, c.solved_by_mmd
                )
                .map_err(|e| err(e.to_string()))?;
            }
            if c.jobs_resumed > 0 {
                writeln!(out, "  resumed from journal: {}", c.jobs_resumed)
                    .map_err(|e| err(e.to_string()))?;
            }
            if let Some(dir) = &trace_dir {
                // Truncation and write failures are reported, never
                // silent: a missing or shortened dump is itself a fact
                // the operator needs.
                writeln!(
                    out,
                    "  traces: {dir} ({} anomaly dumps, {} records evicted, {} write errors)",
                    c.anomaly_dumps, c.trace_records_dropped, c.trace_write_errors
                )
                .map_err(|e| err(e.to_string()))?;
            }
            if !run.profile.is_empty() {
                let total = run.profile.total_seconds().max(f64::EPSILON);
                let mut line = String::from("  profile:");
                for p in &run.profile.phases {
                    line.push_str(&format!(
                        " {} {:.1}ms ({:.0}%)",
                        p.name,
                        p.seconds * 1e3,
                        p.seconds / total * 100.0
                    ));
                }
                writeln!(out, "{line}").map_err(|e| err(e.to_string()))?;
            }
            if let Some(path) = &journal_path {
                // Rewrite the journal in admission order (journal order
                // was completion order) — atomically, so a crash here
                // still leaves a complete, resumable file.
                let mut text = header.to_json().to_string();
                text.push('\n');
                for (i, record) in run.records.iter().enumerate() {
                    text.push_str(&record.to_json_indexed(i).to_string());
                    text.push('\n');
                }
                rmrls_engine::write_atomic(path, &text).map_err(CliError)?;
                writeln!(out, "wrote {path}").map_err(|e| err(e.to_string()))?;
            }
            if let Some(path) = &report_path {
                rmrls_engine::write_atomic(path, &format!("{}\n", run.report_json(&options)))
                    .map_err(CliError)?;
                writeln!(out, "wrote {path}").map_err(|e| err(e.to_string()))?;
            }
            if strict
                && (c.panics_contained > 0
                    || c.verify_failures > 0
                    || c.jobs_errored > 0
                    || c.journal_append_errors > 0)
            {
                return Err(err(format!(
                    "strict batch failed: {} errors, {} panics, {} verification failures, \
                     {} journal append failures",
                    c.jobs_errored, c.panics_contained, c.verify_failures, c.journal_append_errors
                )));
            }
            Ok(())
        }
        Command::Serve {
            addr,
            jobs,
            threads,
            queue,
            deadline,
            cache_size,
            canon_limit,
            verify,
            fallback,
            max_body_bytes,
            journal,
            store,
        } => {
            let workers = jobs.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
            let mut batch = rmrls_engine::BatchOptions {
                workers,
                cache_size,
                canon_limit,
                verify,
                fallback,
                ..rmrls_engine::BatchOptions::default()
            };
            if let Some(n) = threads {
                batch.synthesis = batch.synthesis.clone().with_threads(n);
            }
            // The warm cache persists across restarts: circuits solved
            // by earlier incarnations are re-verified on open and served
            // as cache hits. An unopenable store degrades to warning.
            if let Some(path) = &store {
                match rmrls_engine::SharedStore::open(path) {
                    Ok(s) => {
                        batch.store = Some(s);
                        batch.store_provenance = "serve".to_string();
                    }
                    Err(e) => {
                        eprintln!("warning: --store {path}: {e}; continuing without a store");
                    }
                }
            }
            let opts = rmrls_serve::ServeOptions {
                addr,
                workers,
                queue_capacity: queue,
                default_deadline: deadline,
                max_body_bytes,
                journal_path: journal,
                batch,
            };
            // Ctrl-C once drains (running requests finish, queued work
            // is skipped — and replayed on restart when journaled);
            // twice aborts in-flight searches.
            let shutdown = rmrls_engine::ShutdownHandles::install_sigint();
            let daemon = rmrls_serve::ServeDaemon::start(opts, shutdown).map_err(err)?;
            // Stdout is buffered until exit, so the address a client
            // needs now is announced on stderr (matching
            // --metrics-addr), including when port 0 picked a port.
            eprintln!(
                "serve: listening on http://{} — POST /synthesize, \
                 GET /requests/<id>[/events], /metrics, /healthz, /jobs",
                daemon.local_addr()
            );
            // Registry handles are shared by name, so this counter
            // stays readable after `wait` consumes the daemon.
            let completed = daemon.telemetry().registry().counter("requests_completed");
            daemon.wait();
            writeln!(
                out,
                "serve: shut down ({} requests completed)",
                completed.get()
            )
            .map_err(|e| err(e.to_string()))?;
            Ok(())
        }
        Command::Store { action, store } => {
            match action {
                StoreAction::Stats => {
                    // Opening performs the full recovery pass (torn-tail
                    // truncation, quarantine, re-verification), so the
                    // stats describe the store as the engine would see it.
                    let s = rmrls_engine::CircuitStore::open(&store)
                        .map_err(|e| err(format!("{store}: {e}")))?;
                    writeln!(out, "{}", s.stats().to_json()).map_err(|e| err(e.to_string()))?;
                }
                StoreAction::Fsck => {
                    // Read-only: reports damage without modifying the
                    // file (open/compact are the repair paths).
                    let report =
                        rmrls_engine::fsck(&store).map_err(|e| err(format!("{store}: {e}")))?;
                    writeln!(out, "{}", report.to_json()).map_err(|e| err(e.to_string()))?;
                    if !report.clean() {
                        return Err(err(format!(
                            "{store}: damage found ({} quarantined records, {} \
                             verify-rejected, {} torn tail bytes)",
                            report.quarantined.len(),
                            report.verify_rejected,
                            report.torn_tail_bytes
                        )));
                    }
                }
                StoreAction::Compact => {
                    let mut s = rmrls_engine::CircuitStore::open(&store)
                        .map_err(|e| err(format!("{store}: {e}")))?;
                    let stats = s.compact().map_err(|e| err(format!("{store}: {e}")))?;
                    writeln!(
                        out,
                        "compacted {}: {} records kept, {} -> {} bytes",
                        store, stats.records_kept, stats.bytes_before, stats.bytes_after
                    )
                    .map_err(|e| err(e.to_string()))?;
                }
            }
            Ok(())
        }
        Command::Trace { dump, chrome_out } => {
            let text = std::fs::read_to_string(&dump)
                .map_err(|e| err(format!("cannot read {dump}: {e}")))?;
            let json = rmrls_obs::Json::parse(&text)
                .map_err(|e| err(format!("cannot parse {dump}: {e}")))?;
            let snapshot =
                RecorderSnapshot::from_json(&json).map_err(|e| err(format!("{dump}: {e}")))?;
            writeln!(out, "trace: {dump}").map_err(|e| err(e.to_string()))?;
            if let Some(job) = json.get("job").and_then(rmrls_obs::Json::as_str) {
                writeln!(out, "job: {job}").map_err(|e| err(e.to_string()))?;
            }
            if let Some(trigger) = json.get("trigger").and_then(rmrls_obs::Json::as_str) {
                writeln!(out, "trigger: {trigger}").map_err(|e| err(e.to_string()))?;
            }
            let span_micros = snapshot.records.last().map(|r| r.ts_micros).unwrap_or(0);
            writeln!(
                out,
                "records: {} ({} evicted)   anomalies: {}   span: {:.3} ms",
                snapshot.records.len(),
                snapshot.dropped,
                snapshot.anomalies,
                span_micros as f64 / 1e3
            )
            .map_err(|e| err(e.to_string()))?;

            let phases = phase_spans(&snapshot.records);
            if !phases.is_empty() {
                writeln!(out, "top phases:").map_err(|e| err(e.to_string()))?;
                for (name, calls, micros) in &phases {
                    writeln!(
                        out,
                        "  {name:<14} {:>10.3} ms  x{calls}",
                        *micros as f64 / 1e3
                    )
                    .map_err(|e| err(e.to_string()))?;
                }
            }

            // Record-kind census in first-seen order.
            let mut kinds: Vec<(&'static str, u64)> = Vec::new();
            for r in &snapshot.records {
                let tag = r.kind.tag();
                match kinds.iter_mut().find(|(t, _)| *t == tag) {
                    Some(k) => k.1 += 1,
                    None => kinds.push((tag, 1)),
                }
            }
            if !kinds.is_empty() {
                let census: Vec<String> = kinds.iter().map(|(t, n)| format!("{t} x{n}")).collect();
                writeln!(out, "record kinds: {}", census.join("  "))
                    .map_err(|e| err(e.to_string()))?;
            }

            // Anomaly tally: kind @ site occurrence counts in
            // first-seen order — the one-glance answer to "what went
            // wrong, and how often" for an .anomaly.json dump.
            let mut tally: Vec<(String, u64)> = Vec::new();
            for r in &snapshot.records {
                let TraceKind::Anomaly { kind, site } = &r.kind else {
                    continue;
                };
                let key = format!("{kind} @ {site}");
                match tally.iter_mut().find(|(k, _)| *k == key) {
                    Some(t) => t.1 += 1,
                    None => tally.push((key, 1)),
                }
            }
            if !tally.is_empty() {
                writeln!(out, "anomaly tally:").map_err(|e| err(e.to_string()))?;
                for (key, n) in &tally {
                    writeln!(out, "  {key} x{n}").map_err(|e| err(e.to_string()))?;
                }
            }

            // Each anomaly with the records leading up to it — the
            // trailing context that names the failing site.
            for (i, r) in snapshot.records.iter().enumerate() {
                let TraceKind::Anomaly { kind, site } = &r.kind else {
                    continue;
                };
                writeln!(
                    out,
                    "anomaly at {:.3} ms: {kind} @ {site}",
                    r.ts_micros as f64 / 1e3
                )
                .map_err(|e| err(e.to_string()))?;
                for prev in &snapshot.records[i.saturating_sub(3)..i] {
                    writeln!(
                        out,
                        "  before: [{:.3} ms] {}",
                        prev.ts_micros as f64 / 1e3,
                        prev.kind.tag()
                    )
                    .map_err(|e| err(e.to_string()))?;
                }
            }

            if let Some(path) = &chrome_out {
                rmrls_engine::write_atomic(path, &format!("{}\n", chrome_trace_json(&snapshot)))
                    .map_err(CliError)?;
                writeln!(out, "wrote {path}").map_err(|e| err(e.to_string()))?;
            }
            Ok(())
        }
        Command::Mmd {
            source,
            unidirectional,
        } => {
            let (pprm, name) = source.resolve()?;
            if pprm.num_vars() > 16 {
                return Err(err("mmd needs an explicit truth table (≤ 16 wires)"));
            }
            let perm = Permutation::from_vec(pprm.to_permutation())
                .map_err(|e| err(format!("specification is not reversible: {e}")))?;
            let variant = if unidirectional {
                MmdVariant::Unidirectional
            } else {
                MmdVariant::Bidirectional
            };
            let circuit = mmd_synthesize(&perm, variant);
            report(&circuit, &name, out).map_err(|e| err(e.to_string()))
        }
        Command::Embed {
            table_path,
            outputs,
            time_limit,
        } => {
            let text = std::fs::read_to_string(&table_path)
                .map_err(|e| err(format!("cannot read {table_path}: {e}")))?;
            let rows: Vec<u64> = text
                .split_whitespace()
                .map(|w| {
                    w.parse()
                        .map_err(|e| err(format!("bad output word '{w}': {e}")))
                })
                .collect::<Result<_, _>>()?;
            if rows.is_empty() || !rows.len().is_power_of_two() {
                return Err(err(format!(
                    "table has {} rows; need a power of two",
                    rows.len()
                )));
            }
            let inputs = rows.len().trailing_zeros() as usize;
            let table = rmrls_spec::TruthTable::from_rows(inputs, outputs, rows);
            let mut opts = SynthesisOptions::new();
            if let Some(t) = time_limit {
                opts = opts.with_time_limit(t);
            }
            let best = synthesize_embedded(&table, &opts).map_err(|e| err(e.to_string()))?;
            writeln!(
                out,
                "embedding ({:?}): {} wires = {} real + {} constant inputs; {} garbage outputs",
                best.strategy,
                best.embedding.width(),
                best.embedding.real_inputs,
                best.embedding.garbage_inputs,
                best.embedding.garbage_outputs
            )
            .map_err(|e| err(e.to_string()))?;
            report(&best.synthesis.circuit, &table_path, out).map_err(|e| err(e.to_string()))
        }
        Command::Info { tfc_path } => {
            let circuit = load_tfc(&tfc_path)?;
            report(&circuit, &tfc_path, out).map_err(|e| err(e.to_string()))?;
            out.write_str(&render(&circuit))
                .map_err(|e| err(e.to_string()))?;
            Ok(())
        }
        Command::Analyze { tfc_path } => {
            let circuit = load_tfc(&tfc_path)?;
            let stats = analyze(&circuit);
            writeln!(out, "{tfc_path}: {stats}").map_err(|e| err(e.to_string()))?;
            for (size, count) in stats.gate_size_histogram.iter().enumerate() {
                if *count > 0 {
                    writeln!(out, "  size-{size} gates: {count}")
                        .map_err(|e| err(e.to_string()))?;
                }
            }
            writeln!(out, "  idle wires: {}", stats.idle_wires())
                .map_err(|e| err(e.to_string()))?;
            Ok(())
        }
        Command::Simplify { tfc_path, tfc_out } => {
            let mut circuit = load_tfc(&tfc_path)?;
            let before = circuit.gate_count();
            let removed = simplify(&mut circuit);
            writeln!(
                out,
                "{before} gates -> {} (removed {removed})",
                circuit.gate_count()
            )
            .map_err(|e| err(e.to_string()))?;
            match tfc_out {
                Some(path) => {
                    std::fs::write(&path, tfc::write(&circuit))
                        .map_err(|e| err(format!("cannot write {path}: {e}")))?;
                    writeln!(out, "wrote {path}").map_err(|e| err(e.to_string()))?;
                }
                None => out
                    .write_str(&tfc::write(&circuit))
                    .map_err(|e| err(e.to_string()))?,
            }
            Ok(())
        }
    }
}

/// Binds the live-telemetry HTTP server over a shared telemetry board
/// and announces the bound address on stderr. Stdout carries the
/// command's result; stderr is where a scraper discovers the actual
/// port when `--metrics-addr host:0` asked for an ephemeral one.
fn bind_telemetry_server(
    addr: &str,
    telemetry: &std::sync::Arc<rmrls_engine::BatchTelemetry>,
) -> Result<rmrls_telemetry::TelemetryServer, CliError> {
    let (m, h, j) = (
        std::sync::Arc::clone(telemetry),
        std::sync::Arc::clone(telemetry),
        std::sync::Arc::clone(telemetry),
    );
    let server = rmrls_telemetry::TelemetryServer::bind(
        addr,
        rmrls_telemetry::Providers {
            metrics: Box::new(move || m.metrics_text()),
            healthz: Box::new(move || h.healthz_json()),
            jobs: Box::new(move || j.jobs_json()),
        },
    )
    .map_err(|e| err(format!("cannot bind --metrics-addr {addr}: {e}")))?;
    eprintln!("telemetry: serving http://{}/metrics", server.local_addr());
    Ok(server)
}

/// Folds phase-enter/exit record pairs into per-phase totals
/// `(name, spans, total_micros)`, sorted by total descending. Unmatched
/// enters (a dump cut short by eviction or a panic) are ignored rather
/// than failing the summary.
fn phase_spans(records: &[TraceRecord]) -> Vec<(String, u64, u64)> {
    let mut stack: Vec<(&str, u64)> = Vec::new();
    let mut totals: Vec<(String, u64, u64)> = Vec::new();
    for r in records {
        match &r.kind {
            TraceKind::PhaseEnter { phase } => stack.push((phase, r.ts_micros)),
            TraceKind::PhaseExit { phase } => {
                let Some(pos) = stack.iter().rposition(|(p, _)| p == phase) else {
                    continue;
                };
                let (_, started) = stack.remove(pos);
                let micros = r.ts_micros.saturating_sub(started);
                match totals.iter_mut().find(|(n, _, _)| n == phase) {
                    Some(t) => {
                        t.1 += 1;
                        t.2 += micros;
                    }
                    None => totals.push((phase.clone(), 1, micros)),
                }
            }
            _ => {}
        }
    }
    totals.sort_by_key(|t| std::cmp::Reverse(t.2));
    totals
}

fn load_tfc(path: &str) -> Result<Circuit, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    tfc::parse(&text).map_err(|e| err(format!("cannot parse {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, CliError> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn synth_with_inline_spec() {
        let c = parse(&["synth", "--spec", "1,0", "--max-gates", "5"]).unwrap();
        match c {
            Command::Synth {
                source, max_gates, ..
            } => {
                assert_eq!(source, SpecSource::Inline("1,0".into()));
                assert_eq!(max_gates, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pruning_values_parse() {
        for (text, expect) in [
            ("greedy", Pruning::Greedy),
            ("exhaustive", Pruning::Exhaustive),
            ("top4", Pruning::TopK(4)),
        ] {
            match parse(&["synth", "--spec", "0,1", "--pruning", text]).unwrap() {
                Command::Synth { pruning, .. } => assert_eq!(pruning, expect),
                other => panic!("{other:?}"),
            }
        }
        assert!(parse(&["synth", "--spec", "0,1", "--pruning", "bogus"]).is_err());
    }

    #[test]
    fn conflicting_sources_rejected() {
        assert!(parse(&["synth", "--spec", "0,1", "--benchmark", "rd32"]).is_err());
        assert!(parse(&["synth"]).is_err());
    }

    #[test]
    fn threads_flag_parses_and_is_scoped() {
        match parse(&["synth", "--spec", "0,1", "--threads", "4"]).unwrap() {
            Command::Synth { threads, .. } => assert_eq!(threads, Some(4)),
            other => panic!("{other:?}"),
        }
        match parse(&["synth", "--spec", "0,1"]).unwrap() {
            Command::Synth { threads, .. } => assert_eq!(threads, None),
            other => panic!("{other:?}"),
        }
        assert!(parse(&["synth", "--spec", "0,1", "--threads", "0"]).is_err());
        assert!(parse(&["mmd", "--spec", "0,1", "--threads", "2"]).is_err());
        assert!(parse(&["trace", "--dump", "d.json", "--threads", "2"]).is_err());
    }

    #[test]
    fn serve_defaults_and_flags_parse() {
        match parse(&["serve"]).unwrap() {
            Command::Serve {
                addr,
                jobs,
                queue,
                deadline,
                cache_size,
                canon_limit,
                verify,
                fallback,
                max_body_bytes,
                journal,
                ..
            } => {
                assert_eq!(addr, "127.0.0.1:0");
                assert_eq!(jobs, None);
                assert_eq!(queue, 16);
                assert_eq!(deadline, None);
                assert_eq!(cache_size, Some(1024));
                assert_eq!(canon_limit, 8);
                assert!(verify);
                assert!(!fallback);
                assert_eq!(max_body_bytes, 256 * 1024);
                assert_eq!(journal, None);
            }
            other => panic!("{other:?}"),
        }
        match parse(&[
            "serve",
            "--addr",
            "0.0.0.0:8791",
            "--jobs",
            "4",
            "--queue",
            "2",
            "--deadline-ms",
            "500",
            "--no-cache",
            "--fallback",
            "--max-body-bytes",
            "1024",
            "--journal",
            "reqs.jsonl",
        ])
        .unwrap()
        {
            Command::Serve {
                addr,
                jobs,
                queue,
                deadline,
                cache_size,
                fallback,
                max_body_bytes,
                journal,
                ..
            } => {
                assert_eq!(addr, "0.0.0.0:8791");
                assert_eq!(jobs, Some(4));
                assert_eq!(queue, 2);
                assert_eq!(deadline, Some(Duration::from_millis(500)));
                assert_eq!(cache_size, None);
                assert!(fallback);
                assert_eq!(max_body_bytes, 1024);
                assert_eq!(journal.as_deref(), Some("reqs.jsonl"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_flags_are_scoped_and_checked() {
        assert!(parse(&["serve", "--queue", "0"]).is_err());
        assert!(parse(&["serve", "--no-cache", "--cache-size", "8"]).is_err());
        assert!(parse(&["batch", "--suite", "table4", "--addr", "x:1"]).is_err());
        assert!(parse(&["synth", "--spec", "0,1", "--journal", "j.jsonl"]).is_err());
        assert!(parse(&["serve", "--threads", "2"]).is_ok());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["synth", "--spec", "0,1", "--frobnicate"]).is_err());
    }

    #[test]
    fn store_flag_and_subcommands_parse_and_are_scoped() {
        match parse(&["batch", "--suite", "examples", "--store", "c.store"]).unwrap() {
            Command::Batch { store, .. } => assert_eq!(store.as_deref(), Some("c.store")),
            other => panic!("{other:?}"),
        }
        match parse(&["serve", "--store", "c.store"]).unwrap() {
            Command::Serve { store, .. } => assert_eq!(store.as_deref(), Some("c.store")),
            other => panic!("{other:?}"),
        }
        for (sub, action) in [
            ("stats", StoreAction::Stats),
            ("fsck", StoreAction::Fsck),
            ("compact", StoreAction::Compact),
        ] {
            match parse(&["store", sub, "--store", "c.store"]).unwrap() {
                Command::Store { action: a, store } => {
                    assert_eq!(a, action);
                    assert_eq!(store, "c.store");
                }
                other => panic!("{other:?}"),
            }
        }
        // The action and the file are both mandatory; the flag is
        // meaningless outside batch/serve/store.
        assert!(parse(&["store"]).is_err());
        assert!(parse(&["store", "defrag", "--store", "c.store"]).is_err());
        assert!(parse(&["store", "stats"]).is_err());
        assert!(parse(&["synth", "--spec", "0,1", "--store", "c.store"]).is_err());
        assert!(parse(&["trace", "--dump", "d.json", "--store", "c.store"]).is_err());
    }

    #[test]
    fn run_synth_inline() {
        let cmd = parse(&["synth", "--spec", "1,0,7,2,3,4,5,6", "--render"]).unwrap();
        let mut out = String::new();
        run(cmd, &mut out).expect("synthesis should succeed");
        assert!(out.contains("gates: 3"), "{out}");
        assert!(out.contains('⊕'), "{out}");
    }

    #[test]
    fn run_synth_benchmark() {
        let cmd = parse(&["synth", "--benchmark", "ex1"]).unwrap();
        let mut out = String::new();
        run(cmd, &mut out).expect("ex1 should synthesize");
        assert!(out.contains("gates:"), "{out}");
    }

    #[test]
    fn run_synth_output_identical_across_threads() {
        let mut serial = String::new();
        run(
            parse(&["synth", "--benchmark", "ex2", "--threads", "1"]).unwrap(),
            &mut serial,
        )
        .expect("serial synth");
        let mut parallel = String::new();
        run(
            parse(&["synth", "--benchmark", "ex2", "--threads", "4"]).unwrap(),
            &mut parallel,
        )
        .expect("parallel synth");
        // The "search:" stats line embeds the wall-clock time, which
        // differs between any two runs; everything else (the circuit,
        // its rendering, the counts) must be byte-identical.
        let deterministic = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("search:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            deterministic(&serial),
            deterministic(&parallel),
            "output must not depend on --threads"
        );
    }

    #[test]
    fn run_batch_warns_on_thread_oversubscription() {
        // workers x threads guaranteed to exceed this machine's cores.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let threads = (cores * 2).to_string();
        let cmd = parse(&[
            "batch",
            "--suite",
            "examples",
            "--jobs",
            "2",
            "--threads",
            &threads,
        ])
        .unwrap();
        let mut out = String::new();
        run(cmd, &mut out).expect("batch runs despite oversubscription");
        assert!(
            out.contains("warning") && out.contains("oversubscribes"),
            "{out}"
        );
        // The warning suggests a per-job thread count that fits.
        let suggested = (cores / 2).max(1);
        assert!(out.contains(&format!("try --threads {suggested}")), "{out}");
    }

    #[test]
    fn metrics_addr_flag_parses_and_is_scoped() {
        match parse(&["synth", "--spec", "0,1", "--metrics-addr", "127.0.0.1:0"]).unwrap() {
            Command::Synth { metrics_addr, .. } => {
                assert_eq!(metrics_addr.as_deref(), Some("127.0.0.1:0"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&[
            "batch",
            "--suite",
            "examples",
            "--metrics-addr",
            "0.0.0.0:9100",
        ])
        .unwrap()
        {
            Command::Batch { metrics_addr, .. } => {
                assert_eq!(metrics_addr.as_deref(), Some("0.0.0.0:9100"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["synth", "--spec", "0,1", "--metrics-addr"]).is_err());
        assert!(parse(&["mmd", "--spec", "0,1", "--metrics-addr", "x:0"]).is_err());
        assert!(parse(&["trace", "--dump", "d.json", "--metrics-addr", "x:0"]).is_err());
    }

    #[test]
    fn metrics_addr_bind_failure_is_an_error_not_a_panic() {
        let cmd = parse(&["synth", "--spec", "1,0", "--metrics-addr", "not-an-address"]).unwrap();
        let e = run(cmd, &mut String::new()).unwrap_err();
        assert!(e.0.contains("--metrics-addr"), "{}", e.0);
    }

    #[test]
    fn synth_with_metrics_addr_leaves_output_identical() {
        let mut plain = String::new();
        run(parse(&["synth", "--benchmark", "ex1"]).unwrap(), &mut plain).unwrap();
        let mut live = String::new();
        run(
            parse(&[
                "synth",
                "--benchmark",
                "ex1",
                "--metrics-addr",
                "127.0.0.1:0",
            ])
            .unwrap(),
            &mut live,
        )
        .unwrap();
        // The "search:" line embeds wall-clock time; everything else
        // must be byte-identical — telemetry observes, never steers.
        let deterministic = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("search:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(deterministic(&plain), deterministic(&live));
    }

    #[test]
    fn batch_with_metrics_addr_serves_and_journal_is_identical() {
        let dir = std::env::temp_dir().join("rmrls-cli-metrics-addr-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let plain = dir.join("plain.jsonl");
        let live = dir.join("live.jsonl");
        let batch = |results: &std::path::Path, extra: &[&str]| {
            let mut v = vec![
                "batch",
                "--suite",
                "examples",
                "--jobs",
                "2",
                "--results",
                results.to_str().unwrap(),
            ];
            v.extend_from_slice(extra);
            run(parse(&v).unwrap(), &mut String::new()).unwrap();
        };
        batch(&plain, &[]);
        batch(&live, &["--metrics-addr", "127.0.0.1:0"]);
        // Byte-identical journals modulo per-job wall-clock seconds.
        let strip = |path: &std::path::Path| {
            std::fs::read_to_string(path)
                .unwrap()
                .lines()
                .map(|l| match rmrls_obs::Json::parse(l).unwrap() {
                    rmrls_obs::Json::Obj(fields) => rmrls_obs::Json::Obj(
                        fields.into_iter().filter(|(k, _)| k != "seconds").collect(),
                    )
                    .to_string(),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&plain), strip(&live));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_mmd() {
        let cmd = parse(&["mmd", "--spec", "7,0,1,2,3,4,5,6"]).unwrap();
        let mut out = String::new();
        run(cmd, &mut out).expect("mmd always succeeds");
        assert!(out.contains("quantum cost"), "{out}");
    }

    #[test]
    fn run_benchmarks_lists_suite() {
        let mut out = String::new();
        run(Command::Benchmarks, &mut out).unwrap();
        assert!(out.contains("rd53") && out.contains("ex1"), "{out}");
    }

    #[test]
    fn run_unknown_benchmark_fails() {
        let cmd = parse(&["synth", "--benchmark", "nope"]).unwrap();
        let mut out = String::new();
        assert!(run(cmd, &mut out).is_err());
    }

    #[test]
    fn analyze_and_simplify_commands() {
        let dir = std::env::temp_dir().join("rmrls-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("in.tfc");
        // A circuit with a cancellable pair.
        std::fs::write(&path, ".v a,b\nBEGIN\nt2 a,b\nt2 a,b\nt1 a\nEND\n").unwrap();

        let cmd = parse(&["analyze", "--tfc", path.to_str().unwrap()]).unwrap();
        let mut out = String::new();
        run(cmd, &mut out).unwrap();
        assert!(out.contains("3 gates"), "{out}");

        let cmd = parse(&["simplify", "--tfc", path.to_str().unwrap()]).unwrap();
        let mut out = String::new();
        run(cmd, &mut out).unwrap();
        assert!(out.contains("3 gates -> 1"), "{out}");
    }

    #[test]
    fn synth_flags_parse() {
        match parse(&["synth", "--spec", "0,1", "--bidi", "--fredkin", "full"]).unwrap() {
            Command::Synth {
                bidirectional,
                fredkin,
                ..
            } => {
                assert!(bidirectional);
                assert_eq!(fredkin, FredkinMode::Full);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["synth", "--spec", "0,1", "--fredkin", "bogus"]).is_err());
    }

    #[test]
    fn real_out_writes_parseable_document() {
        let dir = std::env::temp_dir().join("rmrls-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.real");
        let cmd = parse(&[
            "synth",
            "--spec",
            "1,0,7,2,3,4,5,6",
            "--real-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let mut out = String::new();
        run(cmd, &mut out).unwrap();
        let doc = rmrls_circuit::real::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.circuit.to_permutation(), vec![1, 0, 7, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn embed_command_synthesizes_irreversible_table() {
        let dir = std::env::temp_dir().join("rmrls-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("and.tt");
        // AND of two inputs: rows 0 0 0 1.
        std::fs::write(&path, "0 0 0 1\n").unwrap();
        let cmd = parse(&["embed", "--table", path.to_str().unwrap(), "--outputs", "1"]).unwrap();
        let mut out = String::new();
        run(cmd, &mut out).unwrap();
        assert!(out.contains("embedding"), "{out}");
        assert!(out.contains("gates:"), "{out}");
    }

    #[test]
    fn embed_rejects_non_power_of_two() {
        let dir = std::env::temp_dir().join("rmrls-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tt");
        std::fs::write(&path, "0 1 0\n").unwrap();
        let cmd = parse(&["embed", "--table", path.to_str().unwrap(), "--outputs", "1"]).unwrap();
        let mut out = String::new();
        assert!(run(cmd, &mut out).is_err());
    }

    #[test]
    fn spec_file_source_parses_and_runs() {
        let dir = std::env::temp_dir().join("rmrls-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.perm");
        std::fs::write(&path, "# Fig. 1\n{1, 0, 7, 2, 3, 4, 5, 6}\n").unwrap();
        let cmd = parse(&["synth", "--spec-file", path.to_str().unwrap()]).unwrap();
        let mut out = String::new();
        run(cmd, &mut out).unwrap();
        assert!(out.contains("gates: 3"), "{out}");
    }

    #[test]
    fn observability_flags_parse() {
        match parse(&[
            "synth",
            "--spec",
            "0,1",
            "--report",
            "run.json",
            "--progress",
            "--log-json",
            "events.jsonl",
        ])
        .unwrap()
        {
            Command::Synth {
                report,
                progress,
                log_json,
                ..
            } => {
                assert_eq!(report.as_deref(), Some("run.json"));
                assert!(progress);
                assert_eq!(log_json.as_deref(), Some("events.jsonl"));
            }
            other => panic!("{other:?}"),
        }
        // Value-taking flags demand values.
        assert!(parse(&["synth", "--spec", "0,1", "--report"]).is_err());
        assert!(parse(&["synth", "--spec", "0,1", "--log-json"]).is_err());
    }

    #[test]
    fn observability_flags_rejected_outside_synth() {
        assert!(parse(&["mmd", "--spec", "0,1", "--report", "r.json"]).is_err());
        assert!(parse(&["info", "--tfc", "x.tfc", "--progress"]).is_err());
        assert!(parse(&["benchmarks", "--log-json", "-"]).is_err());
    }

    #[test]
    fn observability_flag_conflicts() {
        // --progress and '--log-json -' would interleave on stderr.
        assert!(parse(&["synth", "--spec", "0,1", "--progress", "--log-json", "-"]).is_err());
        // A file-backed event log composes with --progress.
        assert!(parse(&[
            "synth",
            "--spec",
            "0,1",
            "--progress",
            "--log-json",
            "e.jsonl"
        ])
        .is_ok());
        // --bidi runs two uninstrumented searches.
        assert!(parse(&["synth", "--spec", "0,1", "--bidi", "--progress"]).is_err());
        assert!(parse(&["synth", "--spec", "0,1", "--bidi", "--log-json", "e.jsonl"]).is_err());
        // ... but --report only needs the returned stats.
        assert!(parse(&["synth", "--spec", "0,1", "--bidi", "--report", "r.json"]).is_ok());
    }

    #[test]
    fn usage_documents_observability_flags() {
        for flag in [
            "--report",
            "--progress",
            "--log-json",
            "--profile",
            "--trace",
            "--trace-out",
            "--metrics-out",
            "--metrics-addr",
            "--dump",
            "--chrome-out",
        ] {
            assert!(USAGE.contains(flag), "USAGE must mention {flag}");
        }
        assert!(USAGE.contains("rmrls trace"), "trace subcommand in USAGE");
    }

    #[test]
    fn trace_and_profile_flags_parse() {
        match parse(&[
            "synth",
            "--spec",
            "0,1",
            "--profile",
            "--trace",
            "dump.json",
            "--trace-out",
            "chrome.json",
            "--metrics-out",
            "metrics.prom",
        ])
        .unwrap()
        {
            Command::Synth {
                profile,
                trace,
                trace_out,
                metrics_out,
                ..
            } => {
                assert!(profile);
                assert_eq!(trace.as_deref(), Some("dump.json"));
                assert_eq!(trace_out.as_deref(), Some("chrome.json"));
                assert_eq!(metrics_out.as_deref(), Some("metrics.prom"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&["trace", "--dump", "d.json", "--chrome-out", "c.json"]).unwrap() {
            Command::Trace { dump, chrome_out } => {
                assert_eq!(dump, "d.json");
                assert_eq!(chrome_out.as_deref(), Some("c.json"));
            }
            other => panic!("{other:?}"),
        }
        // The trace subcommand needs its input file.
        assert!(parse(&["trace"]).is_err());
        // Scope validation: flags stay with their commands.
        assert!(parse(&["mmd", "--spec", "0,1", "--profile"]).is_err());
        assert!(parse(&["info", "--tfc", "x.tfc", "--trace", "d.json"]).is_err());
        assert!(parse(&["batch", "--suite", "table4", "--trace-out", "c.json"]).is_err());
        assert!(parse(&["batch", "--suite", "table4", "--metrics-out", "m"]).is_err());
        assert!(parse(&["synth", "--spec", "0,1", "--dump", "d.json"]).is_err());
        // --bidi runs two searches; one recorder cannot serve both.
        assert!(parse(&["synth", "--spec", "0,1", "--bidi", "--trace", "d.json"]).is_err());
        assert!(parse(&["synth", "--spec", "0,1", "--bidi", "--trace-out", "c.json"]).is_err());
        // ... but the profile rides in the returned stats, so it composes.
        assert!(parse(&["synth", "--spec", "0,1", "--bidi", "--profile"]).is_ok());
    }

    #[test]
    fn synth_writes_trace_chrome_and_metrics_files() {
        let dir = std::env::temp_dir().join("rmrls-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("dump.json");
        let chrome = dir.join("chrome.json");
        let metrics = dir.join("metrics.prom");
        let report = dir.join("report.json");
        let cmd = parse(&[
            "synth",
            "--spec",
            "1,0,7,2,3,4,5,6",
            "--profile",
            "--trace",
            trace.to_str().unwrap(),
            "--trace-out",
            chrome.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ])
        .unwrap();
        let mut out = String::new();
        run(cmd, &mut out).unwrap();
        assert!(out.contains("profile:"), "{out}");

        // The raw dump parses back as a snapshot bracketing the search.
        let json = rmrls_obs::Json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let snapshot = RecorderSnapshot::from_json(&json).unwrap();
        assert!(snapshot.records.iter().any(|r| matches!(
            &r.kind,
            TraceKind::PhaseEnter { phase } if phase == "search"
        )));

        // The Chrome export is valid trace-event JSON.
        let chrome_json =
            rmrls_obs::Json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        assert!(!chrome_json
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());

        // The Prometheus exposition carries namespaced metrics.
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("rmrls_"), "{prom}");

        // --profile lands a non-null phase table in the report.
        let report_json =
            rmrls_obs::Json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        let phases = report_json
            .get("stats")
            .unwrap()
            .get("profile")
            .unwrap()
            .as_arr()
            .expect("profile is an array when --profile is set");
        assert!(!phases.is_empty());
    }

    #[test]
    fn trace_subcommand_summarizes_a_dump() {
        let dir = std::env::temp_dir().join("rmrls-cli-trace-sub-test");
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("dump.json");
        let chrome = dir.join("chrome.json");
        let cmd = parse(&[
            "synth",
            "--spec",
            "1,0,7,2,3,4,5,6",
            "--trace",
            dump.to_str().unwrap(),
        ])
        .unwrap();
        run(cmd, &mut String::new()).unwrap();

        let cmd = parse(&[
            "trace",
            "--dump",
            dump.to_str().unwrap(),
            "--chrome-out",
            chrome.to_str().unwrap(),
        ])
        .unwrap();
        let mut out = String::new();
        run(cmd, &mut out).unwrap();
        assert!(out.contains("top phases:"), "{out}");
        assert!(out.contains("search"), "{out}");
        assert!(out.contains("record kinds:"), "{out}");
        rmrls_obs::Json::parse(&std::fs::read_to_string(&chrome).unwrap())
            .expect("chrome export from the trace subcommand is valid JSON");

        // Garbage input fails with a parse error, not a panic.
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json").unwrap();
        let cmd = parse(&["trace", "--dump", garbage.to_str().unwrap()]).unwrap();
        assert!(run(cmd, &mut String::new()).is_err());
    }

    #[test]
    fn trace_subcommand_tallies_anomalies_from_an_anomaly_dump() {
        let dir = std::env::temp_dir().join("rmrls-cli-anomaly-tally-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("3-rd53.anomaly.json");
        // Shape of an engine .anomaly.json: a recorder snapshot plus
        // the job name and the anomaly that triggered the dump.
        let recorder = FlightRecorder::with_default_budget();
        recorder.anomaly("memory_shed", "frontier");
        recorder.anomaly("memory_shed", "frontier");
        recorder.anomaly("deadline_expired", "search_loop");
        let mut json = recorder.snapshot().to_json();
        if let rmrls_obs::Json::Obj(fields) = &mut json {
            fields.push(("job".into(), rmrls_obs::Json::str("rd53")));
            fields.push(("trigger".into(), rmrls_obs::Json::str("memory_shed")));
        }
        std::fs::write(&path, format!("{json}\n")).unwrap();

        let cmd = parse(&["trace", "--dump", path.to_str().unwrap()]).unwrap();
        let mut out = String::new();
        run(cmd, &mut out).unwrap();
        assert!(out.contains("job: rd53"), "{out}");
        assert!(out.contains("trigger: memory_shed"), "{out}");
        assert!(out.contains("anomaly tally:"), "{out}");
        assert!(out.contains("memory_shed @ frontier x2"), "{out}");
        assert!(out.contains("deadline_expired @ search_loop x1"), "{out}");
    }

    #[test]
    fn batch_trace_writes_per_job_dumps_via_cli() {
        let dir = std::env::temp_dir().join("rmrls-cli-batch-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let traces = dir.join("traces");
        let cmd = parse(&[
            "batch",
            "--suite",
            "examples",
            "--jobs",
            "2",
            "--profile",
            "--trace",
            traces.to_str().unwrap(),
        ])
        .unwrap();
        let mut out = String::new();
        run(cmd, &mut out).unwrap();
        assert!(out.contains("traces:"), "{out}");
        assert!(out.contains("profile:"), "{out}");
        let dumps = std::fs::read_dir(&traces)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".trace.json")
            })
            .count();
        assert_eq!(dumps, 8, "one dump per examples-suite job");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_file_round_trips_against_cli_output() {
        let dir = std::env::temp_dir().join("rmrls-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run-report.json");
        let cmd = parse(&[
            "synth",
            "--benchmark",
            "ex1",
            "--report",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let mut out = String::new();
        run(cmd, &mut out).expect("ex1 synthesizes");

        let text = std::fs::read_to_string(&path).unwrap();
        let json = rmrls_obs::Json::parse(&text).expect("report is valid JSON");
        assert_eq!(json.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(json.get("solved").unwrap().as_bool(), Some(true));
        // The report's gate count agrees with the human-readable output.
        let gates = json
            .get("circuit")
            .unwrap()
            .get("gates")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(out.contains(&format!("gates: {gates}")), "{out}");
        let stats = json.get("stats").unwrap();
        for field in [
            "nodes_expanded",
            "children_pushed",
            "restarts",
            "dedup_hits",
            "queue_peak",
            "restart_spans",
            "stop_reason",
        ] {
            assert!(stats.get(field).is_some(), "stats.{field} missing");
        }
        // Metrics ride along because --report enables the registry.
        assert!(json.get("metrics").unwrap().get("histograms").is_some());
        assert_eq!(json.get("events_dropped").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn failed_synthesis_still_writes_a_report() {
        let dir = std::env::temp_dir().join("rmrls-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("failed-report.json");
        let cmd = parse(&[
            "synth",
            "--spec",
            "0,1,2,4,3,5,6,7",
            "--max-gates",
            "1",
            "--report",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let mut out = String::new();
        assert!(run(cmd, &mut out).is_err(), "cap below optimum must fail");
        let json = rmrls_obs::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(json.get("solved").unwrap().as_bool(), Some(false));
        assert!(json.get("stats").unwrap().get("stop_reason").is_some());
    }

    #[test]
    fn log_json_streams_bracketed_events() {
        let dir = std::env::temp_dir().join("rmrls-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let cmd = parse(&[
            "synth",
            "--spec",
            "1,0,7,2,3,4,5,6",
            "--log-json",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let mut out = String::new();
        run(cmd, &mut out).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "expected a stream of events: {text}");
        let first = rmrls_obs::Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("event").unwrap().as_str(), Some("run_start"));
        let last = rmrls_obs::Json::parse(lines[lines.len() - 1]).unwrap();
        assert_eq!(last.get("event").unwrap().as_str(), Some("run_end"));
        for line in &lines {
            rmrls_obs::Json::parse(line).expect("every line is standalone JSON");
        }
    }

    #[test]
    fn batch_flags_parse() {
        match parse(&[
            "batch",
            "--suite",
            "examples",
            "--jobs",
            "4",
            "--deadline-ms",
            "250",
            "--cache-size",
            "64",
            "--canon-limit",
            "6",
            "--no-verify",
            "--results",
            "r.jsonl",
            "--report",
            "report.json",
            "--strict",
            "--fallback",
            "--resume",
            "old.jsonl",
            "--trace",
            "traces",
            "--profile",
            "--threads",
            "2",
        ])
        .unwrap()
        {
            Command::Batch {
                source,
                jobs,
                threads,
                deadline,
                cache_size,
                canon_limit,
                verify,
                fallback,
                results,
                report,
                trace_dir,
                profile,
                strict,
                resume,
                metrics_addr,
                store,
            } => {
                assert_eq!(metrics_addr, None);
                assert_eq!(store, None);
                assert_eq!(source, BatchSource::Suite("examples".into()));
                assert_eq!(jobs, Some(4));
                assert_eq!(threads, Some(2));
                assert_eq!(deadline, Some(Duration::from_millis(250)));
                assert_eq!(cache_size, Some(64));
                assert_eq!(canon_limit, 6);
                assert!(!verify);
                assert!(fallback);
                assert_eq!(results.as_deref(), Some("r.jsonl"));
                assert_eq!(report.as_deref(), Some("report.json"));
                assert_eq!(trace_dir.as_deref(), Some("traces"));
                assert!(profile);
                assert!(strict);
                assert_eq!(resume.as_deref(), Some("old.jsonl"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_defaults_and_source_validation() {
        match parse(&["batch", "--manifest", "jobs.txt"]).unwrap() {
            Command::Batch {
                source,
                jobs,
                threads,
                cache_size,
                canon_limit,
                verify,
                fallback,
                strict,
                resume,
                ..
            } => {
                assert_eq!(source, BatchSource::Manifest("jobs.txt".into()));
                assert_eq!(jobs, None);
                assert_eq!(threads, None);
                assert_eq!(cache_size, Some(1024));
                assert_eq!(canon_limit, 8);
                assert!(verify);
                assert!(!fallback);
                assert!(!strict);
                assert_eq!(resume, None);
            }
            other => panic!("{other:?}"),
        }
        // Exactly one source, and the flag combinations must be sane.
        assert!(parse(&["batch"]).is_err());
        assert!(parse(&["batch", "--manifest", "a", "--suite", "table4"]).is_err());
        assert!(parse(&["batch", "--suite", "table4", "--jobs", "0"]).is_err());
        assert!(parse(&["batch", "--suite", "table4", "--threads", "0"]).is_err());
        assert!(parse(&[
            "batch",
            "--suite",
            "table4",
            "--no-cache",
            "--cache-size",
            "8"
        ])
        .is_err());
        // --no-cache alone disables the cache.
        match parse(&["batch", "--suite", "table4", "--no-cache"]).unwrap() {
            Command::Batch { cache_size, .. } => assert_eq!(cache_size, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_batch_suite_writes_results_and_report() {
        let dir = std::env::temp_dir().join("rmrls-cli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let results = dir.join("results.jsonl");
        let report = dir.join("report.json");
        let cmd = parse(&[
            "batch",
            "--suite",
            "examples",
            "--jobs",
            "2",
            "--strict",
            "--results",
            results.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ])
        .unwrap();
        let mut out = String::new();
        run(cmd, &mut out).expect("examples suite synthesizes clean");
        assert!(out.contains("panics_contained: 0"), "{out}");
        assert!(out.contains("verified: 8 ok, 0 failed"), "{out}");

        let jsonl = std::fs::read_to_string(&results).unwrap();
        // Header line plus one indexed record per job.
        assert_eq!(jsonl.lines().count(), 1 + 8);
        let header = rmrls_obs::Json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(header.get("journal").unwrap().as_str(), Some("rmrls-batch"));
        for (i, line) in jsonl.lines().skip(1).enumerate() {
            let record = rmrls_obs::Json::parse(line).unwrap();
            assert_eq!(record.get("index").unwrap().as_u64(), Some(i as u64));
            assert_eq!(record.get("status").unwrap().as_str(), Some("solved"));
            assert_eq!(record.get("verified").unwrap().as_bool(), Some(true));
        }
        let report = rmrls_obs::Json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(report.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(
            report
                .get("counters")
                .unwrap()
                .get("panics_contained")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }

    #[test]
    fn run_batch_store_roundtrip_fsck_and_compact() {
        let dir = std::env::temp_dir().join("rmrls-cli-store-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("circuits.store");
        let store_arg = store.to_str().unwrap();
        let results = |name: &str| dir.join(name).to_str().unwrap().to_string();
        let batch = |results_path: &str| {
            parse(&[
                "batch",
                "--suite",
                "examples",
                "--jobs",
                "2",
                "--strict",
                "--store",
                store_arg,
                "--results",
                results_path,
            ])
            .unwrap()
        };

        // Cold run populates the store; warm run must be served from it
        // (fresh LRU each run, so every unique canonical either inserts
        // on the first run or hits the store on the second).
        let mut cold = String::new();
        run(batch(&results("cold.jsonl")), &mut cold).expect("cold run");
        assert!(cold.contains("  store: "), "{cold}");
        let mut warm = String::new();
        run(batch(&results("warm.jsonl")), &mut warm).expect("warm run");
        let store_line = warm.lines().find(|l| l.starts_with("  store: ")).unwrap();
        let hits: u64 = store_line
            .trim_start_matches("  store: ")
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(hits > 0, "warm run should hit the store: {warm}");
        assert!(store_line.contains("0 inserts"), "{warm}");

        // The warm run's circuits are byte-identical to the cold run's.
        let circuits = |path: &str| -> Vec<String> {
            std::fs::read_to_string(path)
                .unwrap()
                .lines()
                .skip(1)
                .map(|l| {
                    rmrls_obs::Json::parse(l)
                        .unwrap()
                        .get("circuit")
                        .expect("solved record")
                        .to_string()
                })
                .collect()
        };
        assert_eq!(
            circuits(&results("cold.jsonl")),
            circuits(&results("warm.jsonl"))
        );

        // stats and fsck agree the store is clean.
        let mut out = String::new();
        run(
            parse(&["store", "stats", "--store", store_arg]).unwrap(),
            &mut out,
        )
        .unwrap();
        let stats = rmrls_obs::Json::parse(out.trim()).unwrap();
        let entries = stats.get("entries").unwrap().as_u64().unwrap();
        assert!(entries > 0);
        assert_eq!(stats.get("quarantined_records").unwrap().as_u64(), Some(0));
        let mut out = String::new();
        run(
            parse(&["store", "fsck", "--store", store_arg]).unwrap(),
            &mut out,
        )
        .expect("clean store passes fsck");

        // Flip one byte inside the first record's payload: fsck reports
        // exactly that record quarantined (nonzero exit) and preserves
        // the rest; a batch run degrades to a warning, not a failure.
        let mut bytes = std::fs::read(&store).unwrap();
        let payload_at = bytes.iter().position(|&b| b == b'\n').unwrap() + 1 + 15;
        bytes[payload_at] ^= 0xff;
        std::fs::write(&store, &bytes).unwrap();
        let mut out = String::new();
        let fsck_err = run(
            parse(&["store", "fsck", "--store", store_arg]).unwrap(),
            &mut out,
        )
        .expect_err("fsck must exit nonzero on damage");
        assert!(fsck_err.0.contains("1 quarantined"), "{fsck_err:?}");
        let report = rmrls_obs::Json::parse(out.trim()).unwrap();
        match report.get("quarantined").unwrap() {
            rmrls_obs::Json::Arr(regions) => assert_eq!(regions.len(), 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            report.get("valid_records").unwrap().as_u64(),
            Some(entries - 1),
            "undamaged records survive"
        );
        let mut damaged = String::new();
        run(batch(&results("damaged.jsonl")), &mut damaged).expect("strict run despite damage");
        assert!(damaged.contains("corrupt records quarantined"), "{damaged}");
        assert_eq!(
            circuits(&results("cold.jsonl")),
            circuits(&results("damaged.jsonl"))
        );

        // Compact rewrites without the quarantined bytes; fsck is clean
        // again and every entry survives (the damaged one was re-solved
        // and re-inserted by the run above).
        let mut out = String::new();
        run(
            parse(&["store", "compact", "--store", store_arg]).unwrap(),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("compacted"), "{out}");
        let mut out = String::new();
        run(
            parse(&["store", "fsck", "--store", store_arg]).unwrap(),
            &mut out,
        )
        .expect("compacted store passes fsck");
        let report = rmrls_obs::Json::parse(out.trim()).unwrap();
        assert_eq!(report.get("valid_records").unwrap().as_u64(), Some(entries));
    }

    #[test]
    fn batch_resume_skips_completed_jobs_and_matches_reference() {
        let dir = std::env::temp_dir().join("rmrls-cli-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.jsonl");
        let run_batch_cmd = |extra: &[&str]| {
            let mut v = vec![
                "batch",
                "--suite",
                "examples",
                "--jobs",
                "1",
                "--results",
                journal.to_str().unwrap(),
            ];
            v.extend_from_slice(extra);
            parse(&v).unwrap()
        };

        // Reference: an uninterrupted run.
        let mut out = String::new();
        run(run_batch_cmd(&[]), &mut out).unwrap();
        let reference = std::fs::read_to_string(&journal).unwrap();
        let lines: Vec<&str> = reference.lines().collect();
        assert_eq!(lines.len(), 1 + 8);

        // Simulate a SIGKILL: keep the header, three intact records,
        // and half of the fourth record's bytes.
        let mut torn = lines[..4].join("\n");
        torn.push('\n');
        torn.push_str(&lines[4][..lines[4].len() / 2]);
        std::fs::write(&journal, &torn).unwrap();

        let mut out = String::new();
        run(
            run_batch_cmd(&["--resume", journal.to_str().unwrap()]),
            &mut out,
        )
        .unwrap();
        assert!(
            out.contains("resuming: 3 of 8 jobs already complete"),
            "{out}"
        );
        assert!(out.contains("torn record"), "{out}");
        assert!(out.contains("resumed from journal: 3"), "{out}");
        let resumed = std::fs::read_to_string(&journal).unwrap();
        // The final rewritten journal is byte-identical modulo the
        // per-job timing fields, which we strip before comparing.
        let strip = |text: &str| {
            text.lines()
                .map(|l| {
                    let json = rmrls_obs::Json::parse(l).unwrap();
                    match json {
                        rmrls_obs::Json::Obj(fields) => rmrls_obs::Json::Obj(
                            fields.into_iter().filter(|(k, _)| k != "seconds").collect(),
                        )
                        .to_string(),
                        other => other.to_string(),
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&resumed), strip(&reference));
    }

    #[test]
    fn batch_resume_refuses_mismatched_journals() {
        let dir = std::env::temp_dir().join("rmrls-cli-resume-refuse");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.jsonl");
        let cmd = parse(&[
            "batch",
            "--suite",
            "examples",
            "--results",
            journal.to_str().unwrap(),
        ])
        .unwrap();
        run(cmd, &mut String::new()).unwrap();

        // Different job list: same options, other suite.
        let other_suite = parse(&[
            "batch",
            "--suite",
            "table4",
            "--resume",
            journal.to_str().unwrap(),
        ])
        .unwrap();
        let err = run(other_suite, &mut String::new()).unwrap_err();
        assert!(err.0.contains("different job list"), "{}", err.0);

        // Same job list, different options fingerprint.
        let other_opts = parse(&[
            "batch",
            "--suite",
            "examples",
            "--no-verify",
            "--resume",
            journal.to_str().unwrap(),
        ])
        .unwrap();
        let err = run(other_opts, &mut String::new()).unwrap_err();
        assert!(err.0.contains("different options"), "{}", err.0);

        // A plain results file from before the journal era (no header).
        let legacy = dir.join("legacy.jsonl");
        std::fs::write(&legacy, "{\"index\":0,\"status\":\"solved\"}\n").unwrap();
        let from_legacy = parse(&[
            "batch",
            "--suite",
            "examples",
            "--resume",
            legacy.to_str().unwrap(),
        ])
        .unwrap();
        assert!(run(from_legacy, &mut String::new()).is_err());
    }

    #[test]
    fn strict_batch_fails_on_corrupt_manifest() {
        let dir = std::env::temp_dir().join("rmrls-cli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("corrupt.manifest");
        std::fs::write(&manifest, "perm 1,0,7,2,3,4,5,6\nperm 0,0,1,2\n").unwrap();
        let args = |strict: bool| {
            let mut v = vec![
                "batch".to_string(),
                "--manifest".to_string(),
                manifest.to_str().unwrap().to_string(),
            ];
            if strict {
                v.push("--strict".to_string());
            }
            v
        };
        let mut out = String::new();
        let lenient = parse_args(args(false)).unwrap();
        run(lenient, &mut out).expect("errors are records, not failures");
        assert!(out.contains("errors: 1"), "{out}");
        let strict = parse_args(args(true)).unwrap();
        assert!(run(strict, &mut String::new()).is_err());
    }

    #[test]
    fn batch_rejects_unknown_suite() {
        let cmd = parse(&["batch", "--suite", "nope"]).unwrap();
        assert!(run(cmd, &mut String::new()).is_err());
    }

    #[test]
    fn tfc_roundtrip_through_cli() {
        let dir = std::env::temp_dir().join("rmrls-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.tfc");
        let cmd = parse(&[
            "synth",
            "--spec",
            "1,0,7,2,3,4,5,6",
            "--tfc-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let mut out = String::new();
        run(cmd, &mut out).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let circuit = rmrls_circuit::tfc::parse(&text).unwrap();
        assert_eq!(circuit.to_permutation(), vec![1, 0, 7, 2, 3, 4, 5, 6]);
    }
}
