//! The `rmrls` command-line entry point; all logic lives in the library
//! layer (`rmrls_cli`) so it can be unit-tested.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match rmrls_cli::parse_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", rmrls_cli::USAGE);
            return ExitCode::from(2);
        }
    };
    let mut out = String::new();
    match rmrls_cli::run(command, &mut out) {
        Ok(()) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            print!("{out}");
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
