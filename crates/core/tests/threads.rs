//! Thread-count determinism: the parallel search is speculation around
//! an unchanged sequential commit order, so the synthesized circuit and
//! every replay-derived statistic must be byte-identical for any
//! `SynthesisOptions::threads` value — including on runs that shed
//! memory, exhaust budgets, or fail entirely.

use rmrls_core::{synthesize, SearchStats, StopReason, SynthesisOptions, TraceEvent};
use rmrls_spec::benchmarks;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The deterministic (replay-derived) slice of the statistics. The
/// scheduling-dependent counters (`spec_*`, `steals`,
/// `shard_contention_retries`, `dup_races_lost`, `shared_seen_hits`)
/// and wall-clock times are deliberately excluded.
#[derive(Debug, PartialEq)]
struct DetKey {
    nodes_expanded: u64,
    children_generated: u64,
    candidates_scored: u64,
    candidates_materialized: u64,
    children_pushed: u64,
    restarts: u64,
    solutions_seen: u64,
    depth_pruned: u64,
    dedup_hits: u64,
    dedup_collisions: u64,
    beam_trims: u64,
    beam_dropped: u64,
    queue_peak: u64,
    memory_sheds: u64,
    memory_shed_dropped: u64,
    live_terms_peak: u64,
    queue_bytes_peak: u64,
    stop_reason: Option<StopReason>,
    restart_nodes: Vec<u64>,
    trace: Vec<TraceEvent>,
}

fn det_key(stats: &SearchStats) -> DetKey {
    DetKey {
        nodes_expanded: stats.nodes_expanded,
        children_generated: stats.children_generated,
        candidates_scored: stats.candidates_scored,
        candidates_materialized: stats.candidates_materialized,
        children_pushed: stats.children_pushed,
        restarts: stats.restarts,
        solutions_seen: stats.solutions_seen,
        depth_pruned: stats.depth_pruned,
        dedup_hits: stats.dedup_hits,
        dedup_collisions: stats.dedup_collisions,
        beam_trims: stats.beam_trims,
        beam_dropped: stats.beam_dropped,
        queue_peak: stats.queue_peak,
        memory_sheds: stats.memory_sheds,
        memory_shed_dropped: stats.memory_shed_dropped,
        live_terms_peak: stats.live_terms_peak,
        queue_bytes_peak: stats.queue_bytes_peak,
        stop_reason: stats.stop_reason,
        restart_nodes: stats
            .restart_spans
            .iter()
            .map(|s| s.nodes_expanded)
            .collect(),
        trace: stats.trace.clone(),
    }
}

/// Runs one synthesis and returns the rendered circuit (`None` on
/// failure) plus the deterministic stats key.
fn run(
    spec: &rmrls_pprm::MultiPprm,
    options: &SynthesisOptions,
    threads: usize,
) -> (Option<String>, DetKey, u64) {
    match synthesize(spec, &options.clone().with_threads(threads)) {
        Ok(result) => {
            assert_eq!(result.stats.threads_used, threads as u64);
            let key = det_key(&result.stats);
            (
                Some(result.circuit.to_string()),
                key,
                result.stats.spec_hits,
            )
        }
        Err(err) => {
            assert_eq!(err.stats.threads_used, threads as u64);
            (None, det_key(&err.stats), err.stats.spec_hits)
        }
    }
}

/// Asserts byte-identical circuits and deterministic stats across all
/// of [`THREADS`], returning the total speculation hits observed on the
/// multi-threaded runs.
fn assert_thread_invariant(
    name: &str,
    spec: &rmrls_pprm::MultiPprm,
    options: &SynthesisOptions,
) -> u64 {
    let (circuit1, key1, _) = run(spec, options, 1);
    let mut hits = 0;
    for threads in THREADS.into_iter().skip(1) {
        let (circuit_n, key_n, spec_hits) = run(spec, options, threads);
        assert_eq!(
            circuit_n, circuit1,
            "{name}: circuit differs at {threads} threads"
        );
        assert_eq!(key_n, key1, "{name}: stats differ at {threads} threads");
        hits += spec_hits;
    }
    hits
}

#[test]
fn worked_examples_identical_across_thread_counts() {
    let options = SynthesisOptions::new()
        .with_max_nodes(100_000)
        .with_trace(true);
    let mut total_hits = 0;
    for bench in benchmarks::example_suite() {
        total_hits += assert_thread_invariant(bench.name, &bench.to_multi_pprm(), &options);
    }
    // The parallel path must actually have engaged: commit-thread pops
    // served from completed worker speculations.
    assert!(
        total_hits > 0,
        "no speculative expansion was ever consumed across the suite"
    );
}

#[test]
fn pruning_and_fredkin_variants_identical_across_thread_counts() {
    use rmrls_core::{FredkinMode, Pruning};
    let spec = benchmarks::find("decod24").unwrap().to_multi_pprm();
    for options in [
        SynthesisOptions::new()
            .with_pruning(Pruning::TopK(3))
            .with_max_nodes(50_000),
        SynthesisOptions::new()
            .with_pruning(Pruning::Greedy)
            .with_stop_at_first(true)
            .with_max_nodes(50_000),
        SynthesisOptions::new()
            .with_fredkin_substitutions(FredkinMode::Full)
            .with_max_nodes(50_000),
        SynthesisOptions::new()
            .with_max_queue(Some(64))
            .with_max_nodes(50_000),
    ] {
        assert_thread_invariant("decod24", &spec, &options);
    }
}

#[test]
fn memory_shed_runs_identical_across_thread_counts() {
    // A tight live-terms budget forces emergency queue sheds (and with
    // it the union-frontier drain/rebuild path of the parallel search);
    // the shed decisions are made on the logical frontier under the
    // serial comparator, so they too must be thread-count-independent.
    let spec = benchmarks::find("rd53").unwrap().to_multi_pprm();
    let options = SynthesisOptions::new()
        .with_max_nodes(3_000)
        .with_max_live_terms(1_500);
    let (_, key1, _) = run(&spec, &options, 1);
    assert!(
        key1.memory_sheds > 0,
        "workload must actually shed to exercise the path"
    );
    assert_thread_invariant("rd53-shed", &spec, &options);
}

#[test]
fn unsolved_runs_identical_across_thread_counts() {
    // Budget-bounded failure: the node budget expires mid-search and
    // the NoSolutionError stats must match exactly, including the stop
    // reason and restart spans.
    let spec = benchmarks::find("hwb4").unwrap().to_multi_pprm();
    let options = SynthesisOptions::new().with_max_nodes(400);
    let (circuit, key1, _) = run(&spec, &options, 1);
    assert!(circuit.is_none(), "budget must expire before a solution");
    assert_eq!(key1.stop_reason, Some(StopReason::NodeBudget));
    assert_thread_invariant("hwb4-budget", &spec, &options);
}

#[test]
fn restart_schedule_identical_across_thread_counts() {
    // Restarts drain the frontier and reseed from the root children —
    // in parallel mode that also discards every in-flight speculation.
    let spec = benchmarks::find("4_49").unwrap().to_multi_pprm();
    let options = SynthesisOptions::new()
        .with_restart_after(Some(500))
        .with_max_nodes(4_000);
    let (_, key1, _) = run(&spec, &options, 1);
    assert!(key1.restarts > 0, "workload must actually restart");
    assert_thread_invariant("4_49-restarts", &spec, &options);
}
