use rmrls_core::*;
use rmrls_spec::Permutation;
use std::time::{Duration, Instant};
fn main() {
    let t0 = Instant::now();
    let (mut nct, mut swap, mut full, mut n) = (0usize, 0usize, 0usize, 0usize);
    let base = SynthesisOptions::new()
        .with_max_nodes(20000)
        .with_max_gates(20)
        .with_time_limit(Duration::from_millis(500));
    let s = base
        .clone()
        .with_fredkin_substitutions(FredkinMode::SwapOnly);
    let f = base.clone().with_fredkin_substitutions(FredkinMode::Full);
    for rank in (0..40320u128).step_by(101) {
        let spec = Permutation::from_rank(3, rank).to_multi_pprm();
        nct += synthesize(&spec, &base).unwrap().circuit.gate_count();
        swap += synthesize(&spec, &s).unwrap().circuit.gate_count();
        full += synthesize(&spec, &f).unwrap().circuit.gate_count();
        n += 1;
    }
    println!(
        "NCT {:.3} | NCTS(swap) {:.3} | GF(full fredkin) {:.3} over {n} ({:?})",
        nct as f64 / n as f64,
        swap as f64 / n as f64,
        full as f64 / n as f64,
        t0.elapsed()
    );
}
