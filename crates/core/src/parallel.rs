//! Speculative worker pool for the intra-job parallel search.
//!
//! # Architecture: speculation + sequential commit
//!
//! A naive parallel best-first search (every thread popping from a
//! shared queue) cannot keep the output byte-identical across thread
//! counts: two threads racing the visited table on equal-depth
//! duplicate states with different gate-path prefixes would let the OS
//! scheduler pick the surviving circuit prefix. This module therefore
//! parallelizes the *work per node* instead of the *order of nodes*:
//!
//! - The **commit thread** (the caller of `synthesize`) runs the exact
//!   serial algorithm — same pops, same pruning, same dedup, same
//!   restarts — and is the only thread that mutates search state.
//! - **Workers** receive the best frontier entries ahead of time (the
//!   speculation window of [`crate::search`]), and for each node
//!   compute the full enumeration of candidate scores — the dominant
//!   cost of an expansion — plus, for candidates likely to survive
//!   pruning, the materialized child states.
//! - When the commit thread pops a node whose result is ready, it
//!   **replays** its serial expansion from the precomputed scores
//!   instead of re-running the counting kernels.
//!
//! Correctness never depends on the workers: a score is a pure function
//! of `(state, move)`, both sides enumerate moves with the shared
//! [`crate::search::enumerate_move_groups`], and pre-materialized
//! children are keyed by enumeration index, so replay is
//! input-for-input identical to live expansion. Worker-side filters
//! (the stale depth-cutoff read, the shared seen-fingerprint hint
//! table) only decide *how much* to pre-build, never what the commit
//! thread admits. A lost, failed, or late result degrades to a live
//! expansion on the commit thread.
//!
//! Everything here is `std`-only: `std::thread` for the pool,
//! `Mutex<VecDeque>` deques with work stealing for distribution, a
//! fixed-size open-addressed table of `AtomicU64` CAS slots for the
//! shared fingerprint hints.

use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use rmrls_circuit::Gate;
use rmrls_pprm::{MultiPprm, SubstCount, SubstScratch};

use crate::search::{apply_move, candidate_priority, enumerate_move_groups, score_move};
use crate::SynthesisOptions;

/// Number of `AtomicU64` slots in the shared seen-fingerprint table
/// (512 KiB). The table is a hint cache, not the authoritative visited
/// set: a full table just means fewer skipped pre-materializations.
const SEEN_SLOTS: usize = 1 << 16;
/// Linear probes before giving up on a seen-table insert/lookup.
const SEEN_PROBES: usize = 8;

/// Everything a worker needs to speculatively expand one node.
pub(crate) struct WorkItem {
    /// The entry's queue sequence number — the replay key. Unique per
    /// pushed entry and bound to one immutable state, so a result can
    /// never be applied to the wrong node.
    pub(crate) seq: u64,
    pub(crate) depth: u32,
    /// Last gate on the node's path (the type-3 enumeration consults
    /// it); the path itself stays on the commit thread.
    pub(crate) parent_gate: Option<Gate>,
    pub(crate) state: Arc<MultiPprm>,
}

/// One scored move, in exact enumeration order.
#[derive(Clone, Copy)]
pub(crate) struct SpecScore {
    pub(crate) score: SubstCount,
    /// `Some(flag)` when the score matched the identity signature and
    /// the worker materialized the child to confirm (`flag` =
    /// `is_identity()`); `None` otherwise.
    pub(crate) identity: Option<bool>,
}

/// A completed speculative expansion, consumed move-by-move by the
/// commit thread's replay.
pub(crate) struct SpecReplay {
    scores: Vec<SpecScore>,
    /// Pre-materialized children keyed by enumeration index.
    premat: HashMap<usize, MultiPprm>,
    cursor: usize,
}

impl SpecReplay {
    /// The next precomputed score, in enumeration order. `None` only if
    /// the replay ran dry (enumeration mismatch — impossible while both
    /// sides share the enumerator; the caller falls back to live
    /// scoring).
    pub(crate) fn next_score(&mut self) -> Option<SpecScore> {
        let s = self.scores.get(self.cursor).copied();
        debug_assert!(s.is_some(), "speculative replay ran dry");
        self.cursor += 1;
        s
    }

    /// Takes the pre-materialized child for an enumeration index.
    pub(crate) fn take_premat(&mut self, idx: usize) -> Option<MultiPprm> {
        self.premat.remove(&idx)
    }
}

/// Lifecycle of one submitted work item.
enum Slot {
    /// In a deque or being processed.
    Queued,
    /// Result ready.
    Done(SpecReplay),
    /// The worker failpoint erred — expand live instead.
    Failed,
    /// The commit thread dropped the node before the result arrived;
    /// the worker discards the result on completion.
    Discarded,
}

/// Monotonic totals of worker-side activity, folded into
/// [`crate::SearchStats`] when the search finishes.
pub(crate) struct ParTotals {
    pub(crate) steals: u64,
    pub(crate) contention_retries: u64,
    pub(crate) seen_hits: u64,
    pub(crate) scored: u64,
    pub(crate) materialized: u64,
}

/// Fixed-capacity open-addressed fingerprint set over atomic CAS slots
/// — the "sharded visited table" hint the workers consult before
/// pre-materializing a child. Only the commit thread inserts (mirroring
/// its authoritative `visited` map), so a hit can only be a fingerprint
/// the serial dedup would also see; a miss (including a full-table
/// give-up) merely means the worker builds a child the commit thread
/// may then reject.
struct SeenTable {
    slots: Box<[AtomicU64]>,
    mask: usize,
    contention_retries: AtomicU64,
}

impl SeenTable {
    fn new() -> SeenTable {
        let slots = (0..SEEN_SLOTS).map(|_| AtomicU64::new(0)).collect();
        SeenTable {
            slots,
            mask: SEEN_SLOTS - 1,
            contention_retries: AtomicU64::new(0),
        }
    }

    /// Inserts a fingerprint (fingerprint 0 is never stored; missing it
    /// is harmless for a hint table).
    fn insert(&self, fp: u64) {
        if fp == 0 {
            return;
        }
        for i in 0..SEEN_PROBES {
            let slot = &self.slots[(fp as usize).wrapping_add(i) & self.mask];
            let cur = slot.load(Ordering::Relaxed);
            if cur == fp {
                return;
            }
            if cur == 0 {
                match slot.compare_exchange(0, fp, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => return,
                    Err(actual) => {
                        self.contention_retries.fetch_add(1, Ordering::Relaxed);
                        if actual == fp {
                            return;
                        }
                        // Another fingerprint claimed the slot; keep
                        // probing.
                    }
                }
            }
        }
    }

    fn contains(&self, fp: u64) -> bool {
        if fp == 0 {
            return false;
        }
        for i in 0..SEEN_PROBES {
            let cur = self.slots[(fp as usize).wrapping_add(i) & self.mask].load(Ordering::Relaxed);
            if cur == fp {
                return true;
            }
            if cur == 0 {
                return false;
            }
        }
        false
    }
}

/// Read-only context shared with every worker.
struct WorkerCtx {
    options: SynthesisOptions,
    init_terms: usize,
    identity_fp: u64,
}

/// State shared between the commit thread and the workers.
struct Shared {
    ctx: WorkerCtx,
    /// One work deque per worker; the owner pops its front, idle
    /// workers steal from other deques' backs.
    deques: Vec<Mutex<VecDeque<WorkItem>>>,
    /// Version counter bumped on every submit/shutdown, guarded by its
    /// own mutex so a worker can sleep without missing a wakeup: it
    /// records the version, rescans the deques, and only waits if the
    /// version is unchanged.
    signal: Mutex<u64>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    /// Submitted-item lifecycle, keyed by queue `seq`.
    slots: Mutex<HashMap<u64, Slot>>,
    done_cv: Condvar,
    /// Depth cutoff hint (monotone non-increasing, written by the
    /// commit thread). A stale read over-materializes, never corrupts.
    cutoff: AtomicU32,
    seen: SeenTable,
    /// First worker panic message; the commit thread re-raises it.
    panic_msg: Mutex<Option<String>>,
    panicked: AtomicBool,
    steals: AtomicU64,
    seen_hits: AtomicU64,
    scored: AtomicU64,
    materialized: AtomicU64,
}

impl Shared {
    /// Blocks until a work item is available (own deque first, then
    /// stealing) or shutdown. `None` means shut down.
    fn find_work(&self, me: usize) -> Option<WorkItem> {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            let version = *self.signal.lock().expect("signal lock");
            if let Some(item) = self.deques[me].lock().expect("deque lock").pop_front() {
                return Some(item);
            }
            for k in 1..self.deques.len() {
                let victim = (me + k) % self.deques.len();
                if let Some(item) = self.deques[victim].lock().expect("deque lock").pop_back() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(item);
                }
            }
            let guard = self.signal.lock().expect("signal lock");
            if *guard == version && !self.shutdown.load(Ordering::Acquire) {
                // No submit happened since the scan; sleep until one
                // does.
                drop(self.work_cv.wait(guard).expect("signal wait"));
            }
        }
    }

    /// Speculatively expands one node: scores every enumerated move and
    /// materializes the children likely to survive pruning. Pure with
    /// respect to the search — all outputs are functions of the item's
    /// immutable state.
    fn process(&self, item: &WorkItem, scratch: &mut SubstScratch) -> Slot {
        if rmrls_obs::fail::trigger("core/search/worker-task").is_err() {
            return Slot::Failed;
        }
        let ctx = &self.ctx;
        let state = item.state.as_ref();
        let n = state.num_vars();
        let child_depth = item.depth + 1;
        let groups = enumerate_move_groups(state, &ctx.options, item.parent_gate);
        let mut scores: Vec<SpecScore> = Vec::new();
        let mut premat: HashMap<usize, MultiPprm> = HashMap::new();
        let mut materialized = 0u64;
        for group in &groups {
            let group_base = scores.len();
            // (enumeration index, priority) of pushable candidates, in
            // enumeration order — mirrors the serial candidate vector
            // so the same sort yields the same pruning survivors.
            let mut ranked: Vec<(usize, f64)> = Vec::new();
            for em in &group.moves {
                let idx = scores.len();
                let score = score_move(state, em.mv, scratch);
                let mut identity = None;
                if score.terms == n && score.fingerprint == ctx.identity_fp {
                    let (child, _) = apply_move(state, em.mv, scratch);
                    materialized += 1;
                    identity = Some(child.is_identity());
                }
                if identity != Some(true) {
                    if let Some(priority) = candidate_priority(
                        &ctx.options,
                        ctx.init_terms,
                        n,
                        child_depth,
                        &score,
                        em.lits,
                        em.allow_growth,
                    ) {
                        ranked.push((idx, priority));
                    }
                }
                scores.push(SpecScore { score, identity });
            }
            if let Some(keep) = ctx.options.pruning.keep() {
                ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
                ranked.truncate(keep);
            }
            for (idx, _) in ranked {
                // Perf-only filters: skip children the commit thread
                // would reject anyway (stale reads err toward building
                // too much, never too little admitted).
                if child_depth >= self.cutoff.load(Ordering::Relaxed) {
                    continue;
                }
                let fp = scores[idx].score.fingerprint;
                if ctx.options.dedup_states && self.seen.contains(fp) {
                    self.seen_hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let (child, _) = apply_move(state, group.moves[idx - group_base].mv, scratch);
                materialized += 1;
                premat.insert(idx, child);
            }
        }
        self.scored
            .fetch_add(scores.len() as u64, Ordering::Relaxed);
        self.materialized.fetch_add(materialized, Ordering::Relaxed);
        Slot::Done(SpecReplay {
            scores,
            premat,
            cursor: 0,
        })
    }

    /// Publishes a finished item and wakes the commit thread.
    fn complete(&self, seq: u64, slot: Slot) {
        let mut slots = self.slots.lock().expect("slots lock");
        match slots.get(&seq) {
            Some(Slot::Discarded) => {
                // The commit thread dropped this node; free the entry.
                slots.remove(&seq);
            }
            _ => {
                slots.insert(seq, slot);
            }
        }
        drop(slots);
        self.done_cv.notify_all();
    }
}

fn worker_main(shared: Arc<Shared>, me: usize) {
    let mut scratch = SubstScratch::new();
    while let Some(item) = shared.find_work(me) {
        let seq = item.seq;
        match panic::catch_unwind(AssertUnwindSafe(|| shared.process(&item, &mut scratch))) {
            Ok(slot) => shared.complete(seq, slot),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                let mut slot = shared.panic_msg.lock().expect("panic lock");
                slot.get_or_insert(msg);
                drop(slot);
                shared.panicked.store(true, Ordering::Release);
                shared.complete(seq, Slot::Failed);
                // This worker dies; the commit thread re-raises the
                // panic the next time it waits for a result.
                break;
            }
        }
    }
}

/// Handle to the worker pool, owned by the commit thread's search.
pub(crate) struct ParEngine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Round-robin submission target.
    next: usize,
}

impl ParEngine {
    /// Spawns `threads` workers. The commit thread is not counted: it
    /// coordinates and replays, and spends most of its time either
    /// admitting children or blocked waiting for the next result.
    pub(crate) fn new(
        threads: usize,
        options: &SynthesisOptions,
        init_terms: usize,
        identity_fp: u64,
        initial_cutoff: u32,
    ) -> ParEngine {
        let shared = Arc::new(Shared {
            ctx: WorkerCtx {
                options: options.clone(),
                init_terms,
                identity_fp,
            },
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            signal: Mutex::new(0),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            slots: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            cutoff: AtomicU32::new(initial_cutoff),
            seen: SeenTable::new(),
            panic_msg: Mutex::new(None),
            panicked: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            seen_hits: AtomicU64::new(0),
            scored: AtomicU64::new(0),
            materialized: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rmrls-search-{me}"))
                    .spawn(move || worker_main(shared, me))
                    .expect("spawn search worker")
            })
            .collect();
        ParEngine {
            shared,
            handles,
            next: 0,
        }
    }

    /// Submits a frontier entry for speculative expansion. Idempotent
    /// per `seq`: a re-submission after a trim re-admitted the entry is
    /// a no-op while its first result is still tracked.
    pub(crate) fn submit(&mut self, item: WorkItem) {
        {
            let mut slots = self.shared.slots.lock().expect("slots lock");
            if slots.contains_key(&item.seq) {
                return;
            }
            slots.insert(item.seq, Slot::Queued);
        }
        self.shared.deques[self.next]
            .lock()
            .expect("deque lock")
            .push_back(item);
        self.next = (self.next + 1) % self.shared.deques.len();
        let mut version = self.shared.signal.lock().expect("signal lock");
        *version += 1;
        drop(version);
        self.shared.work_cv.notify_all();
    }

    /// Blocks until the result for `seq` is available and takes it.
    /// `None` means no usable result (never submitted, failpoint error,
    /// or discarded): the caller expands the node live. Re-raises a
    /// worker panic on the commit thread.
    pub(crate) fn take(&self, seq: u64) -> Option<SpecReplay> {
        let mut slots = self.shared.slots.lock().expect("slots lock");
        loop {
            if self.shared.panicked.load(Ordering::Acquire) {
                drop(slots);
                let msg = self
                    .shared
                    .panic_msg
                    .lock()
                    .expect("panic lock")
                    .clone()
                    .unwrap_or_default();
                panic!("search worker panicked: {msg}");
            }
            match slots.get(&seq) {
                Some(Slot::Queued) => {
                    slots = self.shared.done_cv.wait(slots).expect("done wait");
                }
                Some(Slot::Done(_)) => match slots.remove(&seq) {
                    Some(Slot::Done(replay)) => return Some(replay),
                    _ => unreachable!("slot changed under the lock"),
                },
                Some(Slot::Failed) | Some(Slot::Discarded) => {
                    slots.remove(&seq);
                    return None;
                }
                None => return None,
            }
        }
    }

    /// Marks a dropped entry's speculation as never-to-be-consumed.
    pub(crate) fn discard(&self, seq: u64) {
        let mut slots = self.shared.slots.lock().expect("slots lock");
        match slots.get(&seq) {
            Some(Slot::Queued) => {
                slots.insert(seq, Slot::Discarded);
            }
            Some(_) => {
                slots.remove(&seq);
            }
            None => {}
        }
    }

    /// Publishes a tightened depth cutoff to the workers.
    pub(crate) fn set_cutoff(&self, cutoff: u32) {
        self.shared.cutoff.store(cutoff, Ordering::Relaxed);
    }

    /// Mirrors an authoritative visited-table insert into the shared
    /// hint table.
    pub(crate) fn seen_insert(&self, fp: u64) {
        self.shared.seen.insert(fp);
    }

    /// Snapshot of the scheduling-dependent totals.
    pub(crate) fn totals(&self) -> ParTotals {
        ParTotals {
            steals: self.shared.steals.load(Ordering::Relaxed),
            contention_retries: self.shared.seen.contention_retries.load(Ordering::Relaxed),
            seen_hits: self.shared.seen_hits.load(Ordering::Relaxed),
            scored: self.shared.scored.load(Ordering::Relaxed),
            materialized: self.shared.materialized.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ParEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut version = self.shared.signal.lock().expect("signal lock");
            *version += 1;
        }
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that panicked already delivered its message via
            // the panic slot; a second panic from join would abort the
            // unwind in progress.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seen_table_inserts_and_finds() {
        let t = SeenTable::new();
        assert!(!t.contains(42));
        t.insert(42);
        assert!(t.contains(42));
        t.insert(42);
        assert!(t.contains(42), "idempotent insert");
        assert!(!t.contains(0), "zero is never stored");
        t.insert(0);
        assert!(!t.contains(0));
    }

    #[test]
    fn seen_table_survives_probe_collisions() {
        let t = SeenTable::new();
        // Fingerprints landing in the same probe window must coexist.
        let base = 7u64;
        for i in 0..SEEN_PROBES as u64 {
            let fp = base + i * (SEEN_SLOTS as u64) * 0x1_0000_0000;
            // All map near the same slot index modulo the mask.
            t.insert(fp | (base << 32));
        }
        for i in 0..SEEN_PROBES as u64 {
            let fp = base + i * (SEEN_SLOTS as u64) * 0x1_0000_0000;
            assert!(t.contains(fp | (base << 32)), "probe {i}");
        }
    }

    #[test]
    fn engine_round_trips_a_work_item() {
        let spec = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
        let options = SynthesisOptions::new();
        let init_terms = spec.total_terms();
        let identity_fp = MultiPprm::identity(3).fingerprint();
        let mut engine = ParEngine::new(2, &options, init_terms, identity_fp, u32::MAX);
        engine.submit(WorkItem {
            seq: 1,
            depth: 0,
            parent_gate: None,
            state: Arc::new(spec.clone()),
        });
        let replay = engine.take(1).expect("result");
        let groups = enumerate_move_groups(&spec, &options, None);
        let total_moves: usize = groups.iter().map(|g| g.moves.len()).sum();
        assert_eq!(replay.scores.len(), total_moves);
        // Scores must match a fresh serial computation move for move.
        let mut scratch = SubstScratch::new();
        let mut idx = 0;
        for group in &groups {
            for em in &group.moves {
                let expected = score_move(&spec, em.mv, &mut scratch);
                assert_eq!(replay.scores[idx].score, expected, "move {idx}");
                idx += 1;
            }
        }
        // Pre-materialized children agree with their predicted scores.
        for (i, child) in &replay.premat {
            assert_eq!(child.fingerprint(), replay.scores[*i].score.fingerprint);
            assert_eq!(child.total_terms(), replay.scores[*i].score.terms);
        }
        assert_eq!(engine.totals().scored, total_moves as u64);
    }

    #[test]
    fn discard_before_completion_frees_the_slot() {
        let spec = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
        let options = SynthesisOptions::new();
        let mut engine = ParEngine::new(
            1,
            &options,
            spec.total_terms(),
            MultiPprm::identity(3).fingerprint(),
            u32::MAX,
        );
        engine.submit(WorkItem {
            seq: 9,
            depth: 0,
            parent_gate: None,
            state: Arc::new(spec),
        });
        engine.discard(9);
        assert!(engine.take(9).is_none(), "discarded result is not served");
    }

    #[test]
    fn take_without_submit_is_a_live_expand() {
        let options = SynthesisOptions::new();
        let engine = ParEngine::new(
            1,
            &options,
            4,
            MultiPprm::identity(2).fingerprint(),
            u32::MAX,
        );
        assert!(engine.take(77).is_none());
    }
}
