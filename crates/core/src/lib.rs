//! RMRLS — the Reed–Muller reversible logic synthesizer.
//!
//! Implements the synthesis algorithm of Gupta, Agrawal and Jha (*An
//! Algorithm for Synthesis of Reversible Logic Circuits*; conference
//! version: *Synthesis of Reversible Logic*, DATE 2004): a best-first
//! search over PPRM substitutions `v := v ⊕ factor`, each of which is a
//! generalized Toffoli gate, until the expansion becomes the identity.
//!
//! - [`synthesize`] / [`synthesize_permutation`] — the algorithm of
//!   Fig. 4 with the §IV-D additional substitutions and §IV-E heuristics;
//! - [`SynthesisOptions`] — priority [`Weights`] (Eq. 4), [`Pruning`]
//!   strategies (exhaustive / top-k / greedy), time & node budgets, gate
//!   caps, restarts;
//! - [`Synthesis`] / [`SearchStats`] / [`TraceEvent`] — results,
//!   counters and an optional search trace reproducing the paper's
//!   Fig. 5/6 walk.
//!
//! # Quickstart
//!
//! ```
//! use rmrls_core::{synthesize_permutation, SynthesisOptions};
//! use rmrls_spec::Permutation;
//!
//! let spec = Permutation::from_vec(vec![1, 0, 7, 2, 3, 4, 5, 6])?;
//! let result = synthesize_permutation(&spec, &SynthesisOptions::new())?;
//! assert_eq!(result.circuit.gate_count(), 3); // Fig. 3(d)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// NoSolutionError deliberately carries the full SearchStats (counters,
// restart spans, stop reason) so failed runs are as reportable as
// successful ones; synthesis calls are far too coarse for the extra
// bytes on the error path to matter.
#![allow(clippy::result_large_err)]

mod budget;
mod embedding_search;
mod observe;
mod options;
mod parallel;
mod portfolio;
mod report;
mod search;
mod stats;

pub use budget::{Budget, CancelToken};
pub use embedding_search::{
    synthesize_embedded, synthesize_embedded_with_observer, EmbeddedSynthesis, EmbeddingAttempt,
    COMPLETION_PORTFOLIO,
};
pub use observe::{Observer, Progress, ProgressFn};
pub use options::{FredkinMode, PriorityMode, Pruning, SynthesisOptions, Weights};
pub use portfolio::{
    default_portfolio, synthesize_portfolio, synthesize_portfolio_attributed, ConfigOutcome,
    PortfolioRun,
};
pub use report::{options_to_json, run_report, stats_to_json, RUN_REPORT_SCHEMA_VERSION};
pub use search::{
    synthesize, synthesize_bidirectional, synthesize_permutation, synthesize_with_observer,
    NoSolutionError, Synthesis,
};
pub use stats::{RestartSpan, SearchStats, StopReason, TraceEvent};

// Re-exported so callers holding a `SearchStats` or building an
// `Observer` don't need a direct `rmrls_obs` dependency for the types
// that appear in this crate's API.
pub use rmrls_obs::{FlightRecorder, PhaseProfile};
