//! Search statistics and tracing.

use std::fmt;
use std::time::Duration;

use rmrls_circuit::Gate;
use rmrls_obs::PhaseProfile;

/// Why the search loop stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// The priority queue drained — the (pruned) search space is
    /// exhausted.
    QueueExhausted,
    /// The wall-clock limit expired (the paper's `Timer`).
    TimeLimit,
    /// The node-expansion budget was consumed.
    NodeBudget,
    /// A solution was found and `stop_at_first` was set.
    FirstSolution,
    /// The [`Budget`](crate::Budget) deadline passed (absolute-instant
    /// variant of [`TimeLimit`](StopReason::TimeLimit), used by the
    /// batch engine so queueing delay counts against the job).
    DeadlineExpired,
    /// A [`CancelToken`](crate::CancelToken) requested a cooperative
    /// stop.
    Cancelled,
    /// A [`Budget`](crate::Budget) memory cap (`max_live_terms` /
    /// `max_queue_bytes`) was breached twice: once past the degraded
    /// queue-shedding response, the search stops instead of risking an
    /// OOM abort.
    MemoryExceeded,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::QueueExhausted => "queue exhausted",
            StopReason::TimeLimit => "time limit",
            StopReason::NodeBudget => "node budget",
            StopReason::FirstSolution => "first solution",
            StopReason::DeadlineExpired => "deadline expired",
            StopReason::Cancelled => "cancelled",
            StopReason::MemoryExceeded => "memory exceeded",
        };
        f.write_str(s)
    }
}

/// Timing of one search segment between restarts (§IV-E).
///
/// Segment 0 runs from the start of the search to the first restart;
/// the final segment ends when the search stops. The spans let a run
/// report show *where* the node budget went across the restart
/// schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartSpan {
    /// 0-based segment index (0 = before any restart).
    pub ordinal: u64,
    /// Nodes expanded during this segment.
    pub nodes_expanded: u64,
    /// Wall-clock duration of the segment.
    pub elapsed: Duration,
}

/// Counters describing a synthesis run.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Nodes popped from the priority queue and expanded.
    pub nodes_expanded: u64,
    /// Children generated (before pruning).
    pub children_generated: u64,
    /// Candidate substitutions scored by the allocation-free counting
    /// kernel (`count_substitute`), one per candidate considered during
    /// expansion.
    pub candidates_scored: u64,
    /// Candidates actually materialized into a child `MultiPprm` —
    /// survivors of pruning, dedup, and the depth cutoff, plus
    /// solution confirmations. The gap between this and
    /// `candidates_scored` is work the two-phase kernel avoided.
    pub candidates_materialized: u64,
    /// Children pushed onto the queue (after pruning).
    pub children_pushed: u64,
    /// Restarts performed (§IV-E).
    pub restarts: u64,
    /// Solutions encountered (improving or not).
    pub solutions_seen: u64,
    /// Children discarded because their depth reached the current
    /// cutoff (best solution so far, or the gate cap).
    pub depth_pruned: u64,
    /// Children skipped because an equal-or-shallower queue entry with
    /// the same state fingerprint was already seen (`dedup_states`).
    pub dedup_hits: u64,
    /// Fingerprint collisions *detected* during dedup: a candidate
    /// whose 64-bit fingerprint matched a recorded state of a
    /// different term count (so the states are provably distinct). Such
    /// candidates are kept, not pruned. Collisions between states with
    /// equal term counts remain undetectable; this counter is a lower
    /// bound on the true collision count.
    pub dedup_collisions: u64,
    /// Beam trims performed when the queue exceeded `max_queue`.
    pub beam_trims: u64,
    /// Queue entries discarded by beam trims.
    pub beam_dropped: u64,
    /// Largest queue size observed.
    pub queue_peak: u64,
    /// Emergency queue sheds performed after a memory-budget breach
    /// (degraded mode; see `Budget::max_live_terms`). Nonzero means the
    /// search ran degraded: it kept only the better half of its
    /// frontier at least once.
    pub memory_sheds: u64,
    /// Queue entries discarded by memory sheds.
    pub memory_shed_dropped: u64,
    /// Largest total of live PPRM terms across queued states.
    pub live_terms_peak: u64,
    /// Largest approximate heap footprint (bytes) of queued states.
    pub queue_bytes_peak: u64,
    /// Wall-clock duration of the search.
    pub elapsed: Duration,
    /// Why the loop stopped (`None` only before the search ran).
    pub stop_reason: Option<StopReason>,
    /// Search trace, if requested.
    pub trace: Vec<TraceEvent>,
    /// Trace events dropped after the trace buffer filled. Nonzero
    /// means `trace` is a truncated prefix of the run.
    pub trace_dropped: u64,
    /// Per-segment timing between restarts (always recorded; one entry
    /// per segment, so its length is `restarts + 1` after a completed
    /// search).
    pub restart_spans: Vec<RestartSpan>,
    /// Per-phase timing table (scoring / materialize / dedup plus a
    /// derived `other` entry), populated only when
    /// [`SynthesisOptions::profile`](crate::SynthesisOptions::profile)
    /// is set; empty otherwise. Its phases sum to `elapsed`.
    pub profile: PhaseProfile,
    /// Effective thread count of the run (`1` = serial path). All the
    /// counters above are *replay-derived* and byte-identical for any
    /// thread count; the `spec_*`/`steals`/`shard_*`/`dup_races_lost`/
    /// `shared_seen_hits` counters below describe speculative work and
    /// depend on scheduling (they are all zero on serial runs).
    pub threads_used: u64,
    /// Expansions whose scores were replayed from a speculative worker
    /// result instead of being recomputed on the commit thread.
    pub spec_hits: u64,
    /// Parallel-mode expansions the commit thread had to compute live —
    /// the popped node out-prioritized every in-flight speculation.
    pub spec_misses: u64,
    /// Work items a worker took from another worker's deque.
    pub steals: u64,
    /// CAS retries lost in the sharded shared seen-fingerprint table
    /// (another thread claimed the slot first).
    pub shard_contention_retries: u64,
    /// Speculatively materialized children that commit-side dedup then
    /// rejected: the worker lost the race against the authoritative
    /// visited table.
    pub dup_races_lost: u64,
    /// Worker materializations skipped because the shared seen table
    /// already hinted the child fingerprint as visited.
    pub shared_seen_hits: u64,
    /// Candidates scored by workers whose results were never consumed
    /// (the node was trimmed, shed, or superseded before its turn).
    pub spec_scored_wasted: u64,
    /// Speculative child states built by workers and then discarded
    /// unused.
    pub spec_materialized_wasted: u64,
}

impl SearchStats {
    /// Whether the recorded `trace` is incomplete because the buffer
    /// cap was reached.
    pub fn trace_truncated(&self) -> bool {
        self.trace_dropped > 0
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes expanded, {} children ({} scored, {} materialized, {} pushed), \
             {} restarts, {} solutions, queue peak {}, {} dedup hits, {:?}",
            self.nodes_expanded,
            self.children_generated,
            self.candidates_scored,
            self.candidates_materialized,
            self.children_pushed,
            self.restarts,
            self.solutions_seen,
            self.queue_peak,
            self.dedup_hits,
            self.elapsed
        )?;
        if self.trace_truncated() {
            write!(
                f,
                " [trace truncated: {} events dropped]",
                self.trace_dropped
            )?;
        }
        Ok(())
    }
}

/// One step of the recorded search walk (for reproducing the Fig. 5/6
/// narrative).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A node was popped and expanded.
    Expand {
        /// Depth of the expanded node.
        depth: u32,
        /// Total PPRM terms of its state.
        terms: usize,
    },
    /// A child survived pruning and was pushed.
    Push {
        /// The substitution, as the Toffoli gate it would emit.
        gate: Gate,
        /// Depth of the child.
        depth: u32,
        /// Terms eliminated by the substitution.
        eliminated: i64,
        /// Its Eq. 4 priority.
        priority: f64,
    },
    /// A solution leaf was reached.
    Solution {
        /// Gate count of the solution.
        depth: u32,
        /// Whether it improved on the best seen so far.
        improved: bool,
    },
    /// The search restarted from the first level (§IV-E).
    Restart {
        /// 1-based restart ordinal.
        ordinal: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Expand { depth, terms } => {
                write!(f, "expand depth={depth} terms={terms}")
            }
            TraceEvent::Push {
                gate,
                depth,
                eliminated,
                priority,
            } => write!(
                f,
                "push {gate} depth={depth} elim={eliminated} priority={priority:.3}"
            ),
            TraceEvent::Solution { depth, improved } => {
                write!(
                    f,
                    "solution depth={depth}{}",
                    if *improved { " (new best)" } else { "" }
                )
            }
            TraceEvent::Restart { ordinal } => write!(f, "restart #{ordinal}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_display_mentions_counters() {
        let s = SearchStats {
            nodes_expanded: 7,
            restarts: 1,
            ..SearchStats::default()
        };
        let text = s.to_string();
        assert!(
            text.contains("7 nodes") && text.contains("1 restarts"),
            "{text}"
        );
        assert!(
            !text.contains("truncated"),
            "no truncation note when nothing was dropped: {text}"
        );
    }

    #[test]
    fn stats_display_flags_trace_truncation() {
        let s = SearchStats {
            trace_dropped: 42,
            ..SearchStats::default()
        };
        assert!(s.trace_truncated());
        let text = s.to_string();
        assert!(
            text.contains("trace truncated") && text.contains("42"),
            "{text}"
        );
    }

    #[test]
    fn trace_event_display() {
        let e = TraceEvent::Push {
            gate: Gate::not(0),
            depth: 1,
            eliminated: 2,
            priority: 1.5,
        };
        assert_eq!(e.to_string(), "push TOF1(a) depth=1 elim=2 priority=1.500");
        assert_eq!(
            TraceEvent::Solution {
                depth: 3,
                improved: true
            }
            .to_string(),
            "solution depth=3 (new best)"
        );
    }

    #[test]
    fn stop_reason_display() {
        assert_eq!(StopReason::TimeLimit.to_string(), "time limit");
        assert_eq!(StopReason::MemoryExceeded.to_string(), "memory exceeded");
    }
}
