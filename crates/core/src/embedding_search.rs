//! Synthesis of irreversible specifications with don't-care search.
//!
//! The paper's §VI lists "dynamically assign don't-care values during
//! synthesis" as future work (its tool pre-assigns them). This module
//! approximates that with a portfolio: the irreversible table is
//! embedded under several deterministic completion strategies, each
//! embedding is synthesized, and the best circuit wins. Different
//! completions can differ by several gates, so the portfolio recovers
//! much of the benefit of dynamic assignment at a bounded cost.

use rmrls_spec::{embed_with_strategy, CompletionStrategy, Embedding, TruthTable};

use crate::{synthesize, NoSolutionError, Synthesis, SynthesisOptions};

/// The winning embedding and its synthesis.
#[derive(Clone, Debug)]
pub struct EmbeddedSynthesis {
    /// The synthesized circuit and stats.
    pub synthesis: Synthesis,
    /// The embedding it realizes.
    pub embedding: Embedding,
    /// The completion strategy that produced it.
    pub strategy: CompletionStrategy,
}

/// The portfolio tried by [`synthesize_embedded`], in order.
pub const COMPLETION_PORTFOLIO: [CompletionStrategy; 4] = [
    CompletionStrategy::HammingGreedy,
    CompletionStrategy::HammingGreedyHighTies,
    CompletionStrategy::Ascending,
    CompletionStrategy::Descending,
];

/// Embeds an irreversible truth table under every portfolio strategy,
/// synthesizes each embedding (splitting any time budget evenly), and
/// returns the smallest circuit.
///
/// # Errors
///
/// Returns the last [`NoSolutionError`] if every embedding fails to
/// synthesize within its budget.
///
/// ```
/// use rmrls_core::{synthesize_embedded, SynthesisOptions};
/// use rmrls_spec::TruthTable;
///
/// // The paper's augmented full adder (Fig. 2a).
/// let adder = TruthTable::from_fn(3, 3, |x| {
///     let ones = x.count_ones() as u64;
///     (ones >> 1) << 2 | (ones & 1) << 1 | ((x ^ (x >> 1)) & 1)
/// });
/// let opts = SynthesisOptions::new().with_max_nodes(20_000);
/// let best = synthesize_embedded(&adder, &opts)?;
/// assert!(best.synthesis.circuit.gate_count() <= 6);
/// # Ok::<(), rmrls_core::NoSolutionError>(())
/// ```
pub fn synthesize_embedded(
    table: &TruthTable,
    options: &SynthesisOptions,
) -> Result<EmbeddedSynthesis, NoSolutionError> {
    let mut per_try = options.clone();
    if let Some(t) = options.time_limit {
        per_try.time_limit = Some(t / COMPLETION_PORTFOLIO.len() as u32);
    }
    let mut best: Option<EmbeddedSynthesis> = None;
    let mut last_err: Option<NoSolutionError> = None;

    for strategy in COMPLETION_PORTFOLIO {
        let embedding = embed_with_strategy(table, None, strategy);
        match synthesize(&embedding.permutation.to_multi_pprm(), &per_try) {
            Ok(synthesis) => {
                let better = best
                    .as_ref()
                    .map(|b| synthesis.circuit.gate_count() < b.synthesis.circuit.gate_count())
                    .unwrap_or(true);
                if better {
                    best = Some(EmbeddedSynthesis {
                        synthesis,
                        embedding,
                        strategy,
                    });
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    best.ok_or_else(|| last_err.expect("no successes implies at least one failure"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder() -> TruthTable {
        TruthTable::from_fn(3, 3, |x| {
            let ones = x.count_ones() as u64;
            (ones >> 1) << 2 | (ones & 1) << 1 | ((x ^ (x >> 1)) & 1)
        })
    }

    #[test]
    fn portfolio_beats_or_matches_single_embedding() {
        let opts = SynthesisOptions::new().with_max_nodes(20_000);
        let single = synthesize(
            &rmrls_spec::embed(&adder()).permutation.to_multi_pprm(),
            &opts,
        )
        .expect("adder synthesizes");
        let best = synthesize_embedded(&adder(), &opts).expect("portfolio succeeds");
        assert!(
            best.synthesis.circuit.gate_count() <= single.circuit.gate_count(),
            "portfolio must not be worse"
        );
    }

    #[test]
    fn winning_circuit_realizes_real_outputs() {
        let table = adder();
        let best = synthesize_embedded(&table, &SynthesisOptions::new().with_max_nodes(20_000))
            .expect("succeeds");
        let e = &best.embedding;
        for x in 0..8u64 {
            let out = best.synthesis.circuit.apply(x);
            assert_eq!(e.real_output(out), table.row(x), "row {x}");
        }
    }

    #[test]
    fn rd32_portfolio_synthesis() {
        let table = TruthTable::from_fn(3, 2, |x| u64::from(x.count_ones()));
        let best = synthesize_embedded(&table, &SynthesisOptions::new().with_max_nodes(20_000))
            .expect("rd32");
        assert!(
            best.synthesis.circuit.gate_count() <= 8,
            "rd32 portfolio took {} gates",
            best.synthesis.circuit.gate_count()
        );
        for x in 0..8u64 {
            let out = best.synthesis.circuit.apply(x);
            assert_eq!(
                best.embedding.real_output(out),
                u64::from(x.count_ones()),
                "row {x}"
            );
        }
    }

    #[test]
    fn strategies_produce_distinct_embeddings() {
        let table = adder();
        let a = embed_with_strategy(&table, None, CompletionStrategy::HammingGreedy);
        let b = embed_with_strategy(&table, None, CompletionStrategy::Ascending);
        assert_ne!(a.permutation, b.permutation, "portfolio must have diversity");
    }
}
