//! Synthesis of irreversible specifications with don't-care search.
//!
//! The paper's §VI lists "dynamically assign don't-care values during
//! synthesis" as future work (its tool pre-assigns them). This module
//! approximates that with a portfolio: the irreversible table is
//! embedded under several deterministic completion strategies, each
//! embedding is synthesized, and the best circuit wins. Different
//! completions can differ by several gates, so the portfolio recovers
//! much of the benefit of dynamic assignment at a bounded cost.

use std::time::Duration;

use rmrls_obs::{Event, Value};
use rmrls_spec::{embed_with_strategy, CompletionStrategy, Embedding, TruthTable};

use crate::{synthesize, NoSolutionError, Observer, StopReason, Synthesis, SynthesisOptions};

/// How one completion strategy of the embedding portfolio fared.
#[derive(Clone, Copy, Debug)]
pub struct EmbeddingAttempt {
    /// The completion strategy tried.
    pub strategy: CompletionStrategy,
    /// Gate count of its circuit, if it synthesized.
    pub gates: Option<u32>,
    /// Wall-clock time its search spent.
    pub elapsed: Duration,
    /// Why its search stopped.
    pub stop_reason: Option<StopReason>,
}

/// The winning embedding and its synthesis.
#[derive(Clone, Debug)]
pub struct EmbeddedSynthesis {
    /// The synthesized circuit and stats.
    pub synthesis: Synthesis,
    /// The embedding it realizes.
    pub embedding: Embedding,
    /// The completion strategy that produced it.
    pub strategy: CompletionStrategy,
    /// Every strategy tried, in portfolio order, with its outcome —
    /// attribution for run reports.
    pub attempts: Vec<EmbeddingAttempt>,
}

/// The portfolio tried by [`synthesize_embedded`], in order.
pub const COMPLETION_PORTFOLIO: [CompletionStrategy; 4] = [
    CompletionStrategy::HammingGreedy,
    CompletionStrategy::HammingGreedyHighTies,
    CompletionStrategy::Ascending,
    CompletionStrategy::Descending,
];

/// Embeds an irreversible truth table under every portfolio strategy,
/// synthesizes each embedding (splitting any time budget evenly), and
/// returns the smallest circuit.
///
/// # Errors
///
/// Returns the last [`NoSolutionError`] if every embedding fails to
/// synthesize within its budget.
///
/// ```
/// use rmrls_core::{synthesize_embedded, SynthesisOptions};
/// use rmrls_spec::TruthTable;
///
/// // The paper's augmented full adder (Fig. 2a).
/// let adder = TruthTable::from_fn(3, 3, |x| {
///     let ones = x.count_ones() as u64;
///     (ones >> 1) << 2 | (ones & 1) << 1 | ((x ^ (x >> 1)) & 1)
/// });
/// let opts = SynthesisOptions::new().with_max_nodes(20_000);
/// let best = synthesize_embedded(&adder, &opts)?;
/// assert!(best.synthesis.circuit.gate_count() <= 6);
/// # Ok::<(), rmrls_core::NoSolutionError>(())
/// ```
pub fn synthesize_embedded(
    table: &TruthTable,
    options: &SynthesisOptions,
) -> Result<EmbeddedSynthesis, NoSolutionError> {
    synthesize_embedded_with_observer(table, options, &mut Observer::null())
}

/// [`synthesize_embedded`] with per-strategy attribution streamed
/// through `obs` as `embedding_attempt` events; the returned
/// [`EmbeddedSynthesis::attempts`] records the same outcomes.
///
/// # Errors
///
/// Same as [`synthesize_embedded`].
pub fn synthesize_embedded_with_observer(
    table: &TruthTable,
    options: &SynthesisOptions,
    obs: &mut Observer,
) -> Result<EmbeddedSynthesis, NoSolutionError> {
    let mut per_try = options.clone();
    if let Some(t) = options.time_limit {
        per_try.time_limit = Some(t / COMPLETION_PORTFOLIO.len() as u32);
    }
    let mut best: Option<EmbeddedSynthesis> = None;
    let mut last_err: Option<NoSolutionError> = None;
    let mut attempts: Vec<EmbeddingAttempt> = Vec::with_capacity(COMPLETION_PORTFOLIO.len());

    for strategy in COMPLETION_PORTFOLIO {
        let embedding = embed_with_strategy(table, None, strategy);
        let result = synthesize(&embedding.permutation.to_multi_pprm(), &per_try);
        let attempt = match &result {
            Ok(s) => EmbeddingAttempt {
                strategy,
                gates: Some(s.circuit.gate_count() as u32),
                elapsed: s.stats.elapsed,
                stop_reason: s.stats.stop_reason,
            },
            Err(e) => EmbeddingAttempt {
                strategy,
                gates: None,
                elapsed: e.stats.elapsed,
                stop_reason: e.stats.stop_reason,
            },
        };
        obs.emit(Event::new(
            "embedding_attempt",
            vec![
                ("strategy", Value::Str(format!("{strategy:?}"))),
                ("solved", Value::from(attempt.gates.is_some())),
                (
                    "gates",
                    match attempt.gates {
                        Some(g) => Value::from(g),
                        None => Value::Int(-1),
                    },
                ),
                ("seconds", Value::from(attempt.elapsed.as_secs_f64())),
            ],
        ));
        attempts.push(attempt);
        match result {
            Ok(synthesis) => {
                let better = best
                    .as_ref()
                    .map(|b| synthesis.circuit.gate_count() < b.synthesis.circuit.gate_count())
                    .unwrap_or(true);
                if better {
                    best = Some(EmbeddedSynthesis {
                        synthesis,
                        embedding,
                        strategy,
                        attempts: Vec::new(),
                    });
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    match best {
        Some(mut winner) => {
            winner.attempts = attempts;
            Ok(winner)
        }
        None => Err(last_err.expect("no successes implies at least one failure")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder() -> TruthTable {
        TruthTable::from_fn(3, 3, |x| {
            let ones = x.count_ones() as u64;
            (ones >> 1) << 2 | (ones & 1) << 1 | ((x ^ (x >> 1)) & 1)
        })
    }

    #[test]
    fn portfolio_beats_or_matches_single_embedding() {
        let opts = SynthesisOptions::new().with_max_nodes(20_000);
        let single = synthesize(
            &rmrls_spec::embed(&adder()).permutation.to_multi_pprm(),
            &opts,
        )
        .expect("adder synthesizes");
        let best = synthesize_embedded(&adder(), &opts).expect("portfolio succeeds");
        assert!(
            best.synthesis.circuit.gate_count() <= single.circuit.gate_count(),
            "portfolio must not be worse"
        );
    }

    #[test]
    fn winning_circuit_realizes_real_outputs() {
        let table = adder();
        let best = synthesize_embedded(&table, &SynthesisOptions::new().with_max_nodes(20_000))
            .expect("succeeds");
        let e = &best.embedding;
        for x in 0..8u64 {
            let out = best.synthesis.circuit.apply(x);
            assert_eq!(e.real_output(out), table.row(x), "row {x}");
        }
    }

    #[test]
    fn rd32_portfolio_synthesis() {
        let table = TruthTable::from_fn(3, 2, |x| u64::from(x.count_ones()));
        let best = synthesize_embedded(&table, &SynthesisOptions::new().with_max_nodes(20_000))
            .expect("rd32");
        assert!(
            best.synthesis.circuit.gate_count() <= 8,
            "rd32 portfolio took {} gates",
            best.synthesis.circuit.gate_count()
        );
        for x in 0..8u64 {
            let out = best.synthesis.circuit.apply(x);
            assert_eq!(
                best.embedding.real_output(out),
                u64::from(x.count_ones()),
                "row {x}"
            );
        }
    }

    #[test]
    fn attempts_cover_the_whole_portfolio() {
        let best = synthesize_embedded(&adder(), &SynthesisOptions::new().with_max_nodes(20_000))
            .expect("succeeds");
        assert_eq!(best.attempts.len(), COMPLETION_PORTFOLIO.len());
        let winning = best
            .attempts
            .iter()
            .find(|a| a.strategy == best.strategy)
            .expect("winner is among the attempts");
        assert_eq!(
            winning.gates,
            Some(best.synthesis.circuit.gate_count() as u32)
        );
        // No attempted strategy beat the declared winner.
        for a in &best.attempts {
            if let Some(g) = a.gates {
                assert!(g >= best.synthesis.circuit.gate_count() as u32);
            }
        }
    }

    #[test]
    fn strategies_produce_distinct_embeddings() {
        let table = adder();
        let a = embed_with_strategy(&table, None, CompletionStrategy::HammingGreedy);
        let b = embed_with_strategy(&table, None, CompletionStrategy::Ascending);
        assert_ne!(
            a.permutation, b.permutation,
            "portfolio must have diversity"
        );
    }
}
