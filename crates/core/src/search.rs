//! The RMRLS priority-queue search (Fig. 4 of the paper, plus the
//! additional substitutions of §IV-D and the heuristics of §IV-E).
//!
//! # How substitutions become gates
//!
//! The search reduces the multi-output PPRM state to the identity through
//! substitutions `v_i := v_i ⊕ factor`. Each substitution is the Toffoli
//! gate `TOF(vars(factor); v_i)`. If `F` is the state before a
//! substitution and `F'` after, then `F = F' ∘ G` (substituting into the
//! expansion composes the gate on the *input* side), so when `F'` finally
//! reaches the identity, `F = G_k ∘ … ∘ G_1` — the substitutions in
//! root→leaf order are exactly the gate cascade from inputs to outputs.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::error::Error;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use rmrls_circuit::{Circuit, Gate};
use rmrls_obs::{Profiler, SpanTimer, TraceKind};
use rmrls_pprm::{MultiPprm, SubstCount, SubstScratch, Term};
use rmrls_spec::Permutation;

use crate::observe::{Observer, Progress};
use crate::parallel::{ParEngine, SpecReplay, WorkItem};
use crate::stats::RestartSpan;
use crate::{SearchStats, StopReason, SynthesisOptions, TraceEvent};

/// Cap on recorded trace events.
const TRACE_CAP: usize = 100_000;

/// How often (in popped nodes) the wall clock is consulted.
const TIME_CHECK_INTERVAL: u64 = 256;

/// Priority penalty applied to substitutions that do not strictly
/// decrease the term count. Large enough that every improving candidate
/// outranks every non-improving one: the search behaves exactly like the
/// paper's monotone algorithm until improving moves run out, then falls
/// back to the escape moves its completeness argument requires.
const NON_IMPROVING_PENALTY: f64 = 1.0e3;

/// A successful synthesis: the circuit plus run statistics.
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// The synthesized Toffoli cascade (inputs left, outputs right).
    pub circuit: Circuit,
    /// Counters and optional trace of the search.
    pub stats: SearchStats,
}

/// The search terminated without finding any solution (possible only
/// with pruning heuristics, budgets, or gate caps — the basic algorithm
/// is complete, §IV-F).
#[derive(Debug)]
pub struct NoSolutionError {
    /// Statistics of the failed run.
    pub stats: SearchStats,
}

impl fmt::Display for NoSolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no solution found ({}; stopped by {})",
            self.stats,
            self.stats
                .stop_reason
                .map(|r| r.to_string())
                .unwrap_or_else(|| "unknown".into())
        )
    }
}

impl Error for NoSolutionError {}

/// One link of the root→leaf substitution chain. Only the gate is stored
/// at interior nodes (the paper's memory optimization, §IV-C: PPRM
/// expansions live only in queued leaves).
struct PathNode {
    parent: Option<Rc<PathNode>>,
    gate: Gate,
}

fn path_to_gates(leaf: &Option<Rc<PathNode>>) -> Vec<Gate> {
    let mut gates = Vec::new();
    let mut cursor = leaf.as_ref().map(Rc::clone);
    while let Some(node) = cursor {
        gates.push(node.gate);
        cursor = node.parent.as_ref().map(Rc::clone);
    }
    gates.reverse();
    gates
}

/// A queued search-tree leaf. The state is shared (`Arc`) so restart
/// reseeds and speculative work items reference it without copying; the
/// expansions themselves are immutable once built.
struct QueueEntry {
    priority: f64,
    /// FIFO tiebreak: earlier-generated entries win among equal
    /// priorities, keeping runs deterministic. Unique per pushed entry,
    /// so `(priority, seq)` is a total order and `seq` alone keys the
    /// speculative result for this exact state.
    seq: u64,
    depth: u32,
    state: Arc<MultiPprm>,
    path: Option<Rc<PathNode>>,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The substitution a candidate would apply — enough to re-derive the
/// child state from the parent during materialization.
#[derive(Clone, Copy)]
pub(crate) enum Move {
    /// `v := v ⊕ factor` (a Toffoli gate).
    Toffoli { var: usize, factor: Term },
    /// Swap `a`/`b` under `control` (a Fredkin gate, §VI).
    Fredkin { a: usize, b: usize, control: Term },
}

/// One enumerated substitution with everything derived from the move
/// alone (gate, literal count, growth exemption).
pub(crate) struct EnumMove {
    pub(crate) mv: Move,
    pub(crate) gate: Gate,
    pub(crate) lits: u32,
    pub(crate) allow_growth: bool,
}

/// The candidate moves of one pruning group: one group per target
/// variable (substitution types 1–3), then one per Fredkin pair.
pub(crate) struct MoveGroup {
    pub(crate) moves: Vec<EnumMove>,
}

/// Enumerates every candidate substitution of a node in the exact order
/// the serial expansion considers them. This is a pure function of
/// `(state, options, parent_gate)` and is shared by the commit-thread
/// expansion and the speculative workers, so the two can never disagree
/// about which move the i-th score belongs to — the speculative replay
/// (see [`crate::parallel`]) is keyed by this enumeration index.
pub(crate) fn enumerate_move_groups(
    state: &MultiPprm,
    options: &SynthesisOptions,
    parent_gate: Option<Gate>,
) -> Vec<MoveGroup> {
    let n = state.num_vars();
    let mut groups = Vec::with_capacity(n);
    for var in 0..n {
        let expansion = state.output(var);
        // Type 1 requires the bare target term `v_i` in its own output
        // expansion (the paper's basic algorithm does not list
        // c-targeted substitutions for Fig. 1's `c_out = b ⊕ ab ⊕ ac`
        // at the root — only §IV-D type 2 adds them).
        if !options.additional_substitutions && !expansion.contains(Term::var(var)) {
            continue;
        }
        let terms = expansion.terms();
        let mut moves = Vec::with_capacity(terms.len() + 1);
        let mut saw_constant_one = false;
        for &factor in terms {
            if factor.contains_var(var) {
                continue;
            }
            if factor.is_one() {
                saw_constant_one = true;
            }
            moves.push(EnumMove {
                mv: Move::Toffoli { var, factor },
                gate: Gate::toffoli_mask(factor.mask(), var),
                lits: factor.literal_count(),
                allow_growth: false,
            });
        }
        // Type 3 (§IV-D): v := v ⊕ 1 even when 1 is absent, with the
        // exception that the term count may grow. Skipped if it would
        // immediately undo the parent's NOT on the same wire (which
        // state dedup would also catch).
        if options.additional_substitutions
            && !saw_constant_one
            && parent_gate != Some(Gate::not(var))
        {
            moves.push(EnumMove {
                mv: Move::Toffoli {
                    var,
                    factor: Term::ONE,
                },
                gate: Gate::toffoli_mask(Term::ONE.mask(), var),
                lits: Term::ONE.literal_count(),
                allow_growth: true,
            });
        }
        groups.push(MoveGroup { moves });
    }

    // §VI future work: Fredkin substitutions — swap a variable pair
    // under a control monomial drawn from the pair's expansions.
    if options.fredkin_substitutions != crate::FredkinMode::Off {
        for a in 0..n {
            for b in (a + 1)..n {
                let mut controls: Vec<Term> = vec![Term::ONE];
                if options.fredkin_substitutions == crate::FredkinMode::Full {
                    for (va, vb) in [(a, b), (b, a)] {
                        for &t in state.output(va).terms() {
                            if t.contains_var(vb) {
                                controls.push(t.without_var(va).without_var(vb));
                            }
                        }
                    }
                    // Sort+dedup instead of an O(k²) `contains` scan
                    // per insertion; `Term::ONE` (mask 0) sorts first,
                    // so the unconditional swap stays the lead
                    // candidate.
                    controls.sort_unstable();
                    controls.dedup();
                }
                let moves = controls
                    .into_iter()
                    .map(|control| EnumMove {
                        mv: Move::Fredkin { a, b, control },
                        gate: Gate::fredkin_mask(control.mask(), a, b),
                        lits: control.literal_count() + 1,
                        allow_growth: false,
                    })
                    .collect();
                groups.push(MoveGroup { moves });
            }
        }
    }
    groups
}

/// Applies a move to a state, producing the child expansion. Shared by
/// the commit thread's materialization and the speculative workers.
pub(crate) fn apply_move(
    state: &MultiPprm,
    mv: Move,
    scratch: &mut SubstScratch,
) -> (MultiPprm, i64) {
    match mv {
        Move::Toffoli { var, factor } => state.substitute_with(var, factor, scratch),
        Move::Fredkin { a, b, control } => state.substitute_fredkin_with(a, b, control, scratch),
    }
}

/// Scores a move without materializing it. Shared like [`apply_move`].
pub(crate) fn score_move(state: &MultiPprm, mv: Move, scratch: &mut SubstScratch) -> SubstCount {
    match mv {
        Move::Toffoli { var, factor } => state.count_substitute(var, factor, scratch),
        Move::Fredkin { a, b, control } => state.count_substitute_fredkin(a, b, control, scratch),
    }
}

/// The queue priority a scored candidate would receive, or `None` when
/// the monotone filter discards it. A pure function shared by the
/// commit thread and the workers (identical expression order, so the
/// floating-point result is bit-identical on both sides).
pub(crate) fn candidate_priority(
    options: &SynthesisOptions,
    init_terms: usize,
    num_vars: usize,
    child_depth: u32,
    score: &SubstCount,
    lits: u32,
    allow_growth: bool,
) -> Option<f64> {
    let cumulative = init_terms as i64 - score.terms as i64;
    let improving = score.eliminated > 0 || allow_growth;
    if !improving && options.monotone_only {
        return None;
    }
    let mut priority = match options.priority_mode {
        crate::PriorityMode::CumulativeRate => {
            options.weights.priority(child_depth, cumulative, lits)
        }
        crate::PriorityMode::StepElim => {
            options
                .weights
                .priority(child_depth, score.eliminated, lits)
        }
        crate::PriorityMode::FewestTerms => {
            -(score.terms as f64) + 0.01 * f64::from(child_depth) - 0.05 * f64::from(lits)
        }
        crate::PriorityMode::AStar => {
            let n = num_vars as f64;
            let h = (score.terms as f64 - n).max(0.0) * options.astar_weight;
            -(f64::from(child_depth) + h) - 0.05 * f64::from(lits)
        }
    };
    if !improving {
        priority -= NON_IMPROVING_PENALTY;
    }
    Some(priority)
}

/// A candidate substitution produced while expanding a node.
///
/// Candidates are *scored, not materialized*: they carry the move plus
/// the counting kernel's predictions (term count, fingerprint,
/// elimination) and only survivors of pruning/dedup/depth-cutoff are
/// turned into a real child `MultiPprm` (see [`Search::push_child`]).
struct Candidate {
    gate: Gate,
    mv: Move,
    /// Enumeration index of the move within its node (the speculative
    /// premat key — an index, not the fingerprint, so a fingerprint
    /// collision between two candidates of one node can never swap in
    /// the wrong pre-built state).
    idx: usize,
    eliminated: i64,
    priority: f64,
    /// Predicted total PPRM terms of the child (exact; reused by dedup
    /// collision detection and the observer).
    terms: usize,
    /// Predicted state fingerprint of the child (exact; consulted by
    /// dedup *before* any allocation happens).
    fp: u64,
}

/// Commit-thread bookkeeping for the speculative worker pool
/// (`threads > 1` only). `pending` holds frontier entries whose scoring
/// has been submitted to the workers, kept sorted best-first by the
/// serial comparator; the union `heap ∪ pending` is exactly the serial
/// queue, so popping `max(heap.peek(), pending[0])` reproduces the
/// serial pop sequence.
struct ParCtl {
    engine: ParEngine,
    pending: Vec<QueueEntry>,
    /// Speculation window: how many of the best frontier entries to
    /// keep in flight with the workers.
    lookahead: usize,
    /// Worker-produced scores consumed by replay (for waste accounting).
    scores_consumed: u64,
    /// Worker-built child states actually used (premat + identity
    /// confirmations).
    materialized_consumed: u64,
}

struct Search<'a> {
    options: &'a SynthesisOptions,
    stats: SearchStats,
    start: Instant,
    obs: &'a mut Observer,
    seq: u64,
    /// Terms in the root expansion (`initTerms`); Eq. 4's `elim` is the
    /// cumulative count of terms eliminated relative to this, so
    /// `elim/depth` is the paper's "number of terms eliminated per
    /// stage".
    init_terms: usize,
    /// Best solution: (gate count, quantum cost, path).
    best: Option<(u32, u64, Option<Rc<PathNode>>)>,
    queue: BinaryHeap<QueueEntry>,
    /// State fingerprint ([`MultiPprm::fingerprint`], the XOR-combined
    /// per-term hash maintained incrementally by the substitution
    /// kernels — not SipHash) → (shallowest queued depth, term count of
    /// the recorded state). Re-queuing is allowed when a strictly
    /// shallower path is found, so deduplication never hides a shorter
    /// circuit. The term count guards against 64-bit fingerprint
    /// collisions: a matching fingerprint with a *different* term count
    /// is provably a distinct state and is never pruned. The XOR
    /// combiner makes collisions GF(2)-linear (any term-membership
    /// multiset whose hashes XOR to zero collides) rather than
    /// avalanche-random, but each per-term hash is a full 64-bit mixed
    /// value, so the practical bound stays ≈ k²/2⁶⁵ for k distinct
    /// states (see `MultiPprm::fingerprint` and
    /// `SynthesisOptions::dedup_states` for the residual risk).
    visited: HashMap<u64, (u32, u32)>,
    steps_since_restart: u64,
    /// Total PPRM terms across queued states, maintained incrementally
    /// (push adds, pop subtracts, queue rebuilds recount) for the
    /// memory-budget poll — O(1) per check.
    live_terms: u64,
    /// Approximate heap bytes of queued states
    /// ([`MultiPprm::approx_heap_bytes`]), maintained like `live_terms`.
    queue_bytes: u64,
    /// Timer for the current restart segment.
    segment_timer: SpanTimer,
    /// `nodes_expanded` at the start of the current segment.
    segment_start_nodes: u64,
    /// Reusable buffer for the substitution kernels: after warm-up,
    /// scoring and materialization allocate nothing for the generated
    /// term stream.
    scratch: SubstScratch,
    /// `MultiPprm::identity(n).fingerprint()`, precomputed so the
    /// solution check runs against scores alone (a candidate whose
    /// predicted fingerprint differs cannot be the identity — the
    /// fingerprint is a deterministic function of the state).
    identity_fp: u64,
    /// Per-phase timing (scoring / materialize / dedup), enabled by
    /// `options.profile`; disabled it costs one branch per span site.
    profiler: Profiler,
    /// Speculative worker pool (`None` on the serial path, i.e. when
    /// the resolved thread count is 1).
    par: Option<ParCtl>,
}

impl<'a> Search<'a> {
    fn new(
        options: &'a SynthesisOptions,
        init_terms: usize,
        identity_fp: u64,
        obs: &'a mut Observer,
    ) -> Self {
        Search {
            options,
            stats: SearchStats::default(),
            start: Instant::now(),
            obs,
            seq: 0,
            init_terms,
            best: None,
            queue: BinaryHeap::new(),
            visited: HashMap::new(),
            steps_since_restart: 0,
            live_terms: 0,
            queue_bytes: 0,
            segment_timer: SpanTimer::start(),
            segment_start_nodes: 0,
            scratch: SubstScratch::new(),
            identity_fp,
            profiler: if options.profile {
                Profiler::enabled()
            } else {
                Profiler::disabled()
            },
            par: None,
        }
    }

    fn trace(&mut self, event: TraceEvent) {
        if self.options.trace {
            if self.stats.trace.len() < TRACE_CAP {
                self.stats.trace.push(event);
            } else {
                // Never truncate silently: account for every event the
                // buffer could not keep (satellite of the obs layer; the
                // streaming sink has no cap at all).
                self.stats.trace_dropped += 1;
            }
        }
    }

    /// Closes the current restart segment, recording its span.
    fn end_segment(&mut self) -> RestartSpan {
        let span = RestartSpan {
            ordinal: self.stats.restart_spans.len() as u64,
            nodes_expanded: self.stats.nodes_expanded - self.segment_start_nodes,
            elapsed: self.segment_timer.lap(),
        };
        self.stats.restart_spans.push(span);
        self.segment_start_nodes = self.stats.nodes_expanded;
        span
    }

    /// The logical frontier size: the heap plus any entries currently
    /// out with the speculative workers. This is exactly the serial
    /// queue length at the same program point, so every length-driven
    /// decision (beam trim, observer gauges, peaks) stays
    /// thread-count-independent.
    fn frontier_len(&self) -> usize {
        self.queue.len() + self.par.as_ref().map_or(0, |p| p.pending.len())
    }

    /// Drains the whole logical frontier (heap ∪ pending) into a vector
    /// for a bulk rebuild, telling the worker pool nothing — callers
    /// re-push survivors and discard the rest via
    /// [`Search::discard_speculation`].
    fn drain_frontier(&mut self) -> Vec<QueueEntry> {
        let mut entries: Vec<QueueEntry> = std::mem::take(&mut self.queue).into_vec();
        if let Some(par) = self.par.as_mut() {
            entries.append(&mut par.pending);
        }
        entries
    }

    /// Tells the worker pool the speculative results for these entries
    /// will never be consumed (the entries were trimmed, shed, or
    /// dropped by a restart).
    fn discard_speculation(&self, dropped: &[QueueEntry]) {
        if let Some(par) = self.par.as_ref() {
            for e in dropped {
                par.engine.discard(e.seq);
            }
        }
    }

    /// Recomputes the memory accounting from the queue contents. Called
    /// after every bulk queue rebuild (beam trim, memory shed, restart
    /// reseed) where incremental bookkeeping would be error-prone.
    fn recount_memory(&mut self) {
        let (mut terms, mut bytes) = (0u64, 0u64);
        for e in self.queue.iter() {
            terms += e.state.total_terms() as u64;
            bytes += e.state.approx_heap_bytes() as u64;
        }
        if let Some(par) = self.par.as_ref() {
            for e in &par.pending {
                terms += e.state.total_terms() as u64;
                bytes += e.state.approx_heap_bytes() as u64;
            }
        }
        self.live_terms = terms;
        self.queue_bytes = bytes;
        self.stats.live_terms_peak = self.stats.live_terms_peak.max(terms);
        self.stats.queue_bytes_peak = self.stats.queue_bytes_peak.max(bytes);
    }

    /// Emergency response to a memory-budget breach: keep the better
    /// half of the queue (at least one entry, so the search can always
    /// make progress toward a solution), drop the rest, and recount.
    /// Mirrors the beam trim of `push_child` but is driven by the
    /// [`Budget`](crate::Budget) memory caps rather than `max_queue`.
    fn shed_for_memory(&mut self) {
        let mut entries = self.drain_frontier();
        entries.sort_by(|a, b| b.cmp(a));
        let keep = (entries.len() / 2).max(1);
        let dropped = entries.len().saturating_sub(keep);
        self.discard_speculation(&entries[keep.min(entries.len())..]);
        entries.truncate(keep);
        self.stats.memory_sheds += 1;
        self.stats.memory_shed_dropped += dropped as u64;
        self.queue = BinaryHeap::from(entries);
        self.recount_memory();
        if let Some(r) = self.obs.recorder() {
            r.record(TraceKind::MemoryShed {
                dropped_entries: dropped as u64,
                live_terms: self.live_terms,
            });
            r.anomaly("memory_shed", "core/search/shed");
        }
    }

    /// Pops the next node to expand — the maximum of the heap and the
    /// speculation window under the exact serial comparator — together
    /// with its speculative result, if one was produced in time.
    ///
    /// In parallel mode this first tops up the speculation window: the
    /// best `lookahead` frontier entries are handed to the workers,
    /// which pre-score (and pre-materialize) their candidate moves
    /// while the commit thread is busy with earlier nodes. Because
    /// `heap ∪ pending` is always exactly the serial queue and the
    /// winner is chosen by the serial comparator, the sequence of
    /// popped nodes is byte-identical to the serial search; the only
    /// difference is whether the pop arrives with a replayable result
    /// (`spec_hits`) or has to be expanded live (`spec_misses`, e.g. a
    /// freshly pushed child that outranks everything in flight).
    fn pop_next(&mut self) -> Option<(QueueEntry, Option<SpecReplay>)> {
        if self.par.is_none() {
            return self.queue.pop().map(|e| (e, None));
        }
        loop {
            let par = self.par.as_mut().expect("checked above");
            if par.pending.len() >= par.lookahead {
                break;
            }
            let Some(e) = self.queue.pop() else { break };
            par.engine.submit(WorkItem {
                seq: e.seq,
                depth: e.depth,
                parent_gate: e.path.as_ref().map(|p| p.gate),
                state: Arc::clone(&e.state),
            });
            let pos = par
                .pending
                .partition_point(|p| p.cmp(&e) == Ordering::Greater);
            par.pending.insert(pos, e);
        }
        let par = self.par.as_mut().expect("checked above");
        let from_heap = match (self.queue.peek(), par.pending.first()) {
            (Some(h), Some(p)) => h.cmp(p) == Ordering::Greater,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if from_heap {
            self.stats.spec_misses += 1;
            return self.queue.pop().map(|e| (e, None));
        }
        let entry = par.pending.remove(0);
        match par.engine.take(entry.seq) {
            Some(replay) => {
                self.stats.spec_hits += 1;
                Some((entry, Some(replay)))
            }
            None => {
                self.stats.spec_misses += 1;
                Some((entry, None))
            }
        }
    }

    /// Whether a configured memory cap is currently exceeded.
    fn memory_breached(&self) -> bool {
        self.options
            .budget
            .memory_breached(self.live_terms, self.queue_bytes)
    }

    /// Depth bound children must stay under to remain useful.
    fn depth_cutoff(&self) -> u32 {
        let slack = u32::from(self.options.tie_break_cost);
        let from_best = self
            .best
            .as_ref()
            .map(|(d, _, _)| (d + slack).saturating_sub(1))
            .unwrap_or(u32::MAX);
        let from_cap = self.options.max_gates.map(|g| g as u32).unwrap_or(u32::MAX);
        from_best.min(from_cap)
    }

    /// Expands a node: enumerates candidate substitutions per target
    /// variable (types 1–3), records solutions, prunes per §IV-E, and
    /// pushes survivors. Returns `true` if a first solution was found
    /// and `stop_at_first` is set.
    ///
    /// With a `replay` (speculative worker result for this exact node)
    /// the scores come from the replay instead of the counting kernels
    /// and surviving children reuse the pre-materialized states; the
    /// control flow — including the exact stop point after a
    /// `stop_at_first` solution — is identical either way, so every
    /// deterministic counter advances identically.
    fn expand(&mut self, entry: &QueueEntry, mut replay: Option<SpecReplay>) -> bool {
        let state = &entry.state;
        let child_depth = entry.depth + 1;
        let parent_gate = entry.path.as_ref().map(|p| p.gate);

        self.trace(TraceEvent::Expand {
            depth: entry.depth,
            terms: state.total_terms(),
        });
        if self.obs.is_active() {
            self.obs.on_expand(entry.depth, state.total_terms());
        }

        let t_enum = self.profiler.start();
        let groups = enumerate_move_groups(state, self.options, parent_gate);
        self.profiler.stop("scoring", t_enum);

        let mut cursor = 0usize;
        for group in &groups {
            let mut candidates: Vec<Candidate> = Vec::new();
            let mut solved = false;
            let t_score = self.profiler.start();
            for em in &group.moves {
                let idx = cursor;
                cursor += 1;
                if self.consider_enum(entry, em, idx, child_depth, &mut candidates, &mut replay) {
                    solved = true;
                    break;
                }
            }
            self.profiler.stop("scoring", t_score);
            if solved {
                return true;
            }
            if let Some(keep) = self.options.pruning.keep() {
                candidates.sort_by(|a, b| b.priority.total_cmp(&a.priority));
                candidates.truncate(keep);
            }
            for c in candidates {
                self.push_child(entry, c, child_depth, &mut replay);
            }
        }
        false
    }

    /// Materializes a scored move into the real child state. The only
    /// place (besides the root and the workers) where a `MultiPprm` is
    /// built during the search.
    fn materialize(&mut self, entry: &QueueEntry, mv: Move) -> (MultiPprm, i64) {
        self.stats.candidates_materialized += 1;
        let t = self.profiler.start();
        let out = apply_move(&entry.state, mv, &mut self.scratch);
        self.profiler.stop("materialize", t);
        out
    }

    /// Evaluates one enumerated substitution: obtains the score (from
    /// the replay when available, else the counting kernel) and runs the
    /// shared candidate evaluation. Returns `true` when a solution was
    /// found and the caller should stop immediately (`stop_at_first`).
    fn consider_enum(
        &mut self,
        entry: &QueueEntry,
        em: &EnumMove,
        idx: usize,
        child_depth: u32,
        candidates: &mut Vec<Candidate>,
        replay: &mut Option<SpecReplay>,
    ) -> bool {
        let (score, spec_identity) = match replay.as_mut().and_then(|r| r.next_score()) {
            Some(s) => {
                if let Some(par) = self.par.as_mut() {
                    par.scores_consumed += 1;
                }
                (s.score, s.identity)
            }
            None => (score_move(&entry.state, em.mv, &mut self.scratch), None),
        };
        self.consider_scored(
            entry,
            em,
            idx,
            score,
            child_depth,
            spec_identity,
            candidates,
        )
    }

    /// Shared candidate evaluation over the *score* alone: solution
    /// check, priority, pruning eligibility. No child state exists yet —
    /// a candidate is only materialized if it turns out to be a solution
    /// (confirmed against the real state, so a fingerprint collision can
    /// never fabricate one) or later survives pruning in `push_child`.
    #[allow(clippy::too_many_arguments)]
    fn consider_scored(
        &mut self,
        entry: &QueueEntry,
        em: &EnumMove,
        idx: usize,
        score: SubstCount,
        child_depth: u32,
        spec_identity: Option<bool>,
        candidates: &mut Vec<Candidate>,
    ) -> bool {
        self.stats.children_generated += 1;
        self.stats.candidates_scored += 1;
        let EnumMove {
            mv,
            gate,
            lits,
            allow_growth,
        } = *em;
        let SubstCount {
            terms,
            eliminated,
            fingerprint,
        } = score;

        // Identity test on the score: the fingerprint is deterministic,
        // so a true identity always matches (no false negatives); a
        // match is confirmed on the materialized state before being
        // recorded as a solution. A speculative worker runs the same
        // confirmation ahead of time (`spec_identity`), in which case
        // only the materialization *counter* advances here.
        let n = entry.state.num_vars();
        if terms == n && fingerprint == self.identity_fp && {
            match spec_identity {
                Some(confirmed) => {
                    self.stats.candidates_materialized += 1;
                    if let Some(par) = self.par.as_mut() {
                        par.materialized_consumed += 1;
                    }
                    confirmed
                }
                None => {
                    let (new_state, _) = self.materialize(entry, mv);
                    new_state.is_identity()
                }
            }
        } {
            self.stats.solutions_seen += 1;
            let path = Some(Rc::new(PathNode {
                parent: entry.path.as_ref().map(Rc::clone),
                gate,
            }));
            let cost = if self.options.tie_break_cost {
                let width = entry.state.num_vars();
                path_to_gates(&path)
                    .iter()
                    .map(|&g| rmrls_circuit::gate_cost(g, width))
                    .sum()
            } else {
                0
            };
            let improved = self
                .best
                .as_ref()
                .map(|&(d, c, _)| {
                    child_depth < d || (self.options.tie_break_cost && child_depth == d && cost < c)
                })
                .unwrap_or(true);
            let within_cap = self
                .options
                .max_gates
                .map(|g| child_depth as usize <= g)
                .unwrap_or(true);
            self.trace(TraceEvent::Solution {
                depth: child_depth,
                improved: improved && within_cap,
            });
            if self.obs.is_active() {
                self.obs.on_solution(child_depth, improved && within_cap);
            }
            if improved && within_cap {
                self.best = Some((child_depth, cost, path));
                self.steps_since_restart = 0;
                // Publish the tightened bound to the workers so they
                // stop pre-materializing children past the new cutoff
                // (a perf hint; the authoritative cutoff check stays on
                // the commit thread).
                let cutoff = self.depth_cutoff();
                if let Some(par) = self.par.as_ref() {
                    par.engine.set_cutoff(cutoff);
                }
                if self.options.stop_at_first {
                    self.stats.stop_reason = Some(StopReason::FirstSolution);
                    return true;
                }
            }
            return false;
        }

        if let Some(priority) = candidate_priority(
            self.options,
            self.init_terms,
            n,
            child_depth,
            &score,
            lits,
            allow_growth,
        ) {
            candidates.push(Candidate {
                gate,
                mv,
                idx,
                eliminated,
                priority,
                terms,
                fp: fingerprint,
            });
        }
        false
    }

    /// Admits one pruning survivor: depth cutoff and dedup run first,
    /// against the candidate's *predicted* term count and fingerprint,
    /// and only then is the child state materialized and queued — a
    /// rejected candidate never allocates.
    fn push_child(
        &mut self,
        entry: &QueueEntry,
        candidate: Candidate,
        child_depth: u32,
        replay: &mut Option<SpecReplay>,
    ) {
        let Candidate {
            gate,
            mv,
            idx,
            eliminated,
            priority,
            terms,
            fp,
        } = candidate;
        if child_depth >= self.depth_cutoff() {
            self.stats.depth_pruned += 1;
            return;
        }
        if self.options.dedup_states {
            let t_dedup = self.profiler.start();
            let terms32 = terms as u32;
            let duplicate = match self.visited.get(&fp) {
                Some(&(_, seen_terms)) if seen_terms != terms32 => {
                    // Same fingerprint, different term count: provably a
                    // 64-bit hash collision between distinct states. Keep
                    // the candidate (never prune on a collision) and
                    // record the newcomer.
                    self.stats.dedup_collisions += 1;
                    self.note_visited(fp, child_depth, terms32);
                    false
                }
                Some(&(seen_depth, _)) if seen_depth <= child_depth => {
                    self.stats.dedup_hits += 1;
                    true
                }
                _ => {
                    self.note_visited(fp, child_depth, terms32);
                    false
                }
            };
            self.profiler.stop("dedup", t_dedup);
            if duplicate {
                // A worker may have pre-built this child before the
                // commit thread recorded the state as visited: the
                // speculation lost the dedup race and the work is
                // discarded.
                if replay
                    .as_mut()
                    .is_some_and(|r| r.take_premat(idx).is_some())
                {
                    self.stats.dup_races_lost += 1;
                }
                return;
            }
        }
        let state = match replay.as_mut().and_then(|r| r.take_premat(idx)) {
            Some(premat) => {
                // The worker already built this child; only the counter
                // advances (the serial path would materialize here).
                self.stats.candidates_materialized += 1;
                if let Some(par) = self.par.as_mut() {
                    par.materialized_consumed += 1;
                }
                debug_assert_eq!(premat.total_terms(), terms, "premat term mismatch");
                debug_assert_eq!(premat.fingerprint(), fp, "premat fp mismatch");
                premat
            }
            None => {
                let (state, mat_elim) = self.materialize(entry, mv);
                debug_assert_eq!(mat_elim, eliminated, "score/materialize elim mismatch");
                debug_assert_eq!(
                    state.total_terms(),
                    terms,
                    "score/materialize term mismatch"
                );
                debug_assert_eq!(state.fingerprint(), fp, "score/materialize fp mismatch");
                state
            }
        };
        self.trace(TraceEvent::Push {
            gate,
            depth: child_depth,
            eliminated,
            priority,
        });
        self.stats.children_pushed += 1;
        self.seq += 1;
        self.live_terms += state.total_terms() as u64;
        self.queue_bytes += state.approx_heap_bytes() as u64;
        self.stats.live_terms_peak = self.stats.live_terms_peak.max(self.live_terms);
        self.stats.queue_bytes_peak = self.stats.queue_bytes_peak.max(self.queue_bytes);
        self.queue.push(QueueEntry {
            priority,
            seq: self.seq,
            depth: child_depth,
            state: Arc::new(state),
            path: Some(Rc::new(PathNode {
                parent: entry.path.as_ref().map(Rc::clone),
                gate,
            })),
        });
        if self.frontier_len() as u64 > self.stats.queue_peak {
            self.stats.queue_peak = self.frontier_len() as u64;
        }
        if self.obs.is_active() {
            let queue_depth = self.frontier_len();
            self.obs
                .on_push(gate, child_depth, eliminated, priority, terms, queue_depth);
        }
        if let Some(cap) = self.options.max_queue {
            if self.frontier_len() > cap {
                // Beam trim: keep the better half, drop the rest.
                let mut entries = self.drain_frontier();
                entries.sort_by(|a, b| b.cmp(a));
                let keep = cap / 2;
                let dropped = entries.len().saturating_sub(keep);
                self.discard_speculation(&entries[keep.min(entries.len())..]);
                entries.truncate(keep);
                self.stats.beam_trims += 1;
                self.stats.beam_dropped += dropped as u64;
                self.queue = BinaryHeap::from(entries);
                self.recount_memory();
            }
        }
    }

    /// Records a fingerprint in the authoritative visited table and
    /// mirrors it into the shared hint table the workers consult before
    /// pre-materializing (parallel mode only).
    fn note_visited(&mut self, fp: u64, depth: u32, terms32: u32) {
        self.visited.insert(fp, (depth, terms32));
        if let Some(par) = self.par.as_ref() {
            par.engine.seen_insert(fp);
        }
    }

    /// Polls every stop bound, in precedence order: cooperative
    /// cancellation, the absolute [`Budget`](crate::Budget) deadline,
    /// then the relative `time_limit`. One `Instant::now()` read serves
    /// both clock checks; unlimited runs never touch the clock here.
    fn budget_stop(&self) -> Option<StopReason> {
        if rmrls_obs::fail::trigger("core/search/budget-poll").is_err() {
            return Some(StopReason::Cancelled);
        }
        let budget = &self.options.budget;
        if budget.cancelled() {
            return Some(StopReason::Cancelled);
        }
        if budget.deadline.is_some() || self.options.time_limit.is_some() {
            let now = Instant::now();
            if budget.deadline_expired(now) {
                return Some(StopReason::DeadlineExpired);
            }
            if let Some(limit) = self.options.time_limit {
                if now.duration_since(self.start) >= limit {
                    return Some(StopReason::TimeLimit);
                }
            }
        }
        None
    }

    /// Writes the anomaly record for an abnormal stop (deadline expiry,
    /// cancellation, memory exhaustion) into the flight recorder, if one
    /// is attached. Normal stops (queue exhausted, first solution, node
    /// or time budget) are not anomalies.
    fn record_stop_anomaly(&self, reason: StopReason) {
        if let Some(r) = self.obs.recorder() {
            match reason {
                StopReason::DeadlineExpired => {
                    r.anomaly("deadline_expired", "core/search/budget-poll");
                }
                StopReason::Cancelled => {
                    r.anomaly("cancelled", "core/search/budget-poll");
                }
                StopReason::MemoryExceeded => {
                    r.anomaly("memory_exceeded", "core/search/memory-budget");
                }
                _ => {}
            }
        }
    }

    fn finish(mut self, num_vars: usize) -> Result<Synthesis, NoSolutionError> {
        self.stats.elapsed = self.start.elapsed();
        self.end_segment();
        self.stats.profile = self.profiler.finish(self.stats.elapsed);
        if let Some(par) = self.par.take() {
            // Shut the workers down (ParEngine::drop joins them) and
            // fold their totals into the scheduling-dependent counters.
            let totals = par.engine.totals();
            self.stats.steals = totals.steals;
            self.stats.shard_contention_retries = totals.contention_retries;
            self.stats.shared_seen_hits = totals.seen_hits;
            self.stats.spec_scored_wasted = totals.scored.saturating_sub(par.scores_consumed);
            self.stats.spec_materialized_wasted = totals
                .materialized
                .saturating_sub(par.materialized_consumed);
            drop(par.engine);
        }
        if self.obs.is_active() {
            let reason = self
                .stats
                .stop_reason
                .map(|r| r.to_string())
                .unwrap_or_else(|| "unknown".into());
            let gates = self.best.as_ref().map(|&(d, _, _)| d);
            self.obs.on_candidate_totals(
                self.stats.candidates_scored,
                self.stats.candidates_materialized,
            );
            self.obs.on_parallel_totals(&self.stats);
            self.obs
                .on_run_end(&reason, self.stats.nodes_expanded, gates);
        }
        match self.best.take() {
            Some((_, _, path)) => {
                let circuit = Circuit::from_gates(num_vars, path_to_gates(&path));
                Ok(Synthesis {
                    circuit,
                    stats: self.stats,
                })
            }
            None => Err(NoSolutionError { stats: self.stats }),
        }
    }
}

/// A cheap greedy dive from the root: repeatedly apply the locally best
/// improving substitution (max elimination, then fewest literals, then
/// lowest variable). Used to seed `bestDepth` so the best-first search
/// starts with an upper bound — linear functions (Gray codes, shifters)
/// solve outright here.
fn greedy_dive(spec: &MultiPprm, options: &SynthesisOptions) -> Option<Vec<Gate>> {
    let n = spec.num_vars();
    let cap = options
        .max_gates
        .unwrap_or(4 * spec.total_terms().max(n) + 8);
    let identity_fp = MultiPprm::identity(n).fingerprint();
    let mut scratch = SubstScratch::new();
    let mut state = spec.clone();
    let mut gates = Vec::new();
    while !state.is_identity() {
        if gates.len() >= cap {
            return None;
        }
        // Two-phase like the main search: score every factor without
        // allocating, materialize only the winner (or a solution).
        // (elim desc, literal count asc, var asc)
        let mut best: Option<(i64, u32, usize, Term)> = None;
        for var in 0..n {
            let factors: Vec<Term> = state
                .output(var)
                .terms()
                .iter()
                .copied()
                .filter(|t| !t.contains_var(var))
                .collect();
            for factor in factors {
                let score = state.count_substitute(var, factor, &mut scratch);
                if score.terms == n && score.fingerprint == identity_fp {
                    let (next, _) = state.substitute_with(var, factor, &mut scratch);
                    if next.is_identity() {
                        gates.push(Gate::toffoli_mask(factor.mask(), var));
                        return Some(gates);
                    }
                }
                if score.eliminated <= 0 {
                    continue;
                }
                let lits = factor.literal_count();
                let better = match &best {
                    None => true,
                    Some((be, bl, bv, _)) => (-score.eliminated, lits, var) < (-*be, *bl, *bv),
                };
                if better {
                    best = Some((score.eliminated, lits, var, factor));
                }
            }
        }
        match best {
            Some((_, _, var, factor)) => {
                let (next, _) = state.substitute_with(var, factor, &mut scratch);
                gates.push(Gate::toffoli_mask(factor.mask(), var));
                state = next;
            }
            None => return None,
        }
    }
    Some(gates)
}

/// Synthesizes a reversible function, given as a multi-output PPRM
/// expansion, into a cascade of generalized Toffoli gates.
///
/// This is the RMRLS algorithm: a best-first search over substitutions
/// `v := v ⊕ factor` ranked by Eq. 4, reducing the expansion to the
/// identity. The returned circuit always realizes the specification
/// exactly (verified cheaply by the caller via simulation if desired).
///
/// # Errors
///
/// Returns [`NoSolutionError`] when the search stops (time limit, node
/// budget, queue exhaustion under pruning, or gate cap) without having
/// found a solution. With [`Pruning::Exhaustive`] and no budgets the
/// basic algorithm is complete and this cannot happen (§IV-F).
///
/// # Example
///
/// ```
/// use rmrls_core::{synthesize, SynthesisOptions};
/// use rmrls_pprm::MultiPprm;
///
/// // Fig. 1 of the paper: expect the 3-gate circuit of Fig. 3(d).
/// let spec = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
/// let result = synthesize(&spec, &SynthesisOptions::new())?;
/// assert_eq!(result.circuit.gate_count(), 3);
/// assert_eq!(result.circuit.to_permutation(), vec![1, 0, 7, 2, 3, 4, 5, 6]);
/// # Ok::<(), rmrls_core::NoSolutionError>(())
/// ```
pub fn synthesize(
    spec: &MultiPprm,
    options: &SynthesisOptions,
) -> Result<Synthesis, NoSolutionError> {
    let mut obs = Observer::null();
    synthesize_with_observer(spec, options, &mut obs)
}

/// [`synthesize`] with an attached [`Observer`] that streams structured
/// events, aggregates metrics, and reports periodic progress.
///
/// With [`Observer::null()`] this is exactly [`synthesize`] (each hook
/// site costs one predictable branch). See [`Observer`] for the
/// available instrumentation; after the run, query the observer for
/// dropped events and metric snapshots.
///
/// # Errors
///
/// Same as [`synthesize`].
pub fn synthesize_with_observer(
    spec: &MultiPprm,
    options: &SynthesisOptions,
    obs: &mut Observer,
) -> Result<Synthesis, NoSolutionError> {
    let n = spec.num_vars();
    let init_terms = spec.total_terms();
    let identity_fp = MultiPprm::identity(n).fingerprint();
    let threads = options.resolved_threads();
    let mut search = Search::new(options, init_terms, identity_fp, obs);
    search.stats.threads_used = threads as u64;
    if search.obs.is_active() {
        search.obs.on_run_start(n, init_terms);
    }

    if spec.is_identity() {
        search.stats.stop_reason = Some(StopReason::QueueExhausted);
        search.best = Some((0, 0, None));
        return search.finish(n);
    }

    // A job can arrive already over budget (queued past its deadline,
    // or cancelled during shutdown): stop before doing any work rather
    // than waiting for the first in-loop poll at TIME_CHECK_INTERVAL.
    if let Some(reason) = search.budget_stop() {
        search.record_stop_anomaly(reason);
        search.stats.stop_reason = Some(reason);
        return search.finish(n);
    }

    // Seed bestDepth with a greedy dive (engineering addition, see
    // DESIGN.md): gives the search an immediate upper bound and solves
    // purely monotone (e.g. linear) functions outright.
    if options.initial_dive {
        if let Some(gates) = greedy_dive(spec, options) {
            let within_cap = options.max_gates.map(|g| gates.len() <= g).unwrap_or(true);
            if within_cap {
                search.stats.solutions_seen += 1;
                search.trace(TraceEvent::Solution {
                    depth: gates.len() as u32,
                    improved: true,
                });
                if search.obs.is_active() {
                    search.obs.on_solution(gates.len() as u32, true);
                }
                let cost = if options.tie_break_cost {
                    gates.iter().map(|&g| rmrls_circuit::gate_cost(g, n)).sum()
                } else {
                    0
                };
                let mut path: Option<Rc<PathNode>> = None;
                for &gate in &gates {
                    path = Some(Rc::new(PathNode { parent: path, gate }));
                }
                search.best = Some((gates.len() as u32, cost, path));
                if options.stop_at_first {
                    search.stats.stop_reason = Some(StopReason::FirstSolution);
                    return search.finish(n);
                }
            }
        }
    }

    // Expand the root once; remember its (pruned) children for restarts.
    let root = QueueEntry {
        priority: f64::INFINITY,
        seq: 0,
        depth: 0,
        state: Arc::new(spec.clone()),
        path: None,
    };
    search
        .visited
        .insert(spec.fingerprint(), (0, init_terms as u32));
    if search.expand(&root, None) {
        return search.finish(n);
    }
    let mut root_children: Vec<QueueEntry> = search.queue.drain().collect();
    root_children.sort_by(|a, b| b.cmp(a)); // best first
                                            // Restart schedule (§IV-E): the r-th restart reseeds the queue with
                                            // only the r-th best first-level substitution, forcing an alternative
                                            // path; once every first-level alternative has had its budget, a final
                                            // phase reseeds everything and runs without further restarts.
    let mut restarts_left = root_children.len().saturating_sub(1);
    let mut next_restart_child = 0usize;
    let reseed = |search: &mut Search, children: &[QueueEntry]| {
        // Drop in-flight speculation for the abandoned frontier; the
        // reseeded entries get re-submitted on the next pop.
        let stale = search.drain_frontier();
        search.discard_speculation(&stale);
        drop(stale);
        search.visited.clear();
        search
            .visited
            .insert(spec.fingerprint(), (0, init_terms as u32));
        for child in children {
            search.visited.insert(
                child.state.fingerprint(),
                (child.depth, child.state.total_terms() as u32),
            );
            search.queue.push(QueueEntry {
                priority: child.priority,
                seq: child.seq,
                depth: child.depth,
                state: child.state.clone(),
                path: child.path.clone(),
            });
        }
        search.recount_memory();
    };
    reseed(&mut search, &root_children);

    // Spin up the speculative worker pool. The commit thread (this one)
    // keeps running the exact serial algorithm; `threads` workers
    // pre-score the frontier for it. Workers see the visited roots via
    // the shared hint table.
    if threads > 1 {
        let engine = ParEngine::new(
            threads,
            options,
            init_terms,
            identity_fp,
            search.depth_cutoff(),
        );
        for &fp in search.visited.keys() {
            engine.seen_insert(fp);
        }
        search.par = Some(ParCtl {
            engine,
            pending: Vec::new(),
            lookahead: (threads * 4).max(8),
            scores_consumed: 0,
            materialized_consumed: 0,
        });
    }

    loop {
        // Memory budget (polled before the clock checks: it needs no
        // syscall). First breach degrades — shed the worst half of the
        // frontier and keep searching; any breach after that stops the
        // run instead of risking an OOM abort.
        if options.budget.memory_limited() && search.memory_breached() {
            if search.stats.memory_sheds == 0 {
                search.shed_for_memory();
            }
            if search.memory_breached() {
                search.record_stop_anomaly(StopReason::MemoryExceeded);
                search.stats.stop_reason = Some(StopReason::MemoryExceeded);
                break;
            }
        }
        let Some((entry, replay)) = search.pop_next() else {
            search.stats.stop_reason = Some(StopReason::QueueExhausted);
            break;
        };
        search.live_terms = search
            .live_terms
            .saturating_sub(entry.state.total_terms() as u64);
        search.queue_bytes = search
            .queue_bytes
            .saturating_sub(entry.state.approx_heap_bytes() as u64);
        if entry.depth >= search.depth_cutoff() {
            // Stale entry: pushed before the cutoff tightened.
            search.stats.depth_pruned += 1;
            continue;
        }
        search.stats.nodes_expanded += 1;
        search.steps_since_restart += 1;

        if search
            .stats
            .nodes_expanded
            .is_multiple_of(TIME_CHECK_INTERVAL)
        {
            if search.obs.is_active() {
                let progress = Progress {
                    nodes_expanded: search.stats.nodes_expanded,
                    queue_depth: search.frontier_len(),
                    best_gates: search.best.as_ref().map(|&(d, _, _)| d),
                    restarts: search.stats.restarts,
                    live_terms: search.live_terms,
                    memory_sheds: search.stats.memory_sheds,
                    elapsed: search.start.elapsed(),
                };
                search.obs.on_progress(&progress);
            }
            if let Some(reason) = search.budget_stop() {
                search.record_stop_anomaly(reason);
                search.stats.stop_reason = Some(reason);
                break;
            }
        }
        if let Some(max) = options.max_nodes {
            if search.stats.nodes_expanded > max {
                search.stats.stop_reason = Some(StopReason::NodeBudget);
                break;
            }
        }

        if search.expand(&entry, replay) {
            break; // first solution, stop_at_first
        }

        // §IV-E: abandon and restart from the first level with an
        // alternative substitution if no solution materialized.
        if let Some(threshold) = options.restart_after {
            if search.best.is_none() && search.steps_since_restart >= threshold {
                search.steps_since_restart = 0;
                if restarts_left > 0 {
                    restarts_left -= 1;
                    next_restart_child = (next_restart_child + 1) % root_children.len();
                    search.stats.restarts += 1;
                    let ordinal = search.stats.restarts;
                    search.trace(TraceEvent::Restart { ordinal });
                    let span = search.end_segment();
                    if search.obs.is_active() {
                        search
                            .obs
                            .on_restart(ordinal, span.nodes_expanded, span.elapsed);
                    }
                    reseed(
                        &mut search,
                        std::slice::from_ref(&root_children[next_restart_child]),
                    );
                } else if next_restart_child != 0 {
                    // Alternatives exhausted: final phase over the full
                    // first level, no further restarts.
                    next_restart_child = 0;
                    search.stats.restarts += 1;
                    let ordinal = search.stats.restarts;
                    search.trace(TraceEvent::Restart { ordinal });
                    let span = search.end_segment();
                    if search.obs.is_active() {
                        search
                            .obs
                            .on_restart(ordinal, span.nodes_expanded, span.elapsed);
                    }
                    reseed(&mut search, &root_children);
                }
            }
        }
    }

    search.finish(n)
}

/// Convenience wrapper: synthesizes a permutation specification.
///
/// # Errors
///
/// Same as [`synthesize`].
pub fn synthesize_permutation(
    spec: &Permutation,
    options: &SynthesisOptions,
) -> Result<Synthesis, NoSolutionError> {
    synthesize(&spec.to_multi_pprm(), options)
}

/// Bidirectional synthesis: runs the search on both the function and its
/// inverse (splitting any time budget between them) and returns the
/// smaller circuit. A cascade for `f⁻¹` reversed gate-by-gate realizes
/// `f`, since every Toffoli/Fredkin gate is self-inverse.
///
/// The PPRM expansions of `f` and `f⁻¹` can differ wildly in size, so
/// one direction is often much easier — the same observation that powers
/// the bidirectional variant of the transformation-based algorithm [7].
///
/// # Errors
///
/// Returns [`NoSolutionError`] only when *both* directions fail; the
/// returned stats are those of the failing forward run.
///
/// ```
/// use rmrls_core::{synthesize_bidirectional, SynthesisOptions};
/// use rmrls_spec::Permutation;
///
/// let spec = Permutation::from_vec(vec![1, 0, 7, 2, 3, 4, 5, 6])?;
/// let opts = SynthesisOptions::new().with_max_nodes(20_000);
/// let result = synthesize_bidirectional(&spec, &opts)?;
/// assert_eq!(result.circuit.to_permutation(), spec.as_slice());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn synthesize_bidirectional(
    spec: &Permutation,
    options: &SynthesisOptions,
) -> Result<Synthesis, NoSolutionError> {
    let mut half = options.clone();
    if let Some(t) = options.time_limit {
        half.time_limit = Some(t / 2);
    }
    // A Budget deadline is absolute and shared, but the forward run only
    // gets the first half of whatever remains, so the backward run is
    // never starved by a forward run that spends the entire budget.
    let mut forward_opts = half.clone();
    if let Some(d) = options.budget.deadline {
        let now = Instant::now();
        if d > now {
            forward_opts.budget.deadline = Some(now + (d - now) / 2);
        }
    }
    let forward = synthesize(&spec.to_multi_pprm(), &forward_opts);
    let backward = synthesize(&spec.inverse().to_multi_pprm(), &half).map(|mut r| {
        r.circuit = r.circuit.inverse();
        r
    });
    match (forward, backward) {
        (Ok(f), Ok(b)) => Ok(if b.circuit.gate_count() < f.circuit.gate_count() {
            b
        } else {
            f
        }),
        (Ok(f), Err(_)) => Ok(f),
        (Err(_), Ok(b)) => Ok(b),
        (Err(e), Err(_)) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pruning as P;

    fn fig1() -> MultiPprm {
        MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3)
    }

    fn verify(spec: &MultiPprm, result: &Synthesis) {
        assert_eq!(
            result.circuit.to_permutation(),
            spec.to_permutation(),
            "circuit does not realize the spec: {}",
            result.circuit
        );
    }

    #[test]
    fn fig1_synthesizes_in_three_gates() {
        let spec = fig1();
        let result = synthesize(&spec, &SynthesisOptions::new()).expect("solution");
        assert_eq!(result.circuit.gate_count(), 3);
        verify(&spec, &result);
    }

    #[test]
    fn identity_needs_no_gates() {
        let spec = MultiPprm::identity(4);
        let result = synthesize(&spec, &SynthesisOptions::new()).expect("solution");
        assert!(result.circuit.is_empty());
    }

    #[test]
    fn single_not_function() {
        let spec = MultiPprm::from_permutation(&[1, 0], 1);
        let result = synthesize(&spec, &SynthesisOptions::new()).expect("solution");
        assert_eq!(result.circuit.gate_count(), 1);
        verify(&spec, &result);
    }

    #[test]
    fn example1_matches_paper_gate_count() {
        // Example 1: {1,0,3,2,5,7,4,6} — the paper reports 4 gates.
        let spec = MultiPprm::from_permutation(&[1, 0, 3, 2, 5, 7, 4, 6], 3);
        let result = synthesize(&spec, &SynthesisOptions::new()).expect("solution");
        assert_eq!(result.circuit.gate_count(), 4);
        verify(&spec, &result);
    }

    #[test]
    fn example2_matches_paper_gate_count() {
        // Example 2: wraparound right shift — 3 gates.
        let spec = MultiPprm::from_permutation(&[7, 0, 1, 2, 3, 4, 5, 6], 3);
        let result = synthesize(&spec, &SynthesisOptions::new()).expect("solution");
        assert_eq!(result.circuit.gate_count(), 3);
        verify(&spec, &result);
    }

    #[test]
    fn example6_matches_paper_gate_count() {
        // Example 6: wraparound left shift — 3 gates.
        let spec = MultiPprm::from_permutation(&[1, 2, 3, 4, 5, 6, 7, 0], 3);
        let result = synthesize(&spec, &SynthesisOptions::new()).expect("solution");
        assert_eq!(result.circuit.gate_count(), 3);
        verify(&spec, &result);
    }

    #[test]
    fn all_three_variable_permutation_sample_round_trips() {
        // A deterministic sample across S_8.
        let opts = SynthesisOptions::new().with_max_nodes(20_000);
        for rank in (0..40320u128).step_by(1001) {
            let p = Permutation::from_rank(3, rank);
            let spec = p.to_multi_pprm();
            let result =
                synthesize(&spec, &opts).unwrap_or_else(|e| panic!("rank {rank} failed: {e}"));
            verify(&spec, &result);
        }
    }

    #[test]
    fn greedy_pruning_still_round_trips() {
        let opts = SynthesisOptions::new().with_pruning(P::Greedy);
        for rank in (0..40320u128).step_by(2003) {
            let p = Permutation::from_rank(3, rank);
            let spec = p.to_multi_pprm();
            if let Ok(result) = synthesize(&spec, &opts) {
                verify(&spec, &result);
            }
        }
    }

    #[test]
    fn without_additional_substitutions_fig1_still_solves() {
        let opts = SynthesisOptions::new().with_additional_substitutions(false);
        let spec = fig1();
        let result = synthesize(&spec, &opts).expect("solution");
        assert_eq!(result.circuit.gate_count(), 3);
        verify(&spec, &result);
    }

    #[test]
    fn node_budget_stops_search() {
        // Swap-like function that needs several gates; tiny budget.
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let opts = SynthesisOptions::new().with_max_nodes(1);
        match synthesize(&spec, &opts) {
            Err(e) => assert_eq!(e.stats.stop_reason, Some(StopReason::NodeBudget)),
            Ok(r) => verify(&spec, &r), // found at depth 1-2 before budget
        }
    }

    #[test]
    fn max_gates_cap_is_respected() {
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let unlimited = synthesize(&spec, &SynthesisOptions::new()).expect("solution");
        let needed = unlimited.circuit.gate_count();
        assert!(needed >= 2, "example should need multiple gates");
        let capped = SynthesisOptions::new().with_max_gates(needed - 1);
        assert!(
            synthesize(&spec, &capped).is_err(),
            "cap below optimum must fail"
        );
    }

    #[test]
    fn stop_at_first_reports_reason() {
        let spec = fig1();
        let opts = SynthesisOptions::new().with_stop_at_first(true);
        let result = synthesize(&spec, &opts).expect("solution");
        assert_eq!(result.stats.stop_reason, Some(StopReason::FirstSolution));
        verify(&spec, &result);
    }

    #[test]
    fn trace_records_solution() {
        let spec = fig1();
        let opts = SynthesisOptions::new().with_trace(true);
        let result = synthesize(&spec, &opts).expect("solution");
        assert!(result
            .stats
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Solution { .. })));
        assert!(result
            .stats
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Expand { depth: 0, .. })));
    }

    #[test]
    fn four_variable_functions_synthesize() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let opts = SynthesisOptions::new()
            .with_pruning(P::TopK(4))
            .with_max_gates(40)
            .with_stop_at_first(true)
            .with_max_nodes(200_000);
        for trial in 0..10 {
            let p = rmrls_spec::random_permutation(4, &mut rng);
            let spec = p.to_multi_pprm();
            let result = synthesize(&spec, &opts).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            verify(&spec, &result);
        }
    }

    #[test]
    fn fredkin_mode_solves_example3_in_one_gate() {
        // Example 3 IS a Fredkin gate; with §VI substitutions enabled the
        // search finds the single-gate realization.
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 3, 4, 6, 5, 7], 3);
        let opts = SynthesisOptions::new()
            .with_fredkin_substitutions(crate::FredkinMode::Full)
            .with_initial_dive(false)
            .with_max_nodes(20_000);
        let result = synthesize(&spec, &opts).expect("solution");
        assert_eq!(result.circuit.gate_count(), 1, "{}", result.circuit);
        verify(&spec, &result);
    }

    #[test]
    fn fredkin_mode_solves_plain_swap_in_one_gate() {
        // Swapping wires a and c: {0,4,2,6,1,5,3,7}.
        let spec = MultiPprm::from_permutation(&[0, 4, 2, 6, 1, 5, 3, 7], 3);
        let opts = SynthesisOptions::new()
            .with_fredkin_substitutions(crate::FredkinMode::Full)
            .with_initial_dive(false)
            .with_max_nodes(20_000);
        let result = synthesize(&spec, &opts).expect("solution");
        assert_eq!(result.circuit.gate_count(), 1, "{}", result.circuit);
        verify(&spec, &result);
    }

    #[test]
    fn fredkin_mode_round_trips_random_functions() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        let opts = SynthesisOptions::new()
            .with_fredkin_substitutions(crate::FredkinMode::Full)
            .with_max_nodes(20_000);
        for trial in 0..20 {
            let p = rmrls_spec::random_permutation(3, &mut rng);
            let spec = p.to_multi_pprm();
            let result = synthesize(&spec, &opts).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            verify(&spec, &result);
        }
    }

    #[test]
    fn fredkin_mode_never_worse_than_nct_mode() {
        // On a sample, enabling the richer library must not increase the
        // best found gate count.
        for rank in (0..40320u128).step_by(4999) {
            let spec = Permutation::from_rank(3, rank).to_multi_pprm();
            let budgeted = SynthesisOptions::new().with_max_nodes(20_000);
            let nct = synthesize(&spec, &budgeted).unwrap();
            let ncts = synthesize(
                &spec,
                &budgeted
                    .clone()
                    .with_fredkin_substitutions(crate::FredkinMode::Full),
            )
            .unwrap();
            assert!(
                ncts.circuit.gate_count() <= nct.circuit.gate_count(),
                "rank {rank}: {} vs {}",
                ncts.circuit.gate_count(),
                nct.circuit.gate_count()
            );
        }
    }

    #[test]
    fn bidirectional_round_trips_and_never_hurts() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(31);
        let opts = SynthesisOptions::new().with_max_nodes(20_000);
        for trial in 0..15 {
            let p = rmrls_spec::random_permutation(3, &mut rng);
            let bi = synthesize_bidirectional(&p, &opts)
                .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            assert_eq!(bi.circuit.to_permutation(), p.as_slice(), "trial {trial}");
            let uni = synthesize_permutation(&p, &opts).unwrap();
            assert!(
                bi.circuit.gate_count() <= uni.circuit.gate_count(),
                "trial {trial}: bidirectional must not be worse"
            );
        }
    }

    #[test]
    fn bidirectional_inverse_direction_verifies() {
        // An asymmetric function whose inverse expansion is simpler.
        let p = Permutation::from_vec(vec![1, 2, 3, 4, 5, 6, 7, 0]).unwrap();
        let r = synthesize_bidirectional(&p, &SynthesisOptions::new()).unwrap();
        assert_eq!(r.circuit.to_permutation(), p.as_slice());
    }

    #[test]
    fn cost_tie_break_never_worse() {
        // Same gate count, cost no higher than the plain run.
        let base = SynthesisOptions::new().with_max_nodes(20_000);
        let costed = base.clone().with_tie_break_cost(true);
        for rank in (0..40320u128).step_by(3001) {
            let spec = Permutation::from_rank(3, rank).to_multi_pprm();
            let plain = synthesize(&spec, &base).unwrap();
            let tied = synthesize(&spec, &costed).unwrap();
            assert!(
                tied.circuit.gate_count() <= plain.circuit.gate_count(),
                "rank {rank}: primary objective must not degrade"
            );
            if tied.circuit.gate_count() == plain.circuit.gate_count() {
                assert!(
                    tied.circuit.quantum_cost() <= plain.circuit.quantum_cost(),
                    "rank {rank}: cost {} vs {}",
                    tied.circuit.quantum_cost(),
                    plain.circuit.quantum_cost()
                );
            }
            assert_eq!(tied.circuit.to_permutation(), spec.to_permutation());
        }
    }

    #[test]
    fn permutation_wrapper_agrees() {
        let p = Permutation::from_vec(vec![1, 0, 7, 2, 3, 4, 5, 6]).unwrap();
        let a = synthesize_permutation(&p, &SynthesisOptions::new()).expect("solution");
        let b = synthesize(&p.to_multi_pprm(), &SynthesisOptions::new()).expect("solution");
        assert_eq!(a.circuit, b.circuit);
    }

    #[test]
    fn dedup_counts_hits_and_detects_no_collisions_on_small_runs() {
        // Commuting gate orders reach identical states, so dedup fires.
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let with = synthesize(&spec, &SynthesisOptions::new()).expect("solution");
        assert!(
            with.stats.dedup_hits > 0,
            "dedup should fire: {}",
            with.stats
        );
        // A detected 64-bit collision in a run this small would signal a
        // broken fingerprint, not bad luck (expected rate ≈ k²/2⁶⁵).
        assert_eq!(with.stats.dedup_collisions, 0);
        let without =
            synthesize(&spec, &SynthesisOptions::new().with_dedup_states(false)).expect("solution");
        assert_eq!(without.stats.dedup_hits, 0);
        assert_eq!(
            with.circuit.gate_count(),
            without.circuit.gate_count(),
            "dedup must not change the result"
        );
    }

    #[test]
    fn two_phase_counters_show_materialization_savings() {
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        for opts in [
            SynthesisOptions::new(),
            SynthesisOptions::new().with_pruning(P::TopK(2)),
            SynthesisOptions::new().with_pruning(P::Greedy),
        ] {
            let r = synthesize(&spec, &opts).expect("solution");
            assert!(
                r.stats.candidates_materialized < r.stats.candidates_scored,
                "materialized {} !< scored {} under {:?}",
                r.stats.candidates_materialized,
                r.stats.candidates_scored,
                opts.pruning
            );
            // Every queued child was materialized exactly once.
            assert!(r.stats.candidates_materialized >= r.stats.children_pushed);
            verify(&spec, &r);
        }
    }

    #[test]
    fn observer_streams_events_and_spans_cover_the_run() {
        use std::cell::RefCell;
        use std::rc::Rc;

        struct SharedSink(Rc<RefCell<Vec<rmrls_obs::Event>>>);
        impl rmrls_obs::EventSink for SharedSink {
            fn emit(&mut self, event: rmrls_obs::Event) {
                self.0.borrow_mut().push(event);
            }
        }

        let events = Rc::new(RefCell::new(Vec::new()));
        let mut obs = Observer::with_sink(Box::new(SharedSink(events.clone()))).with_metrics();
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let result =
            synthesize_with_observer(&spec, &SynthesisOptions::new(), &mut obs).expect("solution");
        verify(&spec, &result);

        // Per-restart spans partition the run.
        assert_eq!(
            result.stats.restart_spans.len() as u64,
            result.stats.restarts + 1
        );
        let span_nodes: u64 = result
            .stats
            .restart_spans
            .iter()
            .map(|s| s.nodes_expanded)
            .sum();
        assert_eq!(span_nodes, result.stats.nodes_expanded);
        assert!(result.stats.queue_peak > 0);

        // The event stream brackets the run and records the search walk.
        let kinds: Vec<&'static str> = events.borrow().iter().map(|e| e.kind).collect();
        assert_eq!(kinds.first(), Some(&"run_start"));
        assert_eq!(kinds.last(), Some(&"run_end"));
        for expected in ["expand", "push", "solution"] {
            assert!(kinds.contains(&expected), "missing {expected}: {kinds:?}");
        }
        assert_eq!(obs.dropped_events(), 0);

        // Metrics recorded every push.
        let snap = obs.metrics_snapshot().unwrap();
        let (_, priority) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "push_priority")
            .unwrap();
        assert_eq!(priority.count, result.stats.children_pushed);
    }

    #[test]
    fn null_observer_matches_plain_synthesize() {
        let spec = fig1();
        let plain = synthesize(&spec, &SynthesisOptions::new()).expect("solution");
        let mut obs = Observer::null();
        let observed =
            synthesize_with_observer(&spec, &SynthesisOptions::new(), &mut obs).expect("solution");
        assert_eq!(plain.circuit, observed.circuit);
        assert_eq!(plain.stats.nodes_expanded, observed.stats.nodes_expanded);
    }

    #[test]
    fn no_solution_error_displays_reason() {
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let opts = SynthesisOptions::new().with_max_gates(1);
        let err = synthesize(&spec, &opts).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("no solution"), "{text}");
    }

    #[test]
    fn tiny_memory_budget_stops_with_memory_exceeded() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // A hard 5-variable function with the dive disabled cannot solve
        // within one live term; the first breach sheds down to a single
        // entry (still over budget), the second stops the run cleanly.
        let mut rng = StdRng::seed_from_u64(3);
        let spec = rmrls_spec::random_permutation(5, &mut rng).to_multi_pprm();
        let opts = SynthesisOptions::new()
            .with_initial_dive(false)
            .with_max_live_terms(1);
        let err = synthesize(&spec, &opts).unwrap_err();
        assert_eq!(err.stats.stop_reason, Some(StopReason::MemoryExceeded));
        assert_eq!(err.stats.memory_sheds, 1, "exactly one degraded shed");
        assert!(err.stats.live_terms_peak > 1, "peak recorded above the cap");
    }

    #[test]
    fn tiny_queue_bytes_budget_also_stops() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let spec = rmrls_spec::random_permutation(5, &mut rng).to_multi_pprm();
        let opts = SynthesisOptions::new()
            .with_initial_dive(false)
            .with_max_queue_bytes(1);
        let err = synthesize(&spec, &opts).unwrap_err();
        assert_eq!(err.stats.stop_reason, Some(StopReason::MemoryExceeded));
        assert!(err.stats.queue_bytes_peak > 1);
    }

    #[test]
    fn identity_solves_under_any_memory_budget() {
        // The zero-gate answer never queues anything, so even a 1-term
        // budget cannot block it (mirrors the expired-deadline rule).
        let opts = SynthesisOptions::new().with_max_live_terms(1);
        let result = synthesize(&MultiPprm::identity(3), &opts).unwrap();
        assert!(result.circuit.is_empty());
    }

    #[test]
    fn moderate_memory_budget_degrades_but_still_solves() {
        // A budget tight enough to force at least one shed while leaving
        // room to reach a solution afterwards: degraded mode, not
        // failure. The search is deterministic, so once this cap is
        // calibrated the trajectory is fixed.
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let unlimited =
            synthesize(&spec, &SynthesisOptions::new().with_initial_dive(false)).expect("solution");
        assert!(unlimited.stats.memory_sheds == 0);
        let peak = unlimited.stats.live_terms_peak;
        assert!(peak > 4, "workload must actually queue states");

        let opts = SynthesisOptions::new()
            .with_initial_dive(false)
            .with_max_live_terms(peak * 3 / 4);
        let result = synthesize(&spec, &opts).expect("degraded run still solves");
        verify(&spec, &result);
        assert!(
            result.stats.memory_sheds > 0,
            "cap below the unlimited peak must shed: {}",
            result.stats
        );
        assert!(result.stats.memory_shed_dropped > 0);
        assert_ne!(
            result.stats.stop_reason,
            Some(StopReason::MemoryExceeded),
            "a successful degraded run keeps its normal stop reason"
        );
    }

    #[test]
    fn profile_table_partitions_the_run() {
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let result =
            synthesize(&spec, &SynthesisOptions::new().with_profile(true)).expect("solution");
        let profile = &result.stats.profile;
        assert!(!profile.is_empty());
        for phase in ["scoring", "materialize", "dedup", "other"] {
            assert!(
                profile.seconds(phase).is_some(),
                "missing phase {phase}: {profile:?}"
            );
        }
        // The derived "other" phase makes the table cover the wall time;
        // solution-confirmation materializations inside the scoring span
        // can push the sum slightly over, never under.
        let wall = result.stats.elapsed.as_secs_f64();
        assert!(
            profile.total_seconds() >= wall * 0.999,
            "phases sum to {} < wall {wall}",
            profile.total_seconds()
        );
        verify(&spec, &result);

        let plain = synthesize(&spec, &SynthesisOptions::new()).expect("solution");
        assert!(plain.stats.profile.is_empty(), "profiling is opt-in");
        assert_eq!(
            plain.circuit.gate_count(),
            result.circuit.gate_count(),
            "profiling must not change the search"
        );
    }

    #[test]
    fn recorder_captures_memory_shed_anomalies() {
        use rmrls_obs::FlightRecorder;
        // Calibrated like moderate_memory_budget_degrades_but_still_solves:
        // a cap below the unlimited peak forces at least one shed.
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let unlimited =
            synthesize(&spec, &SynthesisOptions::new().with_initial_dive(false)).expect("solution");
        let peak = unlimited.stats.live_terms_peak;

        let rec = FlightRecorder::with_default_budget();
        let mut obs = Observer::null().with_recorder(rec.clone());
        let opts = SynthesisOptions::new()
            .with_initial_dive(false)
            .with_max_live_terms(peak * 3 / 4);
        let result = synthesize_with_observer(&spec, &opts, &mut obs).expect("degraded run solves");
        assert!(result.stats.memory_sheds > 0);

        assert!(rec.has_anomaly(), "shed must register as an anomaly");
        let snap = rec.snapshot();
        assert!(snap
            .records
            .iter()
            .any(|r| matches!(r.kind, TraceKind::MemoryShed { .. })));
        assert!(snap.records.iter().any(|r| matches!(
            &r.kind,
            TraceKind::Anomaly { kind, site }
                if kind == "memory_shed" && site == "core/search/shed"
        )));
        assert!(matches!(
            &snap.records.first().unwrap().kind,
            TraceKind::PhaseEnter { phase } if phase == "search"
        ));
        assert!(matches!(
            &snap.records.last().unwrap().kind,
            TraceKind::PhaseExit { phase } if phase == "search"
        ));
    }

    #[test]
    fn recorder_names_the_budget_poll_on_cancellation() {
        use rmrls_obs::FlightRecorder;
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let token = crate::CancelToken::new();
        token.cancel();
        let rec = FlightRecorder::with_default_budget();
        let mut obs = Observer::null().with_recorder(rec.clone());
        let opts = SynthesisOptions::new().with_cancel_token(token);
        let err = synthesize_with_observer(&spec, &opts, &mut obs).unwrap_err();
        assert_eq!(err.stats.stop_reason, Some(StopReason::Cancelled));
        let snap = rec.snapshot();
        assert!(
            snap.records.iter().any(|r| matches!(
                &r.kind,
                TraceKind::Anomaly { kind, site }
                    if kind == "cancelled" && site == "core/search/budget-poll"
            )),
            "anomaly names the failing site"
        );
    }

    #[test]
    fn memory_accounting_peaks_are_consistent() {
        let spec = fig1();
        let result =
            synthesize(&spec, &SynthesisOptions::new().with_initial_dive(false)).expect("solution");
        // Bytes are always at least term-storage-sized.
        assert!(result.stats.queue_bytes_peak >= result.stats.live_terms_peak);
        assert!(result.stats.live_terms_peak > 0);
        assert_eq!(result.stats.memory_sheds, 0, "no budget, no sheds");
    }
}
