//! Synthesis configuration: the priority weights of Eq. 4 and the
//! heuristics of §IV-E.

use std::time::{Duration, Instant};

use crate::budget::{Budget, CancelToken};

/// The weights of the priority function (Eq. 4):
///
/// ```text
/// priority = α·depth + β·elim/depth − γ·literalCount
/// ```
///
/// The paper uses `α = 0.3`, `β = 0.6`, `γ = 0.1` ("after careful
/// experimentation"); these are the defaults.
///
/// ```
/// use rmrls_core::Weights;
///
/// let w = Weights::default();
/// assert_eq!((w.alpha, w.beta, w.gamma), (0.3, 0.6, 0.1));
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Weights {
    /// Depth preference (depth-first bias).
    pub alpha: f64,
    /// Term-elimination rate preference (primary objective: fewer gates).
    pub beta: f64,
    /// Literal-count penalty (secondary objective: smaller gates).
    pub gamma: f64,
}

impl Weights {
    /// The paper's weights.
    pub const PAPER: Weights = Weights {
        alpha: 0.3,
        beta: 0.6,
        gamma: 0.1,
    };

    /// Evaluates the priority of a candidate substitution (Eq. 4).
    pub fn priority(&self, depth: u32, eliminated: i64, literal_count: u32) -> f64 {
        debug_assert!(depth >= 1, "children are at depth >= 1");
        self.alpha * f64::from(depth) + self.beta * eliminated as f64 / f64::from(depth)
            - self.gamma * f64::from(literal_count)
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::PAPER
    }
}

/// Which quantity drives the priority queue — Eq. 4 and ablation
/// variants (benchmarked against each other in `rmrls-bench`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PriorityMode {
    /// Eq. 4 with `elim` read as the *cumulative* terms eliminated since
    /// the root ("terms eliminated per stage", §IV-A prose). Reproduces
    /// the paper's Table I average (6.10 gates) but scales poorly beyond
    /// four variables in this reimplementation.
    CumulativeRate,
    /// Eq. 4 with `elim` read as the single-step elimination of the last
    /// substitution (the literal pseudocode of Fig. 4 line 32).
    StepElim,
    /// Greedy descent: fewest remaining terms first, depth as tiebreak.
    FewestTerms,
    /// A*-flavored: minimize `depth + (terms − n) / 2` (each gate rarely
    /// eliminates more than two terms net). The default: it matches the
    /// Eq. 4 quality on three variables and is the only mode that
    /// reproduces the paper's reported success rates on 4–16 variables
    /// (see DESIGN.md on the Eq. 4 ambiguity).
    #[default]
    AStar,
}

/// How Fredkin substitutions participate in the search (the paper's §VI
/// future-work extension).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FredkinMode {
    /// Toffoli substitutions only — the paper's published tool.
    #[default]
    Off,
    /// Unconditional swaps only: together with the Toffoli family this
    /// is the NCTS library of [6]/[7] (on three wires).
    SwapOnly,
    /// Controlled swaps with arbitrary control monomials (generalized
    /// Fredkin gates) — the full §VI extension.
    Full,
}

/// Substitution pruning strategy (§IV-E).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Pruning {
    /// Keep every candidate — the basic algorithm of Fig. 4. Complete
    /// (always finds a solution given enough time and memory) but only
    /// practical up to about five variables.
    #[default]
    Exhaustive,
    /// Keep the best `k` candidates per target variable per expansion
    /// (the paper uses k ∈ 3..=5).
    TopK(usize),
    /// Keep only the best candidate per target variable — the paper's
    /// "greedy option", used for every large experiment.
    Greedy,
}

impl Pruning {
    /// The per-variable candidate budget, if bounded.
    pub fn keep(self) -> Option<usize> {
        match self {
            Pruning::Exhaustive => None,
            Pruning::TopK(k) => Some(k),
            Pruning::Greedy => Some(1),
        }
    }
}

/// Configuration for [`synthesize`](crate::synthesize).
///
/// Constructed with [`SynthesisOptions::new`] (or `default()`) and
/// customized with the chained `with_*` setters:
///
/// ```
/// use std::time::Duration;
/// use rmrls_core::{Pruning, SynthesisOptions};
///
/// let opts = SynthesisOptions::new()
///     .with_pruning(Pruning::Greedy)
///     .with_time_limit(Duration::from_secs(60))
///     .with_max_gates(40);
/// assert_eq!(opts.max_gates, Some(40));
/// ```
#[derive(Clone, Debug)]
pub struct SynthesisOptions {
    /// Priority weights (Eq. 4).
    pub weights: Weights,
    /// Quantity driving the queue order.
    pub priority_mode: PriorityMode,
    /// Heuristic weight of [`PriorityMode::AStar`]: the estimated
    /// remaining cost is `(terms − n) · astar_weight`. `0.5` (default)
    /// is near-admissible and gives optimal-quality circuits on small
    /// functions; larger values make the search greedier and are needed
    /// to reach the deep (30-45 gate) solutions of random 5-variable
    /// functions within the paper's time limits.
    pub astar_weight: f64,
    /// Candidate pruning strategy (§IV-E).
    pub pruning: Pruning,
    /// Wall-clock synthesis budget (the paper's `Timer`); `None` = no
    /// limit.
    pub time_limit: Option<Duration>,
    /// Absolute deadline and cooperative cancellation, checked in the
    /// expansion loop alongside `time_limit`. The batch engine threads
    /// its per-job deadline and shutdown token through here; a plain
    /// API user leaves it [`Budget::unlimited`].
    pub budget: Budget,
    /// Maximum circuit size in gates (e.g. 40 for the 4-variable runs,
    /// 60 for the 5-variable runs of §V-B); `None` = unbounded.
    pub max_gates: Option<usize>,
    /// Node-expansion budget; `None` = unbounded. An engineering
    /// addition for deterministic experiment harnesses.
    pub max_nodes: Option<u64>,
    /// Priority-queue size cap: when exceeded, the worst half of the
    /// queue is discarded (beam trim). Bounds memory the way the paper's
    /// 768-MB server bounded theirs; sacrifices completeness only on
    /// runs that would otherwise exhaust memory. `None` = unbounded.
    pub max_queue: Option<usize>,
    /// Steps without a solution before abandoning the search and
    /// restarting from the first level with an alternative substitution
    /// (§IV-E; the paper suggests ~10 000). `None` disables restarts.
    pub restart_after: Option<u64>,
    /// Enable the additional substitution types of §IV-D (factors for
    /// absent target variables, and the unconditional `v := v ⊕ 1`).
    pub additional_substitutions: bool,
    /// Fredkin (controlled-swap) substitutions — the paper's §VI
    /// future-work extension. Off by default to match the published
    /// tool.
    pub fredkin_substitutions: FredkinMode,
    /// Skip re-expanding search states already seen since the last
    /// restart. An engineering addition over the paper (documented in
    /// DESIGN.md); prevents oscillating `v ⊕ 1` chains.
    ///
    /// States are identified by a 64-bit `DefaultHasher` fingerprint, so
    /// two distinct states can collide and the later one be wrongly
    /// skipped (birthday bound: about `k²/2⁶⁵` for `k` visited states,
    /// ≈ 3·10⁻⁸ at a million states). As a partial guard the search also
    /// records each state's term count and never skips on a fingerprint
    /// match whose term counts differ, counting the event in
    /// [`SearchStats::dedup_collisions`](crate::SearchStats::dedup_collisions).
    /// An undetected collision can at worst hide one search branch
    /// (possibly missing a smaller circuit); it can never corrupt an
    /// emitted circuit, which realizes the spec by construction of the
    /// substitution chain.
    pub dedup_states: bool,
    /// Discard children whose substitution does not strictly decrease the
    /// term count (the literal reading of Fig. 4 line 31). The default is
    /// `false`: non-improving substitutions are queued with their
    /// (naturally low) Eq. 4 priority, because the strict filter makes
    /// wire-permutation functions (`a_out = c`, …) unreachable even
    /// though the paper's §IV-F completeness argument — and its Table I
    /// coverage of all 40 320 functions — require them. See DESIGN.md.
    pub monotone_only: bool,
    /// Seed the search with a greedy monotone dive from the root,
    /// establishing an immediate `bestDepth` upper bound (engineering
    /// addition over the paper; ablatable).
    pub initial_dive: bool,
    /// Among solutions with the *same* gate count, prefer the one with
    /// the lower quantum cost (§II-D). Widens the depth cutoff by one
    /// level so equal-size alternatives stay reachable; off by default.
    pub tie_break_cost: bool,
    /// Stop at the first solution instead of searching for the best one
    /// (used by the scalability experiments of §V-E, which only ask
    /// *whether* a solution is found).
    pub stop_at_first: bool,
    /// Record a search trace (Fig. 5/6 reproduction); capped to avoid
    /// unbounded memory.
    pub trace: bool,
    /// Collect a per-phase timing profile (scoring / materialize /
    /// dedup) into [`SearchStats::profile`](crate::SearchStats::profile).
    /// Off by default: the disabled profiler costs one branch per span.
    pub profile: bool,
    /// Worker threads for the intra-job parallel search. `0` (the
    /// default) resolves to [`std::thread::available_parallelism`] when
    /// the run starts; `1` is today's serial path. The parallel search
    /// is *speculative*: workers pre-score and pre-materialize frontier
    /// nodes while a single commit thread replays the exact serial
    /// algorithm from their results, so the output circuit — and every
    /// deterministic counter — is byte-identical for any thread count
    /// (see DESIGN.md §5f).
    pub threads: usize,
}

impl SynthesisOptions {
    /// Paper defaults: exhaustive pruning, additional substitutions on,
    /// no limits.
    pub fn new() -> Self {
        SynthesisOptions {
            weights: Weights::PAPER,
            priority_mode: PriorityMode::AStar,
            astar_weight: 0.5,
            pruning: Pruning::Exhaustive,
            time_limit: None,
            budget: Budget::unlimited(),
            max_gates: None,
            max_nodes: None,
            max_queue: Some(250_000),
            restart_after: Some(10_000),
            additional_substitutions: true,
            fredkin_substitutions: FredkinMode::Off,
            dedup_states: true,
            monotone_only: false,
            initial_dive: true,
            tie_break_cost: false,
            stop_at_first: false,
            trace: false,
            profile: false,
            threads: 0,
        }
    }

    /// Replaces the priority weights.
    pub fn with_weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Replaces the priority mode.
    pub fn with_priority_mode(mut self, mode: PriorityMode) -> Self {
        self.priority_mode = mode;
        self
    }

    /// Sets the A* heuristic weight.
    pub fn with_astar_weight(mut self, weight: f64) -> Self {
        self.astar_weight = weight;
        self
    }

    /// Replaces the pruning strategy.
    pub fn with_pruning(mut self, pruning: Pruning) -> Self {
        self.pruning = pruning;
        self
    }

    /// Sets the wall-clock limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Sets an absolute deadline (stronger than `with_time_limit`: the
    /// instant is fixed by the caller, so time spent queued before the
    /// search starts counts against the budget).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.budget.deadline = Some(deadline);
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.budget.cancel = Some(token);
        self
    }

    /// Caps the total live PPRM terms across queued states (memory
    /// budget; see [`Budget::max_live_terms`]).
    pub fn with_max_live_terms(mut self, terms: u64) -> Self {
        self.budget.max_live_terms = Some(terms);
        self
    }

    /// Caps the approximate heap bytes of queued states (memory budget;
    /// see [`Budget::max_queue_bytes`]).
    pub fn with_max_queue_bytes(mut self, bytes: u64) -> Self {
        self.budget.max_queue_bytes = Some(bytes);
        self
    }

    /// Sets the circuit-size cap.
    pub fn with_max_gates(mut self, max: usize) -> Self {
        self.max_gates = Some(max);
        self
    }

    /// Sets the node-expansion budget.
    pub fn with_max_nodes(mut self, max: u64) -> Self {
        self.max_nodes = Some(max);
        self
    }

    /// Sets (or disables, with `None`) the queue-size cap.
    pub fn with_max_queue(mut self, max: Option<usize>) -> Self {
        self.max_queue = max;
        self
    }

    /// Sets (or disables, with `None`) the restart threshold.
    pub fn with_restart_after(mut self, steps: Option<u64>) -> Self {
        self.restart_after = steps;
        self
    }

    /// Enables or disables the §IV-D additional substitutions.
    pub fn with_additional_substitutions(mut self, on: bool) -> Self {
        self.additional_substitutions = on;
        self
    }

    /// Selects the Fredkin substitution mode (§VI extension).
    pub fn with_fredkin_substitutions(mut self, mode: FredkinMode) -> Self {
        self.fredkin_substitutions = mode;
        self
    }

    /// Enables or disables visited-state deduplication.
    pub fn with_dedup_states(mut self, on: bool) -> Self {
        self.dedup_states = on;
        self
    }

    /// Enables the strict monotone-decrease filter (paper-literal mode,
    /// for ablation).
    pub fn with_monotone_only(mut self, on: bool) -> Self {
        self.monotone_only = on;
        self
    }

    /// Enables or disables the greedy seeding dive.
    pub fn with_initial_dive(mut self, on: bool) -> Self {
        self.initial_dive = on;
        self
    }

    /// Enables the quantum-cost tie-break among equal-size solutions.
    pub fn with_tie_break_cost(mut self, on: bool) -> Self {
        self.tie_break_cost = on;
        self
    }

    /// Stop at the first solution found.
    pub fn with_stop_at_first(mut self, on: bool) -> Self {
        self.stop_at_first = on;
        self
    }

    /// Enables search tracing.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enables per-phase profiling.
    pub fn with_profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Sets the worker-thread count for the parallel search (`0` =
    /// auto-detect, `1` = serial). The result is byte-identical for any
    /// value; see [`SynthesisOptions::threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The effective thread count: `threads`, with `0` resolved to
    /// [`std::thread::available_parallelism`].
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weights_sum_to_one() {
        let w = Weights::PAPER;
        assert!((w.alpha + w.beta + w.gamma - 1.0).abs() < 1e-12);
    }

    #[test]
    fn priority_formula_matches_eq4() {
        let w = Weights::PAPER;
        // depth 2, elim 4, 3 literals: 0.3·2 + 0.6·4/2 − 0.1·3 = 1.5.
        assert!((w.priority(2, 4, 3) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn priority_prefers_more_elimination() {
        let w = Weights::PAPER;
        assert!(w.priority(1, 3, 1) > w.priority(1, 1, 1));
    }

    #[test]
    fn priority_penalizes_wide_factors() {
        let w = Weights::PAPER;
        assert!(w.priority(1, 2, 1) > w.priority(1, 2, 4));
    }

    #[test]
    fn pruning_keep_budgets() {
        assert_eq!(Pruning::Exhaustive.keep(), None);
        assert_eq!(Pruning::TopK(4).keep(), Some(4));
        assert_eq!(Pruning::Greedy.keep(), Some(1));
    }

    #[test]
    fn builder_chains() {
        let o = SynthesisOptions::new()
            .with_max_nodes(5)
            .with_stop_at_first(true)
            .with_additional_substitutions(false);
        assert_eq!(o.max_nodes, Some(5));
        assert!(o.stop_at_first);
        assert!(!o.additional_substitutions);
    }

    #[test]
    fn threads_default_to_auto_and_resolve() {
        let o = SynthesisOptions::new();
        assert_eq!(o.threads, 0, "default is auto-detect");
        assert!(o.resolved_threads() >= 1);
        let pinned = o.with_threads(3);
        assert_eq!(pinned.resolved_threads(), 3);
    }

    #[test]
    fn memory_budget_builders_reach_the_budget() {
        let o = SynthesisOptions::new()
            .with_max_live_terms(1000)
            .with_max_queue_bytes(1 << 20);
        assert_eq!(o.budget.max_live_terms, Some(1000));
        assert_eq!(o.budget.max_queue_bytes, Some(1 << 20));
        assert!(o.budget.memory_limited());
        assert!(
            !o.budget.is_limited(),
            "memory caps don't force clock polls"
        );
    }
}
