//! Machine-readable run reports.
//!
//! One synthesis run — its options, search statistics, result summary
//! and optional observer metrics — serializes to a single
//! self-describing JSON object. The CLI's `--report FILE` flag and the
//! bench harness both emit this shape, so downstream tooling parses one
//! schema regardless of where a run happened. Schema changes bump
//! [`RUN_REPORT_SCHEMA_VERSION`] (the policy is documented in
//! DESIGN.md).

use rmrls_circuit::Circuit;
use rmrls_obs::{Json, MetricsSnapshot};

use crate::{FredkinMode, PriorityMode, Pruning, SearchStats, SynthesisOptions};

/// Version of the run-report JSON schema. Bumped whenever a field is
/// renamed, removed, or changes meaning; additions are backwards
/// compatible and do not bump it.
pub const RUN_REPORT_SCHEMA_VERSION: u64 = 1;

fn opt_uint<T: Into<u64>>(v: Option<T>) -> Json {
    v.map(|x| Json::uint(x.into())).unwrap_or(Json::Null)
}

/// Serializes the full option set, so a report identifies the exact
/// configuration that produced it.
pub fn options_to_json(options: &SynthesisOptions) -> Json {
    let pruning = match options.pruning {
        Pruning::Exhaustive => "exhaustive".to_string(),
        Pruning::TopK(k) => format!("top-{k}"),
        Pruning::Greedy => "greedy".to_string(),
    };
    let priority_mode = match options.priority_mode {
        PriorityMode::CumulativeRate => "cumulative-rate",
        PriorityMode::StepElim => "step-elim",
        PriorityMode::FewestTerms => "fewest-terms",
        PriorityMode::AStar => "astar",
    };
    let fredkin = match options.fredkin_substitutions {
        FredkinMode::Off => "off",
        FredkinMode::SwapOnly => "swap-only",
        FredkinMode::Full => "full",
    };
    Json::Obj(vec![
        (
            "weights".to_string(),
            Json::Obj(vec![
                ("alpha".to_string(), Json::Num(options.weights.alpha)),
                ("beta".to_string(), Json::Num(options.weights.beta)),
                ("gamma".to_string(), Json::Num(options.weights.gamma)),
            ]),
        ),
        ("priority_mode".to_string(), Json::str(priority_mode)),
        ("astar_weight".to_string(), Json::Num(options.astar_weight)),
        ("pruning".to_string(), Json::Str(pruning)),
        (
            "time_limit_seconds".to_string(),
            options
                .time_limit
                .map(|t| Json::Num(t.as_secs_f64()))
                .unwrap_or(Json::Null),
        ),
        // Budget bounds are runtime handles (an Instant, a token), so
        // the report records only whether each was set.
        (
            "deadline_set".to_string(),
            Json::Bool(options.budget.deadline.is_some()),
        ),
        (
            "cancellable".to_string(),
            Json::Bool(options.budget.cancel.is_some()),
        ),
        (
            "max_live_terms".to_string(),
            opt_uint(options.budget.max_live_terms),
        ),
        (
            "max_queue_bytes".to_string(),
            opt_uint(options.budget.max_queue_bytes),
        ),
        (
            "max_gates".to_string(),
            opt_uint(options.max_gates.map(|g| g as u64)),
        ),
        ("max_nodes".to_string(), opt_uint(options.max_nodes)),
        (
            "max_queue".to_string(),
            opt_uint(options.max_queue.map(|q| q as u64)),
        ),
        ("restart_after".to_string(), opt_uint(options.restart_after)),
        (
            "additional_substitutions".to_string(),
            Json::Bool(options.additional_substitutions),
        ),
        ("fredkin_substitutions".to_string(), Json::str(fredkin)),
        ("dedup_states".to_string(), Json::Bool(options.dedup_states)),
        (
            "monotone_only".to_string(),
            Json::Bool(options.monotone_only),
        ),
        ("initial_dive".to_string(), Json::Bool(options.initial_dive)),
        (
            "tie_break_cost".to_string(),
            Json::Bool(options.tie_break_cost),
        ),
        (
            "stop_at_first".to_string(),
            Json::Bool(options.stop_at_first),
        ),
        ("trace".to_string(), Json::Bool(options.trace)),
        ("profile".to_string(), Json::Bool(options.profile)),
        // The configured value (0 = auto); the resolved count the run
        // actually used is in stats.threads_used.
        ("threads".to_string(), Json::uint(options.threads as u64)),
    ])
}

/// Serializes the search counters, timings and per-restart spans.
pub fn stats_to_json(stats: &SearchStats) -> Json {
    let spans: Vec<Json> = stats
        .restart_spans
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("ordinal".to_string(), Json::uint(s.ordinal)),
                ("nodes_expanded".to_string(), Json::uint(s.nodes_expanded)),
                ("seconds".to_string(), Json::Num(s.elapsed.as_secs_f64())),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "nodes_expanded".to_string(),
            Json::uint(stats.nodes_expanded),
        ),
        (
            "children_generated".to_string(),
            Json::uint(stats.children_generated),
        ),
        (
            "candidates_scored".to_string(),
            Json::uint(stats.candidates_scored),
        ),
        (
            "candidates_materialized".to_string(),
            Json::uint(stats.candidates_materialized),
        ),
        (
            "children_pushed".to_string(),
            Json::uint(stats.children_pushed),
        ),
        ("restarts".to_string(), Json::uint(stats.restarts)),
        (
            "solutions_seen".to_string(),
            Json::uint(stats.solutions_seen),
        ),
        ("depth_pruned".to_string(), Json::uint(stats.depth_pruned)),
        ("dedup_hits".to_string(), Json::uint(stats.dedup_hits)),
        (
            "dedup_collisions".to_string(),
            Json::uint(stats.dedup_collisions),
        ),
        ("beam_trims".to_string(), Json::uint(stats.beam_trims)),
        ("beam_dropped".to_string(), Json::uint(stats.beam_dropped)),
        ("queue_peak".to_string(), Json::uint(stats.queue_peak)),
        ("memory_sheds".to_string(), Json::uint(stats.memory_sheds)),
        (
            "memory_shed_dropped".to_string(),
            Json::uint(stats.memory_shed_dropped),
        ),
        (
            "live_terms_peak".to_string(),
            Json::uint(stats.live_terms_peak),
        ),
        (
            "queue_bytes_peak".to_string(),
            Json::uint(stats.queue_bytes_peak),
        ),
        // Degraded mode: the search shed queue entries to stay inside a
        // memory budget, so completeness/quality guarantees are best
        // effort for this run.
        ("degraded".to_string(), Json::Bool(stats.memory_sheds > 0)),
        ("trace_dropped".to_string(), Json::uint(stats.trace_dropped)),
        (
            "elapsed_seconds".to_string(),
            Json::Num(stats.elapsed.as_secs_f64()),
        ),
        (
            "stop_reason".to_string(),
            stats
                .stop_reason
                .map(|r| Json::Str(r.to_string()))
                .unwrap_or(Json::Null),
        ),
        ("restart_spans".to_string(), Json::Arr(spans)),
        // Parallel-search counters. threads_used is the resolved thread
        // count (1 = serial); every counter above is replay-derived and
        // byte-identical across thread counts, while the spec_*/steal/
        // shard/race counters below are scheduling-dependent and all
        // zero on serial runs.
        ("threads_used".to_string(), Json::uint(stats.threads_used)),
        ("spec_hits".to_string(), Json::uint(stats.spec_hits)),
        ("spec_misses".to_string(), Json::uint(stats.spec_misses)),
        ("steals".to_string(), Json::uint(stats.steals)),
        (
            "shard_contention_retries".to_string(),
            Json::uint(stats.shard_contention_retries),
        ),
        (
            "dup_races_lost".to_string(),
            Json::uint(stats.dup_races_lost),
        ),
        (
            "shared_seen_hits".to_string(),
            Json::uint(stats.shared_seen_hits),
        ),
        (
            "spec_scored_wasted".to_string(),
            Json::uint(stats.spec_scored_wasted),
        ),
        (
            "spec_materialized_wasted".to_string(),
            Json::uint(stats.spec_materialized_wasted),
        ),
        // The phase profile is null (not an empty array) when profiling
        // was off, so consumers can tell "not measured" from "measured
        // nothing".
        (
            "profile".to_string(),
            if stats.profile.is_empty() {
                Json::Null
            } else {
                stats.profile.to_json()
            },
        ),
    ])
}

/// Builds the complete run report.
///
/// `circuit` is `None` when the search failed; `metrics` is `None` when
/// the run was not observed with a metrics registry. `events_dropped`
/// is the observer's sink-side drop count (zero for unobserved runs) —
/// reports never hide truncation.
pub fn run_report(
    options: &SynthesisOptions,
    stats: &SearchStats,
    circuit: Option<&Circuit>,
    metrics: Option<&MetricsSnapshot>,
    events_dropped: u64,
) -> Json {
    let circuit_json = match circuit {
        Some(c) => Json::Obj(vec![
            ("width".to_string(), Json::uint(c.width() as u64)),
            ("gates".to_string(), Json::uint(c.gate_count() as u64)),
            ("quantum_cost".to_string(), Json::uint(c.quantum_cost())),
        ]),
        None => Json::Null,
    };
    Json::Obj(vec![
        (
            "schema_version".to_string(),
            Json::uint(RUN_REPORT_SCHEMA_VERSION),
        ),
        ("tool".to_string(), Json::str("rmrls")),
        ("solved".to_string(), Json::Bool(circuit.is_some())),
        ("circuit".to_string(), circuit_json),
        ("options".to_string(), options_to_json(options)),
        ("stats".to_string(), stats_to_json(stats)),
        (
            "metrics".to_string(),
            metrics.map(MetricsSnapshot::to_json).unwrap_or(Json::Null),
        ),
        ("events_dropped".to_string(), Json::uint(events_dropped)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize_with_observer, Observer};
    use rmrls_pprm::MultiPprm;

    fn fig1() -> MultiPprm {
        MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3)
    }

    #[test]
    fn report_round_trips_through_text_and_matches_stats() {
        let options = crate::SynthesisOptions::new().with_max_nodes(50_000);
        let mut obs = Observer::null().with_metrics();
        let result = synthesize_with_observer(&fig1(), &options, &mut obs).expect("solution");
        let metrics = obs.metrics_snapshot().unwrap();
        let report = run_report(
            &options,
            &result.stats,
            Some(&result.circuit),
            Some(&metrics),
            obs.dropped_events(),
        );

        let text = report.to_string();
        let parsed = Json::parse(&text).expect("report is valid JSON");

        assert_eq!(parsed.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("solved").unwrap().as_bool(), Some(true));
        let circuit = parsed.get("circuit").unwrap();
        assert_eq!(
            circuit.get("gates").unwrap().as_u64(),
            Some(result.circuit.gate_count() as u64)
        );
        let stats = parsed.get("stats").unwrap();
        for (field, expected) in [
            ("nodes_expanded", result.stats.nodes_expanded),
            ("children_pushed", result.stats.children_pushed),
            ("candidates_scored", result.stats.candidates_scored),
            (
                "candidates_materialized",
                result.stats.candidates_materialized,
            ),
            ("restarts", result.stats.restarts),
            ("dedup_hits", result.stats.dedup_hits),
            ("queue_peak", result.stats.queue_peak),
            ("threads_used", result.stats.threads_used),
            ("spec_hits", result.stats.spec_hits),
            ("spec_misses", result.stats.spec_misses),
            ("steals", result.stats.steals),
            (
                "shard_contention_retries",
                result.stats.shard_contention_retries,
            ),
            ("dup_races_lost", result.stats.dup_races_lost),
        ] {
            assert_eq!(
                stats.get(field).unwrap().as_u64(),
                Some(expected),
                "field {field}"
            );
        }
        // The two-phase kernel must have skipped some materializations.
        assert!(
            result.stats.candidates_materialized < result.stats.candidates_scored,
            "materialized {} !< scored {}",
            result.stats.candidates_materialized,
            result.stats.candidates_scored
        );
        // One restart span per segment; at minimum the closing segment.
        let spans = stats.get("restart_spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), result.stats.restart_spans.len());
        assert_eq!(spans.len() as u64, result.stats.restarts + 1);
        // Metrics present with the expected instruments.
        let metrics_json = parsed.get("metrics").unwrap();
        assert!(metrics_json.get("histograms").is_some());
        assert_eq!(parsed.get("events_dropped").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn failed_run_reports_null_circuit() {
        let options = crate::SynthesisOptions::new().with_max_gates(1);
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let err = crate::synthesize(&spec, &options).unwrap_err();
        let report = run_report(&options, &err.stats, None, None, 0);
        let parsed = Json::parse(&report.to_string()).unwrap();
        assert_eq!(parsed.get("solved").unwrap().as_bool(), Some(false));
        assert!(matches!(parsed.get("circuit"), Some(Json::Null)));
        assert!(matches!(parsed.get("metrics"), Some(Json::Null)));
    }

    #[test]
    fn options_json_reflects_configuration() {
        let options = crate::SynthesisOptions::new()
            .with_pruning(crate::Pruning::TopK(4))
            .with_max_gates(40)
            .with_threads(4);
        let json = options_to_json(&options);
        assert_eq!(json.get("pruning").unwrap().as_str(), Some("top-4"));
        assert_eq!(json.get("max_gates").unwrap().as_u64(), Some(40));
        assert_eq!(json.get("threads").unwrap().as_u64(), Some(4));
        assert!(matches!(json.get("time_limit_seconds"), Some(Json::Null)));
        assert_eq!(json.get("priority_mode").unwrap().as_str(), Some("astar"));
    }
}
