//! Cooperative cancellation and deadlines for the search loop.
//!
//! [`SynthesisOptions::time_limit`](crate::SynthesisOptions::time_limit)
//! expresses the paper's per-run `Timer` as a *duration* measured from
//! whenever the search happens to start. A batch engine needs two
//! stronger notions: an absolute **deadline** (an `Instant` fixed when
//! the job was admitted, so queueing delay counts against the budget)
//! and a **cancel token** (another thread decides the work is no longer
//! wanted — a portfolio sibling won, or the operator hit Ctrl-C). Both
//! are carried by a [`Budget`] and polled in the expansion loop at the
//! same cadence as the existing time-limit check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable flag requesting that cooperative work stop.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// flag. Cancellation is level-triggered and permanent: once
/// [`cancel`](CancelToken::cancel) is called, every holder sees
/// [`is_cancelled`](CancelToken::is_cancelled) forever after.
///
/// Tokens can be **linked**: a child token created with
/// [`child`](CancelToken::child) trips when either it or its parent is
/// cancelled, letting a batch engine cancel one job (child) or the
/// whole run (parent) with the same mechanism.
///
/// ```
/// use rmrls_core::CancelToken;
///
/// let run = CancelToken::new();
/// let job = run.child();
/// assert!(!job.is_cancelled());
/// run.cancel();
/// assert!(job.is_cancelled(), "parent cancellation reaches children");
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parent: None,
        }
    }

    /// A token that also trips when `self` is cancelled.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(self.clone())),
        }
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested on this token or any
    /// ancestor.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        match &self.parent {
            Some(p) => p.is_cancelled(),
            None => false,
        }
    }
}

/// An absolute deadline plus an optional cancel token, polled together
/// by the search loop.
///
/// The default budget is unlimited. A `Budget` composes with (does not
/// replace) `time_limit`: a search stops at whichever bound trips
/// first, and the [`StopReason`](crate::StopReason) names which one.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Absolute wall-clock instant after which the search must stop
    /// with [`StopReason::DeadlineExpired`](crate::StopReason::DeadlineExpired).
    pub deadline: Option<Instant>,
    /// Cooperative stop flag checked alongside the deadline; trips
    /// [`StopReason::Cancelled`](crate::StopReason::Cancelled).
    pub cancel: Option<CancelToken>,
    /// Cap on the total PPRM terms held live across all queued states.
    /// On breach the search sheds the worst half of its queue (degraded
    /// mode); a second breach stops it with
    /// [`StopReason::MemoryExceeded`](crate::StopReason::MemoryExceeded).
    pub max_live_terms: Option<u64>,
    /// Cap on the approximate heap bytes of queued states (see
    /// `MultiPprm::approx_heap_bytes`), with the same shed-then-stop
    /// policy as `max_live_terms`.
    pub max_queue_bytes: Option<u64>,
}

impl Budget {
    /// An unlimited budget (never expires, never cancelled).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A budget that expires at `deadline`.
    pub fn with_deadline(mut self, deadline: Instant) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// A budget observing `token`.
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// A budget capping the total live PPRM terms across queued states.
    pub fn with_max_live_terms(mut self, terms: u64) -> Budget {
        self.max_live_terms = Some(terms);
        self
    }

    /// A budget capping the approximate heap bytes of queued states.
    pub fn with_max_queue_bytes(mut self, bytes: u64) -> Budget {
        self.max_queue_bytes = Some(bytes);
        self
    }

    /// Whether any clock bound is set (lets the search loop skip the
    /// clock read entirely for unlimited budgets). Memory bounds are
    /// polled separately via [`memory_limited`](Budget::memory_limited)
    /// — they need no clock.
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Whether a memory bound is set.
    pub fn memory_limited(&self) -> bool {
        self.max_live_terms.is_some() || self.max_queue_bytes.is_some()
    }

    /// Whether the given accounting figures exceed a configured memory
    /// bound.
    pub fn memory_breached(&self, live_terms: u64, queue_bytes: u64) -> bool {
        self.max_live_terms.is_some_and(|cap| live_terms > cap)
            || self.max_queue_bytes.is_some_and(|cap| queue_bytes > cap)
    }

    /// Whether cancellation has been requested.
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Whether the deadline has passed as of `now`.
    pub fn deadline_expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancel_reaches_all_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn child_trips_on_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must not leak up");

        let parent2 = CancelToken::new();
        let child2 = parent2.child();
        parent2.cancel();
        assert!(child2.is_cancelled());
    }

    #[test]
    fn cancel_is_visible_across_threads() {
        let token = CancelToken::new();
        std::thread::scope(|s| {
            let t = token.clone();
            s.spawn(move || t.cancel());
        });
        assert!(token.is_cancelled());
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(!b.cancelled());
        assert!(!b.deadline_expired(Instant::now()));
    }

    #[test]
    fn deadline_expiry_is_instant_based() {
        let now = Instant::now();
        let b = Budget::unlimited().with_deadline(now + Duration::from_secs(3600));
        assert!(b.is_limited());
        assert!(!b.deadline_expired(now));
        assert!(b.deadline_expired(now + Duration::from_secs(3600)));
        assert!(b.deadline_expired(now + Duration::from_secs(7200)));
    }

    #[test]
    fn budget_combines_deadline_and_cancel() {
        let token = CancelToken::new();
        let b = Budget::unlimited()
            .with_deadline(Instant::now() + Duration::from_secs(3600))
            .with_cancel(token.clone());
        assert!(!b.cancelled());
        token.cancel();
        assert!(b.cancelled());
    }

    #[test]
    fn memory_bounds_are_separate_from_clock_bounds() {
        let b = Budget::unlimited().with_max_live_terms(100);
        assert!(!b.is_limited(), "memory caps need no clock polling");
        assert!(b.memory_limited());
        assert!(!b.memory_breached(100, 0), "cap is inclusive");
        assert!(b.memory_breached(101, 0));

        let b = Budget::unlimited().with_max_queue_bytes(4096);
        assert!(b.memory_limited());
        assert!(!b.memory_breached(u64::MAX, 4096));
        assert!(b.memory_breached(0, 4097));

        assert!(!Budget::unlimited().memory_limited());
        assert!(!Budget::unlimited().memory_breached(u64::MAX, u64::MAX));
    }

    // --- integration with the search loop ---

    use crate::{synthesize, StopReason, SynthesisOptions};
    use rmrls_pprm::MultiPprm;

    #[test]
    fn expired_deadline_fails_cleanly_before_any_work() {
        let spec = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
        let opts = SynthesisOptions::new().with_deadline(Instant::now() - Duration::from_secs(1));
        let err = synthesize(&spec, &opts).unwrap_err();
        assert_eq!(err.stats.stop_reason, Some(StopReason::DeadlineExpired));
        assert_eq!(err.stats.nodes_expanded, 0, "no work past the deadline");
    }

    #[test]
    fn pre_cancelled_token_fails_cleanly() {
        let spec = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
        let token = CancelToken::new();
        token.cancel();
        let opts = SynthesisOptions::new().with_cancel_token(token);
        let err = synthesize(&spec, &opts).unwrap_err();
        assert_eq!(err.stats.stop_reason, Some(StopReason::Cancelled));
        assert_eq!(err.stats.nodes_expanded, 0);
    }

    #[test]
    fn identity_still_solves_under_expired_deadline() {
        // The zero-gate answer is free and correct; a budget never
        // degrades a result that costs no search.
        let opts = SynthesisOptions::new().with_deadline(Instant::now() - Duration::from_secs(1));
        let result = synthesize(&MultiPprm::identity(3), &opts).unwrap();
        assert!(result.circuit.is_empty());
    }

    #[test]
    fn mid_search_cancellation_is_clean() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // A hard 6-variable function with the seeding dive disabled:
        // the search cannot finish before the cancel lands (and if it
        // somehow did, the emitted circuit must still realize the
        // spec — a budget can never yield a partially-built circuit).
        let mut rng = StdRng::seed_from_u64(7);
        let p = rmrls_spec::random_permutation(6, &mut rng);
        let spec = p.to_multi_pprm();
        let token = CancelToken::new();
        let opts = SynthesisOptions::new()
            .with_initial_dive(false)
            .with_cancel_token(token.clone());
        let result = std::thread::scope(|s| {
            let handle = s.spawn(|| synthesize(&spec, &opts));
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
            handle.join().expect("search does not panic")
        });
        match result {
            Ok(s) => assert_eq!(s.circuit.to_permutation(), p.as_slice()),
            Err(e) => assert_eq!(e.stats.stop_reason, Some(StopReason::Cancelled)),
        }
    }

    #[test]
    fn tight_deadline_beats_generous_time_limit() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Both clock bounds set: the absolute deadline is tighter and
        // must name the stop reason.
        let mut rng = StdRng::seed_from_u64(7);
        let spec = rmrls_spec::random_permutation(6, &mut rng).to_multi_pprm();
        let opts = SynthesisOptions::new()
            .with_initial_dive(false)
            .with_time_limit(Duration::from_secs(3600))
            .with_deadline(Instant::now() + Duration::from_millis(20));
        let err = synthesize(&spec, &opts).unwrap_err();
        assert_eq!(err.stats.stop_reason, Some(StopReason::DeadlineExpired));
    }
}
