//! Parallel portfolio synthesis: run several search configurations on
//! OS threads and keep the best circuit.
//!
//! The paper tunes one configuration per experiment (greedy for scale,
//! exhaustive for quality). On a multicore machine the better engineering
//! answer is to run the complementary configurations simultaneously —
//! the heuristic weight that cracks deep 5-variable functions and the
//! near-admissible weight that polishes small ones cost one wall-clock
//! budget together.

use rmrls_obs::{Event, Value};
use rmrls_pprm::MultiPprm;

use crate::{
    synthesize, CancelToken, NoSolutionError, Observer, PriorityMode, Pruning, SearchStats,
    Synthesis, SynthesisOptions,
};

/// A sensible default portfolio derived from the ablation study:
/// near-admissible A* (quality), weighted A* (depth), greedy pruning
/// (speed), and the paper's Eq. 4 reading (diversity).
pub fn default_portfolio(base: &SynthesisOptions) -> Vec<SynthesisOptions> {
    vec![
        base.clone(),
        base.clone().with_astar_weight(1.0),
        base.clone()
            .with_pruning(Pruning::Greedy)
            .with_astar_weight(1.0),
        base.clone()
            .with_priority_mode(PriorityMode::CumulativeRate)
            .with_pruning(Pruning::TopK(4)),
    ]
}

/// Synthesizes the specification under every configuration in parallel
/// and returns the smallest circuit (ties: lowest quantum cost, then
/// earliest configuration).
///
/// When **every** configuration sets `stop_at_first`, the members race:
/// the first to find a solution cancels the others through their
/// [`CancelToken`]s, so losing configurations stop within one budget
/// poll instead of running to their full node budget. Racing is gated
/// on `stop_at_first` because it is only quality-safe when the caller
/// has declared any solution acceptable — cancelling a best-first
/// member early could otherwise return a larger circuit than it would
/// have found.
///
/// # Errors
///
/// Returns the first configuration's [`NoSolutionError`] if every
/// configuration fails, or a default-stats error when `configs` is
/// empty.
///
/// ```
/// use rmrls_core::{default_portfolio, synthesize_portfolio, SynthesisOptions};
/// use rmrls_pprm::MultiPprm;
///
/// let spec = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
/// let base = SynthesisOptions::new().with_max_nodes(10_000);
/// let result = synthesize_portfolio(&spec, &default_portfolio(&base))?;
/// assert_eq!(result.circuit.gate_count(), 3);
/// # Ok::<(), rmrls_core::NoSolutionError>(())
/// ```
pub fn synthesize_portfolio(
    spec: &MultiPprm,
    configs: &[SynthesisOptions],
) -> Result<Synthesis, NoSolutionError> {
    synthesize_portfolio_attributed(spec, configs, &mut Observer::null()).result
}

/// How one portfolio configuration fared.
#[derive(Clone, Debug)]
pub struct ConfigOutcome {
    /// Index into the submitted configuration list.
    pub index: usize,
    /// Gate count of this configuration's solution, if it found one.
    pub gates: Option<u32>,
    /// Quantum cost of this configuration's solution, if any.
    pub quantum_cost: Option<u64>,
    /// The run's search statistics (recorded on success and failure).
    pub stats: SearchStats,
}

/// A portfolio run with per-configuration attribution: which
/// configuration won, and what every configuration spent.
#[derive(Debug)]
pub struct PortfolioRun {
    /// The best circuit found, or the first failure if none solved it.
    pub result: Result<Synthesis, NoSolutionError>,
    /// Index of the winning configuration; `None` when all failed.
    pub winner: Option<usize>,
    /// Per-configuration outcomes in submission order.
    pub outcomes: Vec<ConfigOutcome>,
}

/// [`synthesize_portfolio`] with winner attribution and per-config
/// outcomes, reported through `obs` as `portfolio_config` /
/// `portfolio_winner` events.
///
/// The member searches run uninstrumented on their own threads (an
/// [`Observer`] is single-threaded by design); the parent thread emits
/// one attribution event per configuration once all of them finish.
///
/// An empty `configs` slice yields an `Err` result with default stats
/// (historically this panicked; batch callers construct portfolios
/// dynamically and must not be able to take the process down).
pub fn synthesize_portfolio_attributed(
    spec: &MultiPprm,
    configs: &[SynthesisOptions],
    obs: &mut Observer,
) -> PortfolioRun {
    if configs.is_empty() {
        return PortfolioRun {
            result: Err(NoSolutionError {
                stats: SearchStats::default(),
            }),
            winner: None,
            outcomes: Vec::new(),
        };
    }

    // Racing (winner cancels losers) only when every member declared
    // any solution acceptable — see `synthesize_portfolio` docs.
    let racing = configs.iter().all(|c| c.stop_at_first);
    // One token per member; a member with a caller-supplied token gets
    // a child so the caller's cancellation still reaches it.
    let tokens: Vec<CancelToken> = configs
        .iter()
        .map(|c| match &c.budget.cancel {
            Some(t) => t.child(),
            None => CancelToken::new(),
        })
        .collect();

    let mut results: Vec<Result<Synthesis, NoSolutionError>> = std::thread::scope(|scope| {
        let tokens = &tokens;
        let handles: Vec<_> = configs
            .iter()
            .enumerate()
            .map(|(index, opts)| {
                scope.spawn(move || {
                    let run_opts = opts.clone().with_cancel_token(tokens[index].clone());
                    let result = synthesize(spec, &run_opts);
                    if racing && result.is_ok() {
                        for (other, token) in tokens.iter().enumerate() {
                            if other != index {
                                token.cancel();
                            }
                        }
                    }
                    result
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("synthesis threads do not panic"))
            .collect()
    });

    let outcomes: Vec<ConfigOutcome> = results
        .iter()
        .enumerate()
        .map(|(index, result)| match result {
            Ok(s) => ConfigOutcome {
                index,
                gates: Some(s.circuit.gate_count() as u32),
                quantum_cost: Some(s.circuit.quantum_cost()),
                stats: s.stats.clone(),
            },
            Err(e) => ConfigOutcome {
                index,
                gates: None,
                quantum_cost: None,
                stats: e.stats.clone(),
            },
        })
        .collect();

    let mut best: Option<(usize, Synthesis)> = None;
    let mut first_err: Option<NoSolutionError> = None;
    for (index, result) in results.drain(..).enumerate() {
        match result {
            Ok(s) => {
                let better = best
                    .as_ref()
                    .map(|(_, b)| {
                        let (sg, bg) = (s.circuit.gate_count(), b.circuit.gate_count());
                        sg < bg || (sg == bg && s.circuit.quantum_cost() < b.circuit.quantum_cost())
                    })
                    .unwrap_or(true);
                if better {
                    best = Some((index, s));
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }

    let winner = best.as_ref().map(|(i, _)| *i);
    for outcome in &outcomes {
        obs.emit(Event::new(
            "portfolio_config",
            vec![
                ("config", Value::from(outcome.index)),
                ("solved", Value::from(outcome.gates.is_some())),
                (
                    "gates",
                    match outcome.gates {
                        Some(g) => Value::from(g),
                        None => Value::Int(-1),
                    },
                ),
                ("nodes", Value::from(outcome.stats.nodes_expanded)),
                ("seconds", Value::from(outcome.stats.elapsed.as_secs_f64())),
            ],
        ));
    }
    if let Some(w) = winner {
        obs.emit(Event::new(
            "portfolio_winner",
            vec![("config", Value::from(w))],
        ));
    }

    let result = match best {
        Some((_, s)) => Ok(s),
        None => Err(first_err.expect("all failed implies an error")),
    };
    PortfolioRun {
        result,
        winner,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmrls_spec::Permutation;

    fn budgeted() -> SynthesisOptions {
        SynthesisOptions::new().with_max_nodes(10_000)
    }

    #[test]
    fn portfolio_solves_and_round_trips() {
        let spec = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
        let result = synthesize_portfolio(&spec, &default_portfolio(&budgeted())).unwrap();
        assert_eq!(result.circuit.to_permutation(), spec.to_permutation());
        assert_eq!(result.circuit.gate_count(), 3);
    }

    #[test]
    fn portfolio_never_worse_than_first_config() {
        for rank in (0..40320u128).step_by(6007) {
            let spec = Permutation::from_rank(3, rank).to_multi_pprm();
            let single = synthesize(&spec, &budgeted()).unwrap();
            let many = synthesize_portfolio(&spec, &default_portfolio(&budgeted())).unwrap();
            assert!(
                many.circuit.gate_count() <= single.circuit.gate_count(),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn all_failures_propagate_an_error() {
        // A cap below the optimum fails in every configuration.
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let impossible = budgeted().with_max_gates(1);
        let configs = vec![impossible.clone(), impossible];
        assert!(synthesize_portfolio(&spec, &configs).is_err());
    }

    #[test]
    fn empty_portfolio_is_an_error_not_a_panic() {
        let spec = MultiPprm::identity(2);
        let err = synthesize_portfolio(&spec, &[]).unwrap_err();
        assert_eq!(err.stats.stop_reason, None);
        let run = synthesize_portfolio_attributed(&spec, &[], &mut Observer::null());
        assert!(run.result.is_err());
        assert_eq!(run.winner, None);
        assert!(run.outcomes.is_empty());
    }

    #[test]
    fn racing_portfolio_cancels_losers() {
        use crate::{PriorityMode, StopReason};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Seed-21 5-variable permutation: crackable by the default
        // portfolio under stop_at_first (see
        // portfolio_handles_five_variables), hopeless for an unbudgeted
        // CumulativeRate exhaustive search (DESIGN.md: that mode scales
        // poorly beyond four variables). If winner-cancellation broke,
        // this test would hang on the unbudgeted member.
        let mut rng = StdRng::seed_from_u64(21);
        let p = rmrls_spec::random_permutation(5, &mut rng);
        let base = SynthesisOptions::new()
            .with_max_gates(60)
            .with_max_nodes(60_000)
            .with_stop_at_first(true);
        let mut configs = default_portfolio(&base);
        configs.push(
            SynthesisOptions::new()
                .with_priority_mode(PriorityMode::CumulativeRate)
                .with_initial_dive(false)
                .with_max_gates(60)
                .with_stop_at_first(true),
        );
        let loser = configs.len() - 1;
        let run =
            synthesize_portfolio_attributed(&p.to_multi_pprm(), &configs, &mut Observer::null());
        let best = run.result.expect("some config cracks it");
        assert_eq!(best.circuit.to_permutation(), p.as_slice());
        assert_eq!(
            run.outcomes[loser].stats.stop_reason,
            Some(StopReason::Cancelled),
            "unbudgeted loser must be cancelled by the winner"
        );
    }

    #[test]
    fn non_racing_portfolio_does_not_cancel() {
        use crate::StopReason;
        // Without stop_at_first on every member, no racing: each config
        // runs to its own budget and none reports Cancelled.
        let spec = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
        let run = synthesize_portfolio_attributed(
            &spec,
            &default_portfolio(&budgeted()),
            &mut Observer::null(),
        );
        assert!(run.result.is_ok());
        for o in &run.outcomes {
            assert_ne!(o.stats.stop_reason, Some(StopReason::Cancelled));
        }
    }

    #[test]
    fn caller_token_still_cancels_racing_members() {
        use crate::{CancelToken, StopReason};
        // A pre-cancelled caller token reaches every member through the
        // child link even though the portfolio installs its own tokens.
        let token = CancelToken::new();
        token.cancel();
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let configs = vec![
            budgeted()
                .with_stop_at_first(true)
                .with_initial_dive(false)
                .with_cancel_token(token.clone()),
            budgeted()
                .with_stop_at_first(true)
                .with_initial_dive(false)
                .with_cancel_token(token),
        ];
        let run = synthesize_portfolio_attributed(&spec, &configs, &mut Observer::null());
        let err = run.result.unwrap_err();
        assert_eq!(err.stats.stop_reason, Some(StopReason::Cancelled));
        for o in &run.outcomes {
            assert_eq!(o.stats.stop_reason, Some(StopReason::Cancelled));
        }
    }

    #[test]
    fn attributed_portfolio_names_the_winner() {
        let spec = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
        let configs = default_portfolio(&budgeted());
        let mut obs = Observer::null();
        let run = synthesize_portfolio_attributed(&spec, &configs, &mut obs);
        let best = run.result.expect("solution");
        let winner = run.winner.expect("winner exists when result is Ok");
        assert_eq!(run.outcomes.len(), configs.len());
        assert_eq!(
            run.outcomes[winner].gates,
            Some(best.circuit.gate_count() as u32),
            "winner outcome must match the returned circuit"
        );
        // No losing configuration did strictly better.
        for o in &run.outcomes {
            if let Some(g) = o.gates {
                assert!(g >= best.circuit.gate_count() as u32);
            }
        }
    }

    #[test]
    fn attributed_portfolio_reports_all_failures() {
        let spec = MultiPprm::from_permutation(&[0, 1, 2, 4, 3, 5, 6, 7], 3);
        let impossible = budgeted().with_max_gates(1);
        let configs = vec![impossible.clone(), impossible];
        let run = synthesize_portfolio_attributed(&spec, &configs, &mut Observer::null());
        assert!(run.result.is_err());
        assert_eq!(run.winner, None);
        assert!(run.outcomes.iter().all(|o| o.gates.is_none()));
    }

    #[test]
    fn portfolio_handles_five_variables() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        let p = rmrls_spec::random_permutation(5, &mut rng);
        let base = SynthesisOptions::new()
            .with_max_gates(60)
            .with_max_nodes(60_000)
            .with_stop_at_first(true);
        let result = synthesize_portfolio(&p.to_multi_pprm(), &default_portfolio(&base))
            .expect("some config cracks it");
        assert_eq!(result.circuit.to_permutation(), p.as_slice());
    }
}
