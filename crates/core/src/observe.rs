//! Search observation: streams structured events to an
//! [`EventSink`](rmrls_obs::EventSink) and aggregates metrics while a
//! search runs.
//!
//! The search loop calls the `on_*` hooks unconditionally; every hook
//! makes an `is_active` check first, so the default
//! [`Observer::null()`] costs one predictable branch per call site and
//! nothing else (verified by the `micro` bench in `rmrls-bench`).
//! Cheap always-on counters (pops, pushes, prunes, dedup hits, queue
//! peak) live directly in [`SearchStats`](crate::SearchStats); the
//! observer adds what those cannot express — histograms, gauges, and a
//! streamed event log.

use std::time::Duration;

use rmrls_circuit::Gate;
use rmrls_obs::{
    Counter, Event, EventSink, FlightRecorder, Gauge, Histogram, MetricsRegistry, MetricsSnapshot,
    NullSink, TraceKind, Value,
};

/// One in `EXPAND_SAMPLE_INTERVAL` node expansions is written to the
/// flight recorder; recording every expansion would churn the ring and
/// cost a timestamp per node on million-node runs.
const EXPAND_SAMPLE_INTERVAL: u64 = 64;

/// Bucket bounds for the Eq. 4 priority histogram. Priorities are
/// negative under the default A* mode (lower = deeper/worse), positive
/// under the paper's Eq. 4 modes; the range covers both.
const PRIORITY_BOUNDS: [f64; 12] = [
    -100.0, -50.0, -20.0, -10.0, -5.0, -2.0, 0.0, 1.0, 2.0, 5.0, 10.0, 20.0,
];

/// Bucket bounds for the terms-remaining histogram (PPRM term counts
/// grow roughly exponentially with width).
const TERMS_BOUNDS: [f64; 11] = [
    2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0,
];

/// A periodic progress snapshot, produced every
/// `TIME_CHECK_INTERVAL` popped nodes.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Nodes expanded so far.
    pub nodes_expanded: u64,
    /// Current priority-queue depth.
    pub queue_depth: usize,
    /// Gate count of the best solution so far, if any.
    pub best_gates: Option<u32>,
    /// Restarts performed so far.
    pub restarts: u64,
    /// Live PPRM terms currently held across frontier + queue (the
    /// quantity memory budgets cap).
    pub live_terms: u64,
    /// Memory sheds performed so far (degraded-mode evictions).
    pub memory_sheds: u64,
    /// Wall-clock time since the search started.
    pub elapsed: Duration,
}

struct ObserverMetrics {
    registry: MetricsRegistry,
    priority_hist: Histogram,
    terms_hist: Histogram,
    queue_depth: Gauge,
    candidates_scored: Counter,
    candidates_materialized: Counter,
    par_steals: Counter,
    par_shard_contention: Counter,
    par_dup_races_lost: Counter,
    par_spec_hits: Counter,
    par_spec_misses: Counter,
}

impl ObserverMetrics {
    fn new() -> ObserverMetrics {
        let mut registry = MetricsRegistry::new();
        let priority_hist = registry.histogram("push_priority", &PRIORITY_BOUNDS);
        let terms_hist = registry.histogram("terms_remaining", &TERMS_BOUNDS);
        let queue_depth = registry.gauge("queue_depth");
        let candidates_scored = registry.counter("candidates_scored");
        let candidates_materialized = registry.counter("candidates_materialized");
        let par_steals = registry.counter("parallel_steals");
        let par_shard_contention = registry.counter("parallel_shard_contention_retries");
        let par_dup_races_lost = registry.counter("parallel_dup_races_lost");
        let par_spec_hits = registry.counter("parallel_spec_hits");
        let par_spec_misses = registry.counter("parallel_spec_misses");
        ObserverMetrics {
            registry,
            priority_hist,
            terms_hist,
            queue_depth,
            candidates_scored,
            candidates_materialized,
            par_steals,
            par_shard_contention,
            par_dup_races_lost,
            par_spec_hits,
            par_spec_misses,
        }
    }
}

/// Collects events and metrics for one synthesis run.
///
/// Construct with [`Observer::null()`] (no overhead, the default used
/// by [`synthesize`](crate::synthesize)), or build an instrumented one:
///
/// ```
/// use rmrls_core::{synthesize_with_observer, Observer, SynthesisOptions};
/// use rmrls_obs::MemorySink;
/// use rmrls_pprm::MultiPprm;
///
/// let spec = MultiPprm::from_permutation(&[1, 0, 7, 2, 3, 4, 5, 6], 3);
/// let mut obs = Observer::with_sink(Box::new(MemorySink::new(1024))).with_metrics();
/// let result = synthesize_with_observer(&spec, &SynthesisOptions::new(), &mut obs)?;
/// let metrics = obs.metrics_snapshot().expect("metrics enabled");
/// assert!(metrics.counter("events_emitted").is_none()); // registry holds gauges/histograms
/// assert_eq!(result.circuit.gate_count(), 3);
/// # Ok::<(), rmrls_core::NoSolutionError>(())
/// ```
pub struct Observer {
    sink: Box<dyn EventSink>,
    sink_enabled: bool,
    metrics: Option<ObserverMetrics>,
    progress_fn: Option<ProgressFn>,
    recorder: Option<FlightRecorder>,
    expand_count: u64,
    active: bool,
}

/// Callback invoked on every progress snapshot; see
/// [`Observer::with_progress`].
pub type ProgressFn = Box<dyn FnMut(&Progress)>;

impl Observer {
    /// The zero-overhead observer: no sink, no metrics, no progress.
    pub fn null() -> Observer {
        Observer {
            sink: Box::new(NullSink),
            sink_enabled: false,
            metrics: None,
            progress_fn: None,
            recorder: None,
            expand_count: 0,
            active: false,
        }
    }

    /// An observer streaming events into `sink`.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Observer {
        let sink_enabled = sink.enabled();
        Observer {
            sink,
            sink_enabled,
            metrics: None,
            progress_fn: None,
            recorder: None,
            expand_count: 0,
            active: sink_enabled,
        }
    }

    /// Enables the metrics registry (priority / terms histograms and the
    /// queue-depth gauge).
    pub fn with_metrics(mut self) -> Observer {
        self.metrics = Some(ObserverMetrics::new());
        self.active = true;
        self
    }

    /// Registers a callback invoked on every progress snapshot.
    pub fn with_progress(mut self, f: ProgressFn) -> Observer {
        self.progress_fn = Some(f);
        self.active = true;
        self
    }

    /// Attaches a flight recorder. The recorder is a cheap `Rc` handle,
    /// so the caller keeps a clone and snapshots it after (or during)
    /// the run; the search writes sampled expansions, gauges, and
    /// anomaly records into it.
    pub fn with_recorder(mut self, recorder: FlightRecorder) -> Observer {
        self.recorder = Some(recorder);
        self.active = true;
        self
    }

    /// The attached flight recorder, if any. The search loop records
    /// anomalies (memory sheds, deadline expiry, cancellation) through
    /// this handle.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Whether any instrumentation is attached. The search loop guards
    /// each hook with this.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Events the sink could not keep (never silently lost).
    pub fn dropped_events(&self) -> u64 {
        self.sink.dropped_events()
    }

    /// Freezes the metrics, if enabled.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.metrics.as_ref().map(|m| m.registry.snapshot())
    }

    /// Emits a caller-constructed event (used by the portfolio and
    /// embedding layers for attribution events).
    pub fn emit(&mut self, event: Event) {
        if self.sink_enabled {
            self.sink.emit(event);
        }
    }

    pub(crate) fn on_run_start(&mut self, num_vars: usize, init_terms: usize) {
        if let Some(r) = &self.recorder {
            r.phase_enter("search");
        }
        if self.sink_enabled {
            self.sink.emit(Event::new(
                "run_start",
                vec![
                    ("vars", Value::from(num_vars)),
                    ("terms", Value::from(init_terms)),
                ],
            ));
        }
    }

    pub(crate) fn on_expand(&mut self, depth: u32, terms: usize) {
        if let Some(r) = &self.recorder {
            if self.expand_count.is_multiple_of(EXPAND_SAMPLE_INTERVAL) {
                r.record(TraceKind::Expand {
                    depth,
                    terms: terms as u64,
                });
            }
            self.expand_count += 1;
        }
        if self.sink_enabled {
            self.sink.emit(Event::new(
                "expand",
                vec![("depth", Value::from(depth)), ("terms", Value::from(terms))],
            ));
        }
        if let Some(m) = &self.metrics {
            m.terms_hist.record(terms as f64);
        }
    }

    pub(crate) fn on_push(
        &mut self,
        gate: Gate,
        depth: u32,
        eliminated: i64,
        priority: f64,
        terms: usize,
        queue_depth: usize,
    ) {
        if let Some(m) = &self.metrics {
            m.priority_hist.record(priority);
            m.terms_hist.record(terms as f64);
            m.queue_depth.set(queue_depth as i64);
        }
        if self.sink_enabled {
            self.sink.emit(Event::new(
                "push",
                vec![
                    ("gate", Value::from(gate.to_string())),
                    ("depth", Value::from(depth)),
                    ("eliminated", Value::Int(eliminated)),
                    ("priority", Value::from(priority)),
                    ("terms", Value::from(terms)),
                ],
            ));
        }
    }

    pub(crate) fn on_solution(&mut self, depth: u32, improved: bool) {
        if self.sink_enabled {
            self.sink.emit(Event::new(
                "solution",
                vec![
                    ("depth", Value::from(depth)),
                    ("improved", Value::from(improved)),
                ],
            ));
        }
    }

    pub(crate) fn on_restart(&mut self, ordinal: u64, segment_nodes: u64, segment: Duration) {
        if self.sink_enabled {
            self.sink.emit(Event::new(
                "restart",
                vec![
                    ("ordinal", Value::from(ordinal)),
                    ("segment_nodes", Value::from(segment_nodes)),
                    ("segment_seconds", Value::from(segment.as_secs_f64())),
                ],
            ));
        }
    }

    pub(crate) fn on_progress(&mut self, progress: &Progress) {
        if let Some(r) = &self.recorder {
            r.gauge("queue_depth", progress.queue_depth as i64);
        }
        if let Some(m) = &self.metrics {
            m.queue_depth.set(progress.queue_depth as i64);
        }
        if self.sink_enabled {
            self.sink.emit(Event::new(
                "progress",
                vec![
                    ("nodes", Value::from(progress.nodes_expanded)),
                    ("queue", Value::from(progress.queue_depth)),
                    (
                        "best_gates",
                        match progress.best_gates {
                            Some(g) => Value::from(g),
                            None => Value::Int(-1),
                        },
                    ),
                    ("restarts", Value::from(progress.restarts)),
                    ("seconds", Value::from(progress.elapsed.as_secs_f64())),
                ],
            ));
        }
        if let Some(f) = &mut self.progress_fn {
            f(progress);
        }
    }

    /// Records the final scored/materialized totals of the two-phase
    /// expansion kernel. Called once, at the end of the run — the search
    /// loop keeps these as plain `SearchStats` counters rather than
    /// paying a hook per candidate.
    pub(crate) fn on_candidate_totals(&mut self, scored: u64, materialized: u64) {
        if let Some(m) = &self.metrics {
            m.candidates_scored.add(scored);
            m.candidates_materialized.add(materialized);
        }
    }

    /// Records the parallel-search totals (steals, shard contention,
    /// dedup races lost, speculation hit/miss). Called once at the end
    /// of the run, after the worker pool has been joined; all zeros on
    /// serial runs, so the exported counters stay present but inert.
    pub(crate) fn on_parallel_totals(&mut self, stats: &crate::SearchStats) {
        if let Some(m) = &self.metrics {
            m.par_steals.add(stats.steals);
            m.par_shard_contention.add(stats.shard_contention_retries);
            m.par_dup_races_lost.add(stats.dup_races_lost);
            m.par_spec_hits.add(stats.spec_hits);
            m.par_spec_misses.add(stats.spec_misses);
        }
        if self.sink_enabled && stats.threads_used > 1 {
            self.sink.emit(Event::new(
                "parallel_totals",
                vec![
                    ("threads", Value::from(stats.threads_used)),
                    ("spec_hits", Value::from(stats.spec_hits)),
                    ("spec_misses", Value::from(stats.spec_misses)),
                    ("steals", Value::from(stats.steals)),
                    (
                        "shard_contention_retries",
                        Value::from(stats.shard_contention_retries),
                    ),
                    ("dup_races_lost", Value::from(stats.dup_races_lost)),
                ],
            ));
        }
    }

    pub(crate) fn on_run_end(&mut self, stop_reason: &str, nodes: u64, gates: Option<u32>) {
        if let Some(r) = &self.recorder {
            r.phase_exit("search");
        }
        if self.sink_enabled {
            self.sink.emit(Event::new(
                "run_end",
                vec![
                    ("stop_reason", Value::from(stop_reason)),
                    ("nodes", Value::from(nodes)),
                    (
                        "gates",
                        match gates {
                            Some(g) => Value::from(g),
                            None => Value::Int(-1),
                        },
                    ),
                ],
            ));
        }
    }
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("active", &self.active)
            .field("sink_enabled", &self.sink_enabled)
            .field("metrics", &self.metrics.is_some())
            .field("progress_fn", &self.progress_fn.is_some())
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmrls_obs::MemorySink;

    #[test]
    fn null_observer_is_inactive() {
        let obs = Observer::null();
        assert!(!obs.is_active());
        assert_eq!(obs.dropped_events(), 0);
        assert!(obs.metrics_snapshot().is_none());
    }

    #[test]
    fn metrics_only_observer_records_histograms_without_sink() {
        let mut obs = Observer::null().with_metrics();
        assert!(obs.is_active());
        obs.on_push(Gate::not(0), 1, 2, 0.5, 7, 3);
        obs.on_expand(1, 7);
        let snap = obs.metrics_snapshot().unwrap();
        let (_, priority) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "push_priority")
            .unwrap();
        assert_eq!(priority.count, 1);
        let (_, terms) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "terms_remaining")
            .unwrap();
        assert_eq!(terms.count, 2);
        let (_, depth, high) = snap
            .gauges
            .iter()
            .find(|(n, _, _)| n == "queue_depth")
            .cloned()
            .unwrap();
        assert_eq!((depth, high), (3, 3));
    }

    #[test]
    fn sink_observer_streams_events() {
        let mut obs = Observer::with_sink(Box::new(MemorySink::new(16)));
        obs.on_run_start(3, 9);
        obs.on_solution(3, true);
        obs.on_run_end("first solution", 5, Some(3));
        // The sink is type-erased; verify via drop count (none) and the
        // metrics-free state.
        assert!(obs.is_active());
        assert_eq!(obs.dropped_events(), 0);
    }

    #[test]
    fn recorder_observer_samples_expansions_and_brackets_the_run() {
        let rec = FlightRecorder::with_default_budget();
        let mut obs = Observer::null().with_recorder(rec.clone());
        assert!(obs.is_active());
        assert!(obs.recorder().is_some());
        obs.on_run_start(3, 9);
        for _ in 0..(2 * EXPAND_SAMPLE_INTERVAL) {
            obs.on_expand(1, 9);
        }
        obs.on_progress(&Progress {
            nodes_expanded: 128,
            queue_depth: 17,
            best_gates: None,
            restarts: 0,
            live_terms: 40,
            memory_sheds: 0,
            elapsed: Duration::from_millis(1),
        });
        obs.on_run_end("first solution", 128, Some(3));

        let snap = rec.snapshot();
        let expands = snap
            .records
            .iter()
            .filter(|r| matches!(r.kind, TraceKind::Expand { .. }))
            .count();
        assert_eq!(
            expands, 2,
            "one sample per {EXPAND_SAMPLE_INTERVAL} expansions"
        );
        assert!(matches!(
            &snap.records.first().unwrap().kind,
            TraceKind::PhaseEnter { phase } if phase == "search"
        ));
        assert!(matches!(
            &snap.records.last().unwrap().kind,
            TraceKind::PhaseExit { phase } if phase == "search"
        ));
        assert!(snap.records.iter().any(|r| matches!(
            &r.kind,
            TraceKind::Gauge { name, value: 17 } if name == "queue_depth"
        )));
    }

    #[test]
    fn progress_callback_fires() {
        let count = std::rc::Rc::new(std::cell::Cell::new(0));
        let c2 = count.clone();
        let mut obs = Observer::null().with_progress(Box::new(move |p| {
            assert_eq!(p.nodes_expanded, 256);
            c2.set(c2.get() + 1);
        }));
        obs.on_progress(&Progress {
            nodes_expanded: 256,
            queue_depth: 10,
            best_gates: None,
            restarts: 0,
            live_terms: 12,
            memory_sheds: 1,
            elapsed: Duration::from_millis(5),
        });
        assert_eq!(count.get(), 1);
    }
}
