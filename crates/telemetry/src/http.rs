//! A deliberately tiny HTTP/1.1 implementation: parse a request head
//! and an optional `Content-Length`-bounded body, write a
//! `Connection: close` response.
//!
//! The build environment is offline, so this is written from scratch
//! against RFC 9112. It supports exactly what the scrape server and
//! the synthesis daemon need — `GET`/`HEAD` without a body and `POST`
//! with a length-delimited one — and rejects everything else early
//! with a typed error that maps onto the right status code (405 for
//! unsupported methods, 413 for oversized bodies, 400 for everything
//! malformed). Each connection serves one request and closes, which
//! keeps the server loops free of keep-alive state.
//!
//! The head is read byte-at-a-time so that after the blank line the
//! stream is positioned exactly at the body — no buffered over-read to
//! hand back. Heads are tiny (8 KiB cap) and arrive in one segment in
//! practice, so the per-byte reads cost nothing measurable next to a
//! synthesis run.

use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on the request head (request line + headers). Scrape
/// and submit requests are tiny; anything larger is hostile or
/// confused.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Default cap on request bodies accepted by [`read_request`]. Callers
/// with a real body route use [`read_request_limited`] and pick their
/// own bound.
pub const DEFAULT_BODY_LIMIT: usize = 64 * 1024;

/// How reading a request failed, carrying enough type information for
/// the server to answer with the right status code (or to stay silent
/// when no answer can reach the peer).
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically broken request (bad request line, bad header,
    /// oversized head, truncated body). Answer 400.
    Malformed(String),
    /// A well-formed request using a method this server never routes
    /// (`PUT`, `DELETE`, ...). Answer 405.
    MethodNotAllowed(String),
    /// The declared `Content-Length` exceeds the caller's body cap.
    /// Answer 413.
    PayloadTooLarge {
        /// The cap that was exceeded.
        limit: usize,
    },
    /// Socket-level failure: the peer vanished before a full request
    /// arrived, or a read timed out (a stalled client). No response
    /// can usefully be written.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::MethodNotAllowed(m) => write!(f, "method not allowed: {m}"),
            HttpError::PayloadTooLarge { limit } => {
                write!(f, "request body exceeds {limit} bytes")
            }
            HttpError::Io(e) => write!(f, "i/o error reading request: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl HttpError {
    /// The response this error deserves, or `None` when the connection
    /// is beyond answering (the peer is gone or stalled past its read
    /// timeout).
    pub fn to_response(&self) -> Option<Response> {
        match self {
            HttpError::Malformed(m) => Some(Response::text(400, &format!("bad request: {m}"))),
            HttpError::MethodNotAllowed(m) => Some(
                Response::text(405, &format!("method {m} not supported"))
                    .with_header("Allow", "GET, HEAD, POST"),
            ),
            HttpError::PayloadTooLarge { limit } => Some(Response::text(
                413,
                &format!("request body exceeds the {limit}-byte cap"),
            )),
            HttpError::Io(_) => None,
        }
    }

    /// Whether this error is a read timeout — the stalled-client case
    /// the per-connection timeout exists to cut off.
    pub fn is_timeout(&self) -> bool {
        matches!(&self, HttpError::Io(e)
            if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut))
    }
}

/// A parsed request: the request line plus an optional body. Headers
/// other than `Content-Length` are read and discarded; the routes
/// these servers expose do not depend on them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `HEAD`, `POST`).
    pub method: String,
    /// Request target with any query string stripped.
    pub path: String,
    /// Request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8.
    ///
    /// # Errors
    ///
    /// When the body is not valid UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not UTF-8".to_string()))
    }
}

/// Reads one line (through `\n`) byte-at-a-time, charging `budget`.
/// Returns the line without its `\r\n`/`\n` terminator.
fn read_line<R: Read>(stream: &mut R, budget: &mut usize) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if *budget == 0 {
            return Err(HttpError::Malformed(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(HttpError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside request head",
                )))
            }
            Ok(_) => {
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 request head".to_string()));
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads and parses one request (head plus `Content-Length`-delimited
/// body) from `stream`, with the body capped at [`DEFAULT_BODY_LIMIT`].
///
/// # Errors
///
/// See [`read_request_limited`].
pub fn read_request<R: Read>(stream: R) -> Result<Request, HttpError> {
    read_request_limited(stream, DEFAULT_BODY_LIMIT)
}

/// [`read_request`] with a caller-chosen body cap.
///
/// A request without a `Content-Length` header has an empty body (this
/// server never accepts `Transfer-Encoding`). A declared length above
/// `max_body` is rejected as [`HttpError::PayloadTooLarge`] *before*
/// any body byte is read, so an attacker cannot make the server buffer
/// an arbitrarily large upload. Methods other than `GET`/`HEAD`/`POST`
/// are rejected as [`HttpError::MethodNotAllowed`].
///
/// A stalled client surfaces as [`HttpError::Io`] once the stream's
/// read timeout (set by the server's accept loop) fires; see
/// [`HttpError::is_timeout`].
///
/// # Errors
///
/// [`HttpError`], typed by failure class.
pub fn read_request_limited<R: Read>(mut stream: R, max_body: usize) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(&mut stream, &mut budget)?;
    if request_line.is_empty() {
        return Err(HttpError::Malformed("empty request line".to_string()));
    }
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "malformed request line: {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol version: {version}"
        )));
    }
    if !matches!(method, "GET" | "HEAD" | "POST") {
        return Err(HttpError::MethodNotAllowed(method.to_string()));
    }
    // Drain headers up to the blank line, capturing Content-Length.
    let mut content_length: Option<usize> = None;
    loop {
        let header = read_line(&mut stream, &mut budget)?;
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Malformed(format!(
                "malformed header: {header:?}"
            )));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let parsed: usize = value.trim().parse().map_err(|_| {
                HttpError::Malformed(format!("bad Content-Length: {:?}", value.trim()))
            })?;
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(HttpError::Malformed(
                    "conflicting Content-Length headers".to_string(),
                ));
            }
            content_length = Some(parsed);
        }
    }
    let length = content_length.unwrap_or(0);
    if length > max_body {
        return Err(HttpError::PayloadTooLarge { limit: max_body });
    }
    let mut body = vec![0u8; length];
    if length > 0 {
        stream.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::Malformed(format!(
                    "body shorter than its Content-Length ({length} bytes declared)"
                ))
            } else {
                HttpError::Io(e)
            }
        })?;
    }
    let path = target.split(['?', '#']).next().unwrap_or(target);
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// Finishes an errored connection politely: writes the response `err`
/// deserves (if any), half-closes the write side, then drains what the
/// client is still sending (bounded by the stream's read timeout and a
/// 1 MiB cap) so the final close is graceful. Closing with unread
/// bytes in the receive buffer makes the kernel send RST, which can
/// discard the error response before the peer reads it — draining
/// first is what lets a client actually observe its 400/405/413.
pub fn respond_to_error(stream: &std::net::TcpStream, err: &HttpError) {
    let Some(resp) = err.to_response() else {
        return;
    };
    let _ = write_response(stream, &resp, false);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    let mut remaining: usize = 1 << 20;
    let mut reader = stream;
    while remaining > 0 {
        match Read::read(&mut reader, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => remaining = remaining.saturating_sub(n),
        }
    }
}

/// An HTTP response ready to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (`200`, `404`, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Additional headers (e.g. `Retry-After` on a 429).
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A 200 response with the given content type.
    pub fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            content_type,
            body,
            headers: Vec::new(),
        }
    }

    /// A JSON response with an arbitrary status code.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            headers: Vec::new(),
        }
    }

    /// A plain-text response with an arbitrary status code.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{body}\n"),
            headers: Vec::new(),
        }
    }

    /// Adds a header line (builder-style).
    pub fn with_header(mut self, name: &'static str, value: &str) -> Response {
        self.headers.push((name, value.to_string()));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serializes `resp` onto `stream` as a `Connection: close` HTTP/1.1
/// response. For `HEAD` requests pass `head = true`: the headers
/// (including `Content-Length`) are written but the body is omitted.
pub fn write_response<W: Write>(mut stream: W, resp: &Response, head: bool) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    )?;
    for (name, value) in &resp.headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    if !head {
        stream.write_all(resp.body.as_bytes())?;
    }
    stream.flush()
}

/// Writes the head of a streaming response: status line and headers
/// with **no** `Content-Length` — the body is whatever the caller
/// writes afterwards, delimited by connection close (legal for
/// `Connection: close` HTTP/1.1 responses). Used for JSONL event
/// streams, where the length is unknowable up front.
pub fn write_stream_head<W: Write>(
    mut stream: W,
    status: u16,
    content_type: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_get() {
        let raw = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn strips_query_strings() {
        let raw = b"GET /jobs?limit=5 HTTP/1.1\r\n\r\n";
        assert_eq!(read_request(&raw[..]).unwrap().path, "/jobs");
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let raw = b"POST /synthesize HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/synthesize");
        assert_eq!(req.body_str().unwrap(), "hello world");
    }

    #[test]
    fn post_without_content_length_has_empty_body() {
        let raw = b"POST /synthesize HTTP/1.1\r\nHost: x\r\n\r\n";
        assert!(read_request(&raw[..]).unwrap().body.is_empty());
    }

    #[test]
    fn body_is_read_exactly_to_its_declared_length() {
        let raw = b"POST /s HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcdefgh";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.body, b"abcde");
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading_them() {
        // The body bytes are NOT present: the cap must trip on the
        // declared length alone.
        let raw = b"POST /s HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        match read_request_limited(&raw[..], 1024).unwrap_err() {
            HttpError::PayloadTooLarge { limit } => assert_eq!(limit, 1024),
            other => panic!("want PayloadTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_methods_get_a_405_class_error() {
        for method in ["PUT", "DELETE", "PATCH", "OPTIONS"] {
            let raw = format!("{method} /x HTTP/1.1\r\n\r\n");
            match read_request(raw.as_bytes()).unwrap_err() {
                HttpError::MethodNotAllowed(m) => assert_eq!(m, method),
                other => panic!("want MethodNotAllowed, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_bodies_are_malformed_not_hangs() {
        let raw = b"POST /s HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        match read_request(&raw[..]).unwrap_err() {
            HttpError::Malformed(m) => assert!(m.contains("Content-Length"), "{m}"),
            other => panic!("want Malformed, got {other:?}"),
        }
    }

    #[test]
    fn bad_and_conflicting_content_lengths_are_malformed() {
        let raw = b"POST /s HTTP/1.1\r\nContent-Length: ten\r\n\r\n";
        assert!(matches!(
            read_request(&raw[..]).unwrap_err(),
            HttpError::Malformed(_)
        ));
        let raw = b"POST /s HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd";
        assert!(matches!(
            read_request(&raw[..]).unwrap_err(),
            HttpError::Malformed(_)
        ));
    }

    /// A slow-loris body: the head (with its `Content-Length`) arrives
    /// promptly, then the peer stalls and the socket's read timeout
    /// fires on every subsequent read.
    struct StalledBody {
        head: &'static [u8],
        at: usize,
    }

    impl io::Read for StalledBody {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at < self.head.len() {
                let n = buf.len().min(self.head.len() - self.at);
                buf[..n].copy_from_slice(&self.head[self.at..self.at + n]);
                self.at += n;
                Ok(n)
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "read timed out"))
            }
        }
    }

    #[test]
    fn a_stalled_body_surfaces_as_a_timeout_not_a_hang() {
        // The read timeout interrupts the body read; the error is
        // recognizably a timeout (so servers log it as a stalled
        // client) and earns no response (nobody is listening).
        let stalled = StalledBody {
            head: b"POST /synthesize HTTP/1.1\r\nHost: x\r\nContent-Length: 50\r\n\r\n{\"kind",
            at: 0,
        };
        let e = read_request(stalled).unwrap_err();
        assert!(e.is_timeout(), "{e:?}");
        assert!(e.to_response().is_none());
    }

    #[test]
    fn rejects_garbage_and_eof() {
        assert!(matches!(
            read_request(&b"not http\r\n\r\n"[..]).unwrap_err(),
            HttpError::Malformed(_)
        ));
        assert!(matches!(
            read_request(&b""[..]).unwrap_err(),
            HttpError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
        assert!(matches!(
            read_request(&b"GET / HTTP/1.1\r\nHost: x"[..]).unwrap_err(),
            HttpError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn rejects_http2_preface() {
        let raw = b"PRI * HTTP/2.0\r\n\r\n";
        assert!(matches!(
            read_request(&raw[..]).unwrap_err(),
            HttpError::Malformed(_)
        ));
    }

    #[test]
    fn caps_oversized_heads() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        match read_request(&raw[..]).unwrap_err() {
            HttpError::Malformed(m) => assert!(m.contains("head exceeds"), "{m}"),
            other => panic!("want Malformed, got {other:?}"),
        }
    }

    #[test]
    fn errors_map_to_the_right_status_codes() {
        let status = |e: &HttpError| e.to_response().map(|r| r.status);
        assert_eq!(status(&HttpError::Malformed("x".into())), Some(400));
        assert_eq!(
            status(&HttpError::MethodNotAllowed("PUT".into())),
            Some(405)
        );
        assert_eq!(status(&HttpError::PayloadTooLarge { limit: 1 }), Some(413));
        assert_eq!(
            status(&HttpError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "gone"
            ))),
            None,
            "no response to a vanished peer"
        );
        let timeout = HttpError::Io(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
        assert!(timeout.is_timeout());
        assert!(!HttpError::Malformed("x".into()).is_timeout());
    }

    #[test]
    fn method_not_allowed_response_names_the_allowed_set() {
        let resp = HttpError::MethodNotAllowed("PUT".into())
            .to_response()
            .unwrap();
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| *n == "Allow" && v.contains("POST")));
    }

    #[test]
    fn writes_conformant_responses() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            &Response::ok("application/json", "{}".into()),
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_are_written() {
        let mut out = Vec::new();
        let resp = Response::text(429, "saturated").with_header("Retry-After", "1");
        write_response(&mut out, &resp, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
    }

    #[test]
    fn head_omits_the_body_but_keeps_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::text(404, "no such route"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 14\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn stalled_clients_surface_as_a_timeout_error() {
        use std::net::{TcpListener, TcpStream};
        use std::time::Duration;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A client that connects, sends half a request, and stalls.
        let client = TcpStream::connect(addr).unwrap();
        {
            use std::io::Write;
            let mut c = &client;
            c.write_all(b"POST /synthesize HTTP/1.1\r\nConte").unwrap();
        }
        let (server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let err = read_request(&server_side).unwrap_err();
        assert!(err.is_timeout(), "want timeout, got {err:?}");
        assert!(err.to_response().is_none(), "no response to a stalled peer");
    }

    #[test]
    fn stream_head_has_no_content_length() {
        let mut out = Vec::new();
        write_stream_head(&mut out, 200, "application/x-ndjson").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.ends_with("\r\n\r\n"));
    }
}
