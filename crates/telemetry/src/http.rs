//! A deliberately tiny HTTP/1.1 implementation: parse a request line,
//! skip headers, write a `Connection: close` response.
//!
//! The build environment is offline, so this is written from scratch
//! against RFC 9112. It supports exactly what a scraper needs —
//! `GET`/`HEAD` with no request body — and rejects everything else
//! early. Each connection serves one request and closes, which keeps
//! the server loop free of keep-alive state.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Upper bound on the request head (request line + headers). Scrape
/// requests are tiny; anything larger is hostile or confused.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request line. Headers are read and discarded; the routes
/// this server exposes do not depend on them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `HEAD`, ...).
    pub method: String,
    /// Request target with any query string stripped.
    pub path: String,
}

/// Reads and parses one request head from `stream`.
///
/// Returns `InvalidData` on malformed input and `UnexpectedEof` when
/// the peer closes before a full head arrives.
pub fn read_request<R: Read>(stream: R) -> io::Result<Request> {
    let mut reader = BufReader::new(stream.take(MAX_HEAD_BYTES as u64));
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before request line",
        ));
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line: {line:?}"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported protocol version: {version}"),
        ));
    }
    // Drain headers up to the blank line; `take` caps total head size.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside headers",
            ));
        }
        if header == "\r\n" || header == "\n" {
            break;
        }
    }
    let path = target.split(['?', '#']).next().unwrap_or(target);
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
    })
}

/// An HTTP response ready to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (`200`, `404`, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A 200 response with the given content type.
    pub fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// A plain-text response with an arbitrary status code.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{body}\n"),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serializes `resp` onto `stream` as a `Connection: close` HTTP/1.1
/// response. For `HEAD` requests pass `head = true`: the headers
/// (including `Content-Length`) are written but the body is omitted.
pub fn write_response<W: Write>(mut stream: W, resp: &Response, head: bool) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    )?;
    if !head {
        stream.write_all(resp.body.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_get() {
        let raw = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
    }

    #[test]
    fn strips_query_strings() {
        let raw = b"GET /jobs?limit=5 HTTP/1.1\r\n\r\n";
        assert_eq!(read_request(&raw[..]).unwrap().path, "/jobs");
    }

    #[test]
    fn rejects_garbage_and_eof() {
        assert_eq!(
            read_request(&b"not http\r\n\r\n"[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        assert_eq!(
            read_request(&b""[..]).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert_eq!(
            read_request(&b"GET / HTTP/1.1\r\nHost: x"[..])
                .unwrap_err()
                .kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn rejects_http2_preface() {
        let raw = b"PRI * HTTP/2.0\r\n\r\n";
        assert_eq!(
            read_request(&raw[..]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn caps_oversized_heads() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        let err = read_request(&raw[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn writes_conformant_responses() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            &Response::ok("application/json", "{}".into()),
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn head_omits_the_body_but_keeps_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::text(404, "no such route"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 14\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }
}
