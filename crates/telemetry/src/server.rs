//! The scrape server: a blocking accept loop on a dedicated thread,
//! answering `GET /metrics`, `GET /healthz`, and `GET /jobs` from
//! provider closures.
//!
//! Providers are plain `Fn() -> String` closures so the server knows
//! nothing about registries, engines, or job state — the caller wires
//! those in. Each scrape calls the provider at request time, so
//! responses always reflect *current* state, not state captured at
//! bind time.
//!
//! Shutdown is cooperative: [`TelemetryServer::shutdown`] flips a stop
//! flag, then opens one throwaway connection to its own listener to
//! unblock `accept`, then joins the thread. No request in flight is
//! aborted; the loop finishes serving it, sees the flag, and exits.

use crate::http::{read_request, respond_to_error, write_response, Request, Response};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Prometheus text exposition content type (format version 0.0.4).
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Per-connection socket timeout: a scraper that stalls longer than
/// this is cut off so it cannot wedge the accept loop.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

type Provider = Box<dyn Fn() -> String + Send + Sync>;

/// The three route bodies the server can produce.
pub struct Providers {
    /// Body of `GET /metrics` (Prometheus text exposition format).
    pub metrics: Provider,
    /// Body of `GET /healthz` (JSON liveness document).
    pub healthz: Provider,
    /// Body of `GET /jobs` (JSON job-status snapshot).
    pub jobs: Provider,
}

/// A running scrape endpoint. Dropping without calling
/// [`shutdown`](TelemetryServer::shutdown) detaches the accept thread;
/// prefer an explicit shutdown so the port is released promptly.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop. The bound address — with the real port —
    /// is available via [`local_addr`](TelemetryServer::local_addr).
    pub fn bind<A: ToSocketAddrs>(addr: A, providers: Providers) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let requests = Arc::clone(&requests);
            std::thread::Builder::new()
                .name("rmrls-telemetry".into())
                .spawn(move || accept_loop(&listener, &providers, &stop, &requests))?
        };
        Ok(TelemetryServer {
            addr,
            stop,
            requests,
            thread: Some(thread),
        })
    }

    /// The address the listener actually bound (real port even when
    /// the caller asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests served so far (any route, any status).
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // `accept` has no timeout; a throwaway self-connection wakes
        // the loop so it can observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        let _ = thread.join();
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    providers: &Providers,
    stop: &AtomicBool,
    requests: &AtomicU64,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
        requests.fetch_add(1, Ordering::Relaxed);
        serve_one(stream, providers);
    }
}

/// Serves a single connection. Errors are swallowed deliberately: a
/// scraper disconnecting mid-response must never take the batch down.
/// Parse failures map to their status via [`HttpError::to_response`];
/// a vanished or stalled peer (`HttpError::Io`) gets no response.
fn serve_one(stream: TcpStream, providers: &Providers) {
    let request = match read_request(&stream) {
        Ok(r) => r,
        Err(e) => {
            respond_to_error(&stream, &e);
            return;
        }
    };
    let head = request.method == "HEAD";
    let response = route(&request, providers);
    let _ = write_response(&stream, &response, head);
}

fn route(request: &Request, providers: &Providers) -> Response {
    if request.method != "GET" && request.method != "HEAD" {
        return Response::text(405, "only GET is supported");
    }
    match request.path.as_str() {
        "/metrics" => Response::ok(PROMETHEUS_CONTENT_TYPE, (providers.metrics)()),
        "/healthz" => Response::ok("application/json", (providers.healthz)()),
        "/jobs" => Response::ok("application/json", (providers.jobs)()),
        _ => Response::text(404, "no such route (try /metrics, /healthz, /jobs)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::sync::atomic::AtomicUsize;

    fn constant_providers() -> Providers {
        Providers {
            metrics: Box::new(|| "rmrls_up 1\n".into()),
            healthz: Box::new(|| "{\"ok\":true}".into()),
            jobs: Box::new(|| "[]".into()),
        }
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
        request(addr, "GET", target)
    }

    fn request(addr: SocketAddr, method: &str, target: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "{method} {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status: u16 = raw.split(' ').nth(1).unwrap().parse().unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        (status, head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_three_routes() {
        let server = TelemetryServer::bind("127.0.0.1:0", constant_providers()).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);

        let (status, head, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(head.contains("text/plain; version=0.0.4"));
        assert_eq!(body, "rmrls_up 1\n");

        let (status, head, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(head.contains("application/json"));
        assert_eq!(body, "{\"ok\":true}");

        let (status, _, body) = get(addr, "/jobs");
        assert_eq!(status, 200);
        assert_eq!(body, "[]");

        assert_eq!(server.requests_served(), 3);
        server.shutdown();
    }

    #[test]
    fn providers_are_called_per_scrape_not_at_bind() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let providers = Providers {
            metrics: Box::new(move || {
                let n = c.fetch_add(1, Ordering::SeqCst) + 1;
                format!("rmrls_scrapes {n}\n")
            }),
            healthz: Box::new(|| "{}".into()),
            jobs: Box::new(|| "[]".into()),
        };
        let server = TelemetryServer::bind("127.0.0.1:0", providers).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        assert_eq!(get(server.local_addr(), "/metrics").2, "rmrls_scrapes 1\n");
        assert_eq!(get(server.local_addr(), "/metrics").2, "rmrls_scrapes 2\n");
        server.shutdown();
    }

    #[test]
    fn unknown_routes_and_methods_are_rejected() {
        let server = TelemetryServer::bind("127.0.0.1:0", constant_providers()).unwrap();
        let addr = server.local_addr();
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(request(addr, "POST", "/metrics").0, 405);
        let (status, head, body) = request(addr, "HEAD", "/healthz");
        assert_eq!(status, 200);
        assert!(head.contains("Content-Length: 11"));
        assert_eq!(body, "");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_and_do_not_kill_the_loop() {
        let server = TelemetryServer::bind("127.0.0.1:0", constant_providers()).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"definitely not http\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400 "), "{raw}");
        // The loop survived and still serves.
        assert_eq!(get(addr, "/healthz").0, 200);
        server.shutdown();
    }

    #[test]
    fn shutdown_releases_the_port_and_joins() {
        let server = TelemetryServer::bind("127.0.0.1:0", constant_providers()).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // Rebinding the same port succeeds once the listener is gone.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "{rebound:?}");
        drop(rebound);
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn drop_also_shuts_down() {
        let addr;
        {
            let server = TelemetryServer::bind("127.0.0.1:0", constant_providers()).unwrap();
            addr = server.local_addr();
        }
        assert!(TcpListener::bind(addr).is_ok());
    }
}
