//! Live telemetry endpoint for RMRLS.
//!
//! A zero-dependency (std-only; the build is offline) HTTP/1.1 server
//! that exposes a running synthesis process to scrapers:
//!
//! - `GET /metrics` — Prometheus text exposition of a live registry
//! - `GET /healthz` — JSON liveness document with a degraded flag
//! - `GET /jobs` — JSON snapshot of per-job batch state
//!
//! The crate is intentionally ignorant of the engine: route bodies
//! come from caller-supplied [`Providers`] closures, evaluated at
//! request time so every scrape sees current state. The CLI wires the
//! closures to `rmrls-obs`'s `SyncRegistry` and the engine's job
//! status registry.
//!
//! The accept-loop/socket plumbing here is the seed of the future
//! `rmrls serve` subcommand; keeping it in its own crate means the
//! engine never links a socket unless telemetry is requested.
//!
//! ```no_run
//! use rmrls_telemetry::{Providers, TelemetryServer};
//!
//! let server = TelemetryServer::bind(
//!     "127.0.0.1:0",
//!     Providers {
//!         metrics: Box::new(|| "rmrls_up 1\n".into()),
//!         healthz: Box::new(|| "{\"status\":\"ok\"}".into()),
//!         jobs: Box::new(|| "[]".into()),
//!     },
//! )
//! .unwrap();
//! println!("scrape me at http://{}/metrics", server.local_addr());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod server;

pub use http::{
    read_request, read_request_limited, respond_to_error, write_response, write_stream_head,
    HttpError, Request, Response, DEFAULT_BODY_LIMIT,
};
pub use server::{Providers, TelemetryServer, PROMETHEUS_CONTENT_TYPE};
