//! Concurrent batch synthesis for RMRLS.
//!
//! The paper synthesizes one function at a time; the suites it is
//! measured against (Table IV, the Maslov benchmark sets) are batch
//! workloads. This crate serves them natively: a manifest of jobs runs
//! on a fixed worker pool, each job panic-isolated and budgeted, with
//! per-job JSONL results plus an aggregate report.
//!
//! - [`manifest`] — job lists (inline permutations, spec files, TFC
//!   circuits, bundled benchmark suites) with per-entry error records;
//! - [`canon`] — canonical representatives under wire relabeling, and
//!   SWAP-free conjugation of circuits between labelings;
//! - [`cache`] — the LRU memo cache over canonical tables;
//! - [`engine`] — the worker pool, job execution, the fallback ladder,
//!   verification, and result serialization;
//! - [`journal`] — the fsync'd write-ahead results journal behind
//!   checkpoint/resume;
//! - [`framing`] — the shared CRC32 + record-framing codec for binary
//!   durable files;
//! - [`store`] — the durable canonical circuit store (crash-safe,
//!   corruption-detecting, verified on load) that persists the cache
//!   across runs;
//! - [`fsutil`] — temp-file + atomic-rename writes for results and
//!   reports;
//! - [`signal`] — two-stage SIGINT shutdown (drain, then abort).
//!
//! # Quickstart
//!
//! ```
//! use rmrls_engine::{run_batch, suite_admissions, BatchOptions, ShutdownHandles};
//!
//! let jobs = suite_admissions("examples").unwrap();
//! let run = run_batch(&jobs, &BatchOptions::default(), &ShutdownHandles::new());
//! assert_eq!(run.counters.jobs_completed, 8);
//! assert_eq!(run.counters.panics_contained, 0);
//! ```

// The one unavoidable `unsafe` (the SIGINT handler registration) is
// quarantined in `signal::ffi` behind an explicit allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod canon;
pub mod engine;
pub mod framing;
pub mod fsutil;
pub mod journal;
pub mod manifest;
pub mod runner;
pub mod signal;
pub mod store;
pub mod telemetry;

pub use cache::{CacheKey, CircuitCache, SharedCache};
pub use canon::{canonical_form, relabel_circuit, uncanonicalize_circuit};
pub use engine::{
    run_batch, run_batch_resumable, BatchCounters, BatchOptions, BatchRun, JobOutcome, JobRecord,
    SinkFactory, SolveTier, BATCH_SCHEMA_VERSION,
};
pub use fsutil::{write_atomic, write_atomic_bytes};
pub use journal::{
    manifest_hash, options_fingerprint, read_journal, CompletedJob, JournalHeader, JournalWriter,
    ResumeData, JOURNAL_SCHEMA_VERSION,
};
pub use manifest::{
    admit_inline, load_manifest, parse_manifest, suite_admissions, Admission, BatchJob, SpecData,
};
pub use runner::JobRunner;
pub use signal::ShutdownHandles;
pub use store::{
    fsck, CircuitStore, FsckReport, InsertOutcome, SharedStore, StoreEntry, StoreStats,
    STORE_SCHEMA_VERSION,
};
pub use telemetry::{BatchTelemetry, JobState, JobStatus, JobStatusRegistry, SAMPLE_INTERVAL};
