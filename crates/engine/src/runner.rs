//! Single-job execution for long-lived callers.
//!
//! The batch engine owns its whole lifecycle: it builds a cache, runs
//! a worker pool over a fixed admission list, and tears everything
//! down. A service has the opposite shape — jobs arrive one at a time,
//! forever, and the cache must outlive each of them. [`JobRunner`] is
//! the engine's per-job core ([`run_one`]: canonicalize, cache,
//! ladder, verify, panic containment) re-packaged for that shape: the
//! runner is built once, holds the shared cache and the run counters,
//! and [`JobRunner::run`] executes one admission under a caller-chosen
//! deadline and cancel token.
//!
//! Everything that makes batch results trustworthy carries over
//! unchanged — the job runs under `catch_unwind`, the fallback ladder
//! and verification apply, `solved_by`/cache attribution is identical
//! — because it is literally the same code path.

use std::sync::Arc;
use std::time::Duration;

use rmrls_core::CancelToken;
use rmrls_obs::FlightRecorder;

use crate::cache::SharedCache;
use crate::engine::{run_one, write_job_traces, BatchOptions, JobRecord, RunCounters, SinkFactory};
use crate::manifest::Admission;
use crate::signal::ShutdownHandles;
use crate::telemetry::BatchTelemetry;

/// Executes admissions one at a time against a persistent shared cache
/// and counter set. Cheap to share behind an `Arc`; [`run`]
/// (JobRunner::run) takes `&self`, so any number of threads can run
/// jobs concurrently (the cache is the only shared mutable state, and
/// it has its own lock).
pub struct JobRunner {
    opts: BatchOptions,
    cache: Option<SharedCache>,
    counters: RunCounters,
}

impl JobRunner {
    /// A runner over `opts`. The cache is taken from
    /// `opts.shared_cache` when set, otherwise built from
    /// `opts.cache_size`; either way it persists across every
    /// [`run`](JobRunner::run) on this runner. Counters register on
    /// `opts.telemetry`'s registry when present (so they feed
    /// `/metrics` live), exactly as in batch mode.
    pub fn new(opts: BatchOptions) -> JobRunner {
        let cache = opts
            .shared_cache
            .clone()
            .or_else(|| opts.cache_size.map(SharedCache::new));
        let counters = RunCounters::new(opts.telemetry.as_deref());
        JobRunner {
            opts,
            cache,
            counters,
        }
    }

    /// The cache jobs run against (`None` when caching is disabled).
    pub fn cache(&self) -> Option<&SharedCache> {
        self.cache.as_ref()
    }

    /// The telemetry board the runner reports to, if any.
    pub fn telemetry(&self) -> Option<&Arc<BatchTelemetry>> {
        self.opts.telemetry.as_ref()
    }

    /// Runs one admission to completion.
    ///
    /// - `deadline` overrides the runner's configured per-job deadline
    ///   when given (a per-request deadline);
    /// - `cancel` aborts the search mid-flight when tripped (client
    ///   disconnect, service shutdown) — the job then reports
    ///   `unsolved` with a `cancelled` stop reason;
    /// - `slot` is the telemetry job-board slot to drive through
    ///   running → finished (ignored without a board);
    /// - `sink` builds a fresh event sink per search attempt for
    ///   streamed progress events.
    ///
    /// Never panics on job failure: panics inside the job are contained
    /// into a `panicked` record, exactly as in batch mode.
    pub fn run(
        &self,
        admission: &Admission,
        deadline: Option<Duration>,
        cancel: &CancelToken,
        slot: Option<usize>,
        sink: Option<&SinkFactory>,
    ) -> JobRecord {
        let mut opts = self.opts.clone();
        if deadline.is_some() {
            opts.deadline = deadline;
        }
        // The drain token is per-job and never tripped: drain semantics
        // (stop *starting* jobs) live in the caller's queue, not inside
        // a job that is already running. Abort is the caller's token.
        let shutdown = ShutdownHandles {
            drain: CancelToken::new(),
            abort: cancel.clone(),
        };
        let telemetry = opts.telemetry.clone();
        let board = telemetry.as_ref().zip(slot);
        if let Some((t, index)) = board {
            t.jobs.mark_running(index);
        }
        let recorder = opts
            .trace_dir
            .as_ref()
            .map(|_| FlightRecorder::with_default_budget());
        let record = run_one(
            admission,
            &opts,
            &shutdown,
            self.cache.as_ref(),
            &self.counters,
            recorder.as_ref(),
            board,
            sink,
        );
        if let Some((t, index)) = board {
            t.job_seconds.record(record.seconds);
            t.jobs.mark_finished(index, &record.outcome);
        }
        if let (Some(dir), Some(r)) = (opts.trace_dir.as_deref(), &recorder) {
            write_job_traces(dir, slot.unwrap_or(0), &record.name, r, &self.counters);
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{JobOutcome, SolveTier};
    use crate::manifest::admit_inline;

    fn runner(opts: BatchOptions) -> JobRunner {
        JobRunner::new(opts)
    }

    fn perm_job(name: &str) -> Admission {
        admit_inline(name, "perm", "1,0,3,2,5,4,7,6", "test".to_string())
    }

    #[test]
    fn runs_one_job_and_caches_it() {
        let r = runner(BatchOptions::default());
        let token = CancelToken::new();
        let first = r.run(&perm_job("a"), None, &token, None, None);
        assert!(!first.cache_hit);
        assert!(matches!(
            first.outcome,
            JobOutcome::Solved {
                verified: Some(true),
                ..
            }
        ));
        assert_eq!(r.cache().unwrap().len(), 1);
        // The same spec under a different name hits the warm cache with
        // identical attribution and a byte-identical circuit.
        let second = r.run(&perm_job("b"), None, &token, None, None);
        assert!(second.cache_hit);
        let gates = |rec: &JobRecord| match &rec.outcome {
            JobOutcome::Solved {
                circuit, solved_by, ..
            } => (format!("{:?}", circuit.gates()), *solved_by),
            other => panic!("want solved, got {other:?}"),
        };
        let (g1, t1) = gates(&first);
        let (g2, t2) = gates(&second);
        assert_eq!(g1, g2);
        assert_eq!(t1, SolveTier::Rmrls);
        assert_eq!(t2, SolveTier::Rmrls);
    }

    #[test]
    fn an_externally_shared_cache_is_used_as_is() {
        let shared = SharedCache::new(64);
        let opts = BatchOptions {
            shared_cache: Some(shared.clone()),
            ..BatchOptions::default()
        };
        let r = runner(opts);
        r.run(&perm_job("x"), None, &CancelToken::new(), None, None);
        assert_eq!(shared.len(), 1, "the caller's cache received the entry");
    }

    #[test]
    fn a_tripped_cancel_token_stops_the_job_cleanly() {
        let token = CancelToken::new();
        token.cancel();
        let r = runner(BatchOptions::default());
        // Wide enough that the search cannot finish before its first
        // budget poll sees the token.
        let hard = admit_inline(
            "hard",
            "perm",
            "7,6,5,4,3,2,1,0,15,14,13,12,11,10,9,8",
            "test".to_string(),
        );
        let record = r.run(&hard, None, &token, None, None);
        match record.outcome {
            JobOutcome::Unsolved { stop_reason } => assert_eq!(stop_reason, "cancelled"),
            other => panic!("want cancelled unsolved, got {other:?}"),
        }
    }

    #[test]
    fn bad_admissions_become_error_records_not_panics() {
        let r = runner(BatchOptions::default());
        let bad = admit_inline("bad", "perm", "0,0,0,0", "test".to_string());
        let record = r.run(&bad, None, &CancelToken::new(), None, None);
        assert!(matches!(record.outcome, JobOutcome::Error { .. }));
    }
}
