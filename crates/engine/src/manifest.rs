//! Batch manifests: a line-oriented job list for the engine.
//!
//! Format — one job (or suite expansion) per line, `#` comments and
//! blank lines ignored:
//!
//! ```text
//! # kind      argument
//! perm        1,0,7,2,3,4,5,6      # inline permutation table
//! permfile    specs/foo.perm       # .perm file (rmrls-spec format)
//! table       specs/bar.tt         # truth-table file (must be reversible)
//! tfc         specs/baz.tfc        # TFC circuit, re-synthesized
//! bench       hwb4                 # bundled benchmark by name
//! suite       table4               # whole bundled suite (table4 |
//!                                  # examples | extended | all)
//! ```
//!
//! Relative file paths resolve against the manifest's own directory.
//!
//! Loading is **total** over well-formed manifests: a malformed entry
//! (bad table, unparsable file, unknown benchmark, irreversible truth
//! table) becomes an [`Admission::Error`] carrying `file:line` context
//! and flows through the batch as a per-job error record in the JSONL
//! output. Only an unreadable manifest file itself aborts the load.

use std::path::Path;

use rmrls_pprm::MultiPprm;
use rmrls_spec::{benchmarks, formats, Permutation};

/// TFC circuits wider than this are rejected rather than tabulated
/// (matches the `rmrls synth --tfc` cap).
pub const TFC_WIDTH_LIMIT: usize = 16;

/// Longest accepted manifest line, in bytes. Inline permutation tables
/// for the widths the engine accepts fit comfortably; anything longer
/// is a corrupt or hostile file, admitted as a per-line error record
/// rather than parsed at unbounded cost.
pub const MANIFEST_MAX_LINE_LEN: usize = 1 << 20;

/// A job's specification, resolved and validated.
#[derive(Clone, Debug)]
pub enum SpecData {
    /// A fully tabulated permutation — canonicalizable and cacheable.
    Perm(Permutation),
    /// A symbolic multi-output PPRM (wide benchmarks that cannot be
    /// tabulated) — synthesized directly, bypassing the cache.
    Pprm(MultiPprm),
}

impl SpecData {
    /// Number of wires.
    pub fn width(&self) -> usize {
        match self {
            SpecData::Perm(p) => p.num_vars(),
            SpecData::Pprm(m) => m.num_vars(),
        }
    }
}

/// One runnable job.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// Display name (benchmark name, or `kind` + argument).
    pub name: String,
    /// Where the job came from (`manifest.txt:7`, or `suite:table4`).
    pub origin: String,
    /// The resolved specification.
    pub spec: SpecData,
}

/// A manifest entry after admission: either a runnable job or a
/// per-job error record that will flow through to the results.
#[derive(Clone, Debug)]
pub enum Admission {
    /// Well-formed entry.
    Job(BatchJob),
    /// Malformed entry — reported, never fatal to the batch.
    Error {
        /// Display name (best effort — the kind and argument).
        name: String,
        /// `file:line` context.
        origin: String,
        /// What was wrong.
        message: String,
    },
}

impl Admission {
    /// The entry's display name.
    pub fn name(&self) -> &str {
        match self {
            Admission::Job(j) => &j.name,
            Admission::Error { name, .. } => name,
        }
    }

    /// The entry's `file:line` (or `suite:*`) origin.
    pub fn origin(&self) -> &str {
        match self {
            Admission::Job(j) => &j.origin,
            Admission::Error { origin, .. } => origin,
        }
    }
}

/// Expands a bundled suite name into admissions. Known names:
/// `table4`, `examples`, `extended`, and `all` (their concatenation).
pub fn suite_admissions(suite: &str) -> Option<Vec<Admission>> {
    let benches = match suite {
        "table4" => benchmarks::table4_suite(),
        "examples" => benchmarks::example_suite(),
        "extended" => benchmarks::extended_suite(),
        "all" => {
            let mut all = benchmarks::table4_suite();
            all.extend(benchmarks::example_suite());
            all.extend(benchmarks::extended_suite());
            all
        }
        _ => return None,
    };
    let origin = format!("suite:{suite}");
    Some(
        benches
            .into_iter()
            .map(|b| {
                let spec = match b.to_permutation() {
                    Some(p) => SpecData::Perm(p),
                    None => SpecData::Pprm(b.to_multi_pprm()),
                };
                Admission::Job(BatchJob {
                    name: b.name.to_string(),
                    origin: origin.clone(),
                    spec,
                })
            })
            .collect(),
    )
}

/// Parses manifest text. `manifest_name` labels origins; `base_dir`
/// anchors relative file paths (the manifest's directory).
pub fn parse_manifest(text: &str, manifest_name: &str, base_dir: &Path) -> Vec<Admission> {
    let mut admissions = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let origin = format!("{manifest_name}:{}", idx + 1);
        if raw.len() > MANIFEST_MAX_LINE_LEN {
            admissions.push(Admission::Error {
                name: "oversized line".to_string(),
                origin,
                message: format!("line exceeds {MANIFEST_MAX_LINE_LEN} bytes"),
            });
            continue;
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (kind, arg) = match line.split_once(char::is_whitespace) {
            Some((k, a)) => (k, a.trim()),
            None => (line, ""),
        };
        if arg.is_empty() {
            admissions.push(Admission::Error {
                name: kind.to_string(),
                origin,
                message: format!("'{kind}' needs an argument"),
            });
            continue;
        }
        match kind {
            "suite" => match suite_admissions(arg) {
                Some(jobs) => {
                    // Re-anchor origins at the manifest line so errors in
                    // the results point at the expansion site.
                    admissions.extend(jobs.into_iter().map(|a| match a {
                        Admission::Job(mut j) => {
                            j.origin = origin.clone();
                            Admission::Job(j)
                        }
                        other => other,
                    }));
                }
                None => admissions.push(Admission::Error {
                    name: format!("suite {arg}"),
                    origin,
                    message: format!("unknown suite '{arg}' (table4|examples|extended|all)"),
                }),
            },
            _ => admissions.push(admit_single(kind, arg, origin, base_dir)),
        }
    }
    admissions
}

/// Loads and parses a manifest file.
///
/// # Errors
///
/// Only when the manifest file itself cannot be read; entry-level
/// problems become [`Admission::Error`] records.
pub fn load_manifest(path: &str) -> Result<Vec<Admission>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read manifest {path}: {e}"))?;
    let base = Path::new(path).parent().unwrap_or(Path::new("."));
    Ok(parse_manifest(&text, path, base))
}

/// Admits one job whose specification arrives **inline** rather than
/// by file path — the serve daemon's case, where a request body carries
/// the spec text itself. Kinds:
///
/// - `perm` — `spec` is an inline permutation table (`1,0,3,2,…`);
/// - `table` — `spec` is truth-table text (must be reversible);
/// - `tfc` — `spec` is TFC circuit text (re-synthesized; capped at
///   [`TFC_WIDTH_LIMIT`] wires);
/// - `bench` — `spec` is a bundled benchmark name.
///
/// Like manifest loading, this is total: malformed specs become
/// [`Admission::Error`] records, never panics or hard failures.
pub fn admit_inline(name: &str, kind: &str, spec: &str, origin: String) -> Admission {
    let fail = |message: String| Admission::Error {
        name: name.to_string(),
        origin: origin.clone(),
        message,
    };
    let job = |spec: SpecData| {
        Admission::Job(BatchJob {
            name: name.to_string(),
            origin: origin.clone(),
            spec,
        })
    };
    match kind {
        "perm" => match formats::parse_permutation(spec) {
            Ok(p) => job(SpecData::Perm(p)),
            Err(e) => fail(format!("bad permutation: {e}")),
        },
        "table" => match formats::parse_truth_table(spec)
            .map_err(|e| format!("bad truth table: {e}"))
            .and_then(|t| {
                t.to_permutation()
                    .map_err(|e| format!("truth table is not reversible: {e}"))
            }) {
            Ok(p) => job(SpecData::Perm(p)),
            Err(e) => fail(e),
        },
        "tfc" => match rmrls_circuit::tfc::parse(spec)
            .map_err(|e| format!("bad TFC spec: {e}"))
            .and_then(|circuit| {
                if circuit.width() > TFC_WIDTH_LIMIT {
                    return Err(format!(
                        "TFC re-synthesis is limited to {TFC_WIDTH_LIMIT} wires (circuit has {})",
                        circuit.width()
                    ));
                }
                Ok(Permutation::from_circuit(&circuit))
            }) {
            Ok(p) => job(SpecData::Perm(p)),
            Err(e) => fail(e),
        },
        "bench" => match benchmarks::find(spec) {
            Some(b) => {
                let data = match b.to_permutation() {
                    Some(p) => SpecData::Perm(p),
                    None => SpecData::Pprm(b.to_multi_pprm()),
                };
                job(data)
            }
            None => fail(format!("unknown benchmark '{spec}'")),
        },
        other => fail(format!(
            "unknown spec kind '{other}' (perm|table|tfc|bench)"
        )),
    }
}

fn admit_single(kind: &str, arg: &str, origin: String, base_dir: &Path) -> Admission {
    let name = format!("{kind} {arg}");
    let fail = |message: String| Admission::Error {
        name: name.clone(),
        origin: origin.clone(),
        message,
    };
    let read = |path: &str| -> Result<String, String> {
        let resolved = base_dir.join(path);
        std::fs::read_to_string(&resolved)
            .map_err(|e| format!("cannot read {}: {e}", resolved.display()))
    };
    let job = |spec: SpecData| {
        Admission::Job(BatchJob {
            name: name.clone(),
            origin: origin.clone(),
            spec,
        })
    };
    match kind {
        "perm" => match formats::parse_permutation(arg) {
            Ok(p) => job(SpecData::Perm(p)),
            Err(e) => fail(format!("bad permutation: {e}")),
        },
        "permfile" => match read(arg).and_then(|text| {
            formats::parse_permutation(&text).map_err(|e| format!("bad permutation file: {e}"))
        }) {
            Ok(p) => job(SpecData::Perm(p)),
            Err(e) => fail(e),
        },
        "table" => match read(arg).and_then(|text| {
            let table =
                formats::parse_truth_table(&text).map_err(|e| format!("bad truth table: {e}"))?;
            table
                .to_permutation()
                .map_err(|e| format!("truth table is not reversible: {e}"))
        }) {
            Ok(p) => job(SpecData::Perm(p)),
            Err(e) => fail(e),
        },
        "tfc" => match read(arg).and_then(|text| {
            let circuit =
                rmrls_circuit::tfc::parse(&text).map_err(|e| format!("bad TFC file: {e}"))?;
            if circuit.width() > TFC_WIDTH_LIMIT {
                return Err(format!(
                    "TFC re-synthesis is limited to {TFC_WIDTH_LIMIT} wires (circuit has {})",
                    circuit.width()
                ));
            }
            Ok(Permutation::from_circuit(&circuit))
        }) {
            Ok(p) => job(SpecData::Perm(p)),
            Err(e) => fail(e),
        },
        "bench" => match benchmarks::find(arg) {
            Some(b) => {
                let spec = match b.to_permutation() {
                    Some(p) => SpecData::Perm(p),
                    None => SpecData::Pprm(b.to_multi_pprm()),
                };
                Admission::Job(BatchJob {
                    name: b.name.to_string(),
                    origin,
                    spec,
                })
            }
            None => fail(format!("unknown benchmark '{arg}'")),
        },
        other => fail(format!(
            "unknown job kind '{other}' (perm|permfile|table|tfc|bench|suite)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Vec<Admission> {
        parse_manifest(text, "test.manifest", Path::new("."))
    }

    #[test]
    fn inline_perm_and_bench_lines_admit() {
        let a = parse("# demo\nperm 1,0,7,2,3,4,5,6\nbench hwb4\n");
        assert_eq!(a.len(), 2);
        assert!(matches!(&a[0], Admission::Job(j) if j.spec.width() == 3));
        assert!(matches!(&a[1], Admission::Job(j) if j.name == "hwb4"));
    }

    #[test]
    fn malformed_entries_become_error_records_not_failures() {
        let a = parse(
            "perm 1,1,2,3\n\
             bench no-such-benchmark\n\
             table /nonexistent/path.tt\n\
             frobnicate 12\n\
             perm\n",
        );
        assert_eq!(a.len(), 5);
        for (i, adm) in a.iter().enumerate() {
            let Admission::Error {
                origin, message, ..
            } = adm
            else {
                panic!("entry {i} should be an error: {adm:?}");
            };
            assert_eq!(origin, &format!("test.manifest:{}", i + 1));
            assert!(!message.is_empty());
        }
    }

    #[test]
    fn suite_lines_expand() {
        let a = parse("suite examples\n");
        assert_eq!(a.len(), 8, "example suite has ex1..ex8");
        assert!(a
            .iter()
            .all(|adm| matches!(adm, Admission::Job(j) if j.origin == "test.manifest:1")));
    }

    #[test]
    fn unknown_suite_is_an_error_record() {
        let a = parse("suite bogus\n");
        assert_eq!(a.len(), 1);
        assert!(matches!(&a[0], Admission::Error { message, .. }
            if message.contains("unknown suite")));
    }

    #[test]
    fn suite_admissions_cover_bundled_sets() {
        assert_eq!(suite_admissions("table4").unwrap().len(), 29);
        assert_eq!(suite_admissions("examples").unwrap().len(), 8);
        assert!(suite_admissions("all").unwrap().len() >= 29 + 8);
        assert!(suite_admissions("nope").is_none());
    }

    #[test]
    fn irreversible_truth_table_is_rejected_per_job() {
        let dir = std::env::temp_dir().join("rmrls-engine-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Constant-0 single-output table: 1 input, not a bijection.
        std::fs::write(dir.join("bad.tt"), "1 1\n0 0\n").unwrap();
        let a = parse_manifest("table bad.tt\n", "m", &dir);
        assert!(matches!(&a[0], Admission::Error { message, .. }
            if message.contains("reversible")));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let a = parse("\n# only comments\n   \n# another\n");
        assert!(a.is_empty());
    }

    #[test]
    fn oversized_line_is_an_error_record() {
        let text = format!("bench hwb4\nperm {}\n", "7,".repeat(MANIFEST_MAX_LINE_LEN));
        let a = parse(&text);
        assert_eq!(a.len(), 2);
        assert!(matches!(&a[0], Admission::Job(_)));
        let Admission::Error {
            origin, message, ..
        } = &a[1]
        else {
            panic!("oversized line must be an error record: {:?}", a[1]);
        };
        assert_eq!(origin, "test.manifest:2");
        assert!(message.contains("exceeds"), "{message}");
    }
}
