//! Crash-safe file writes.
//!
//! [`write_atomic`] writes via a temp file in the target's directory,
//! fsyncs it, and renames it over the target — so readers (and a batch
//! interrupted mid-write) only ever see either the old complete file or
//! the new complete file, never a truncated mix. The CLI uses it for
//! `--results`, `--report`, and the final journal rewrite.

use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Atomically replaces `path` with `contents`.
///
/// The temp file lives in the same directory as `path` (renames across
/// filesystems are not atomic) and is named after the target plus the
/// process id, so concurrent writers of *different* targets never
/// collide. On any error the temp file is removed and the target is
/// left untouched.
///
/// # Errors
///
/// A human-readable message naming the target path and the underlying
/// I/O failure.
pub fn write_atomic(path: &str, contents: &str) -> Result<(), String> {
    write_atomic_bytes(path, contents.as_bytes())
}

/// Byte-oriented twin of [`write_atomic`] for binary targets (the
/// circuit store's `compact` rewrite).
///
/// # Errors
///
/// A human-readable message naming the target path and the underlying
/// I/O failure.
pub fn write_atomic_bytes(path: &str, contents: &[u8]) -> Result<(), String> {
    let target = Path::new(path);
    let dir = target
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| Path::new("."));
    let stem = target
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("rmrls");
    let tmp = dir.join(format!(".{stem}.tmp-{}", std::process::id()));
    let result = (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_data()?;
        std::fs::rename(&tmp, target)?;
        // Persist the rename itself; best effort — not every platform
        // or filesystem supports syncing a directory handle.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_data();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(|e| format!("cannot write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> String {
        let dir = std::env::temp_dir().join("rmrls-fsutil-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn writes_and_replaces() {
        let path = scratch("replace.txt");
        write_atomic(&path, "first\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first\n");
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
    }

    #[test]
    fn failure_leaves_target_untouched() {
        let path = scratch("untouched.txt");
        write_atomic(&path, "keep me\n").unwrap();
        // Writing *into* a directory that does not exist fails...
        let bad = scratch("no-such-dir/file.txt");
        assert!(write_atomic(&bad, "x").is_err());
        // ...and the original target is still intact.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "keep me\n");
    }

    #[test]
    fn bare_filename_resolves_against_cwd() {
        // No parent component at all: the temp file must land in ".".
        let name = format!("rmrls-fsutil-bare-{}.txt", std::process::id());
        write_atomic(&name, "cwd\n").unwrap();
        assert_eq!(std::fs::read_to_string(&name).unwrap(), "cwd\n");
        std::fs::remove_file(&name).unwrap();
    }
}
