//! Graceful shutdown: SIGINT → drain, second SIGINT → abort.
//!
//! The engine's shutdown protocol is two cooperative [`CancelToken`]s:
//!
//! - **drain** — stop dequeuing new jobs; in-flight jobs run to
//!   completion and the partial report is still written;
//! - **abort** — additionally cancel in-flight searches through their
//!   budget, so workers return within one budget poll.
//!
//! [`ShutdownHandles::install_sigint`] wires the tokens to Ctrl-C: the
//! first SIGINT drains, the second aborts. The handler itself only
//! performs a single atomic increment (the full async-signal-safe
//! discipline); token cancellation happens on worker threads via
//! [`ShutdownHandles::poll_signals`]. Tests drive the tokens directly
//! and never need to raise a real signal.

use std::sync::atomic::Ordering;

use rmrls_core::CancelToken;

/// The libc binding lives in its own module so the rest of the crate
/// can stay `deny(unsafe_code)`. No external crate: the build is
/// offline, and `std` exposes no signal API.
#[allow(unsafe_code)]
mod ffi {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Number of SIGINTs received since installation.
    pub static SIGINT_COUNT: AtomicU64 = AtomicU64::new(0);

    /// POSIX `SIGINT` (asm-generic value; correct on every Linux arch
    /// this repo targets, and on the BSDs/macOS).
    const SIGINT: i32 = 2;

    /// The handler does exactly one atomic increment — the only action
    /// here that is async-signal-safe.
    extern "C" fn on_sigint(_signum: i32) {
        SIGINT_COUNT.fetch_add(1, Ordering::Relaxed);
    }

    extern "C" {
        // `signal` returns the previous handler; modelled as a
        // pointer-sized integer because it may be the non-pointer
        // sentinels SIG_DFL (0) or SIG_ERR (-1).
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the counting handler for SIGINT.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

/// Pretends one SIGINT arrived, without raising a real signal. Exactly
/// what the handler does (one atomic increment), so tests exercise the
/// genuine two-stage protocol. Test-support only — not part of the API.
#[doc(hidden)]
pub fn simulate_sigint() {
    ffi::SIGINT_COUNT.fetch_add(1, Ordering::Relaxed);
}

/// Zeroes the process-global SIGINT counter so tests can run in any
/// order. Test-support only — not part of the API.
#[doc(hidden)]
pub fn reset_sigint_count() {
    ffi::SIGINT_COUNT.store(0, Ordering::Relaxed);
}

/// The pair of shutdown tokens a batch run observes.
#[derive(Clone, Debug, Default)]
pub struct ShutdownHandles {
    /// Stop dequeuing; finish in-flight jobs.
    pub drain: CancelToken,
    /// Cancel in-flight searches too.
    pub abort: CancelToken,
}

impl ShutdownHandles {
    /// Fresh, untripped handles (signals not installed — cancellation
    /// only through the tokens; this is what tests use).
    pub fn new() -> ShutdownHandles {
        ShutdownHandles {
            drain: CancelToken::new(),
            abort: CancelToken::new(),
        }
    }

    /// Installs a SIGINT handler and returns handles wired to it:
    /// after installation, [`poll_signals`](Self::poll_signals) maps
    /// one received SIGINT to `drain` and two or more to `abort`.
    ///
    /// Installation is process-global; later installs replace earlier
    /// handlers but all handles share the one signal counter.
    pub fn install_sigint() -> ShutdownHandles {
        ffi::install();
        ShutdownHandles::new()
    }

    /// Propagates received signals into the tokens. Called by workers
    /// between jobs and by the engine's monitor thread while every
    /// worker is busy; cheap enough for every dequeue.
    pub fn poll_signals(&self) {
        let n = ffi::SIGINT_COUNT.load(Ordering::Relaxed);
        if n >= 1 {
            self.drain.cancel();
        }
        if n >= 2 {
            self.abort.cancel();
        }
    }

    /// Whether new jobs should still be dequeued.
    pub fn draining(&self) -> bool {
        self.drain.is_cancelled() || self.abort.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_handles_do_not_drain() {
        let h = ShutdownHandles::new();
        h.poll_signals();
        assert!(!h.draining());
        assert!(!h.abort.is_cancelled());
    }

    #[test]
    fn abort_implies_draining() {
        let h = ShutdownHandles::new();
        h.abort.cancel();
        assert!(h.draining());
    }

    #[test]
    fn drain_alone_leaves_inflight_running() {
        let h = ShutdownHandles::new();
        h.drain.cancel();
        assert!(h.draining());
        assert!(!h.abort.is_cancelled());
    }
}
