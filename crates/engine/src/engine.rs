//! The batch engine: a fixed worker pool over a shared job queue.
//!
//! Execution model, per job:
//!
//! 1. tabulated permutations are **canonicalized** under wire
//!    relabeling and the search always runs on the canonical
//!    representative, whether or not the cache is enabled — this is
//!    what makes batch results byte-identical across worker counts and
//!    cache on/off (the cache merely memoizes a computation the engine
//!    would deterministically repeat);
//! 2. the shared LRU cache is consulted on the canonical table; a hit
//!    skips the search entirely and the cached circuit is conjugated
//!    back to the requested labeling;
//! 3. each job runs under `catch_unwind`, so one poisoned spec becomes
//!    a `panicked` record instead of taking down the run;
//! 4. each job's search carries a [`Budget`](rmrls_core::Budget): the
//!    per-job deadline (measured from job start) plus the engine's
//!    abort token, so shutdown reaches in-flight searches within one
//!    budget poll;
//! 5. with [`BatchOptions::fallback`] set, a failed search descends a
//!    **fallback ladder** — relaxed-pruning RMRLS, then the MMD
//!    baseline, which always terminates — and every solved record
//!    carries its producing tier as `solved_by`.
//!
//! Results are written in job-admission order regardless of completion
//! order. The per-job JSONL stream contains only deterministic fields;
//! wall-clock timings and cache statistics live in the aggregate
//! report, which is allowed to vary run to run.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rmrls_baselines::{mmd_synthesize, MmdVariant};
use rmrls_circuit::Circuit;
use rmrls_core::{
    synthesize_with_observer, Observer, Pruning, StopReason, Synthesis, SynthesisOptions,
};
use rmrls_obs::{FlightRecorder, Json, PhaseProfile, Profiler, SyncCounter, TraceKind};
use rmrls_pprm::MultiPprm;
use rmrls_spec::Permutation;

use crate::cache::{CacheKey, SharedCache};
use crate::canon::{canonical_form, uncanonicalize_circuit};
use crate::journal::{CompletedJob, JournalWriter};
use crate::manifest::{Admission, BatchJob, SpecData};
use crate::signal::ShutdownHandles;
use crate::store::SharedStore;
use crate::telemetry::{BatchTelemetry, SAMPLE_INTERVAL};

/// A worker's handle on the run's telemetry board, paired with the
/// admission index of the job it is currently executing. `None`
/// throughout when telemetry is disabled.
pub(crate) type JobTelemetry<'a> = Option<(&'a Arc<BatchTelemetry>, usize)>;

/// Builds one fresh [`rmrls_obs::EventSink`] per search attempt. The
/// serve daemon passes a factory that tees progress events into a
/// request's JSONL stream; each ladder tier constructs its own
/// `Observer`, hence a factory rather than a single sink. `None`
/// everywhere in batch mode.
pub type SinkFactory = dyn Fn() -> Box<dyn rmrls_obs::EventSink> + Sync;

/// Version of the batch report / results-JSONL schema.
pub const BATCH_SCHEMA_VERSION: u64 = 1;

/// Widths up to this bound are verified exhaustively; wider symbolic
/// specs fall back to quasirandom probes (mirrors the policy of
/// `rmrls_circuit::check_equivalence`).
const VERIFY_EXHAUSTIVE_LIMIT: usize = 20;
const VERIFY_PROBES: u64 = 4096;

/// Widest spec handed to the MMD fallback tier: MMD materializes the
/// full `2^n` truth table, so the ladder only descends to it for specs
/// that fit (this matches the manifest loader's TFC width cap).
const MMD_FALLBACK_LIMIT: usize = 16;

/// Which rung of the fallback ladder produced a circuit.
///
/// The ladder is deterministic per (canonical spec, options): every run
/// that solves a given job solves it at the same tier, so `solved_by`
/// is part of the deterministic JSONL stream and identical across
/// worker counts and cache settings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveTier {
    /// The configured RMRLS search solved it directly.
    Rmrls,
    /// The relaxed retry (greedy pruning, small queue, stop at first
    /// solution) solved it after the configured search gave up.
    RmrlsRelaxed,
    /// The MMD transformation-based baseline solved it; MMD always
    /// terminates, which is what makes the ladder total.
    Mmd,
}

impl SolveTier {
    /// Stable lowercase name used in JSONL records and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            SolveTier::Rmrls => "rmrls",
            SolveTier::RmrlsRelaxed => "rmrls-relaxed",
            SolveTier::Mmd => "mmd",
        }
    }
}

/// Configuration of one batch run.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Per-job deadline, measured from the moment the job is dequeued.
    pub deadline: Option<Duration>,
    /// Result-cache capacity; `None` disables the cache.
    pub cache_size: Option<usize>,
    /// Widest permutation canonicalized by brute force (cost `n!·2^n`).
    pub canon_limit: usize,
    /// Verify every produced circuit against its specification.
    pub verify: bool,
    /// Run the fallback ladder: when the configured search gives up,
    /// retry with relaxed pruning, then hand the job to the MMD
    /// baseline (which always terminates). With this set, every
    /// well-formed reversible job of fallback-eligible width produces a
    /// verified circuit.
    pub fallback: bool,
    /// Directory for per-job flight-recorder dumps. When set, every job
    /// runs with a [`FlightRecorder`] attached and writes
    /// `<index>-<job>.trace.json` here; jobs whose recorder registered
    /// an anomaly (memory shed, tier escalation, deadline expiry,
    /// cancellation, panic, injected fault) additionally write
    /// `<index>-<job>.anomaly.json`. `None` (the default) records
    /// nothing.
    pub trace_dir: Option<String>,
    /// Live telemetry board. When set, the engine sources its run
    /// counters from the board's registry, feeds the latency
    /// histograms, drives the job-status registry, and runs a
    /// background gauge sampler — all observation-only: results are
    /// byte-identical with telemetry on or off.
    pub telemetry: Option<Arc<BatchTelemetry>>,
    /// A caller-owned shared cache to use instead of building a private
    /// one from `cache_size`. The serve daemon passes the cache it
    /// keeps warm across requests; batch callers leave this `None` and
    /// the engine behaves exactly as before (a fresh cache per run,
    /// sized by `cache_size`). Excluded from the journal options
    /// fingerprint for the same reason `cache_size` is: the cache
    /// cannot change results, only speed.
    pub shared_cache: Option<SharedCache>,
    /// Durable canonical circuit store. When set, a canonical-cache
    /// miss consults the store's verified index before synthesizing
    /// (hits are promoted into the in-memory cache), and every fresh
    /// synthesis is offered back to the store, which keeps the cheaper
    /// circuit on conflict. Excluded from the journal options
    /// fingerprint for the same reason the cache is: the store serves
    /// only verified canonical circuits, so it cannot change results,
    /// only speed.
    pub store: Option<SharedStore>,
    /// Provenance label recorded on store inserts (`"batch"`,
    /// `"serve"`, ...).
    pub store_provenance: String,
    /// Base search configuration applied to every job.
    pub synthesis: SynthesisOptions,
}

impl Default for BatchOptions {
    /// One worker, 1024-entry cache, canonicalization up to 8 wires,
    /// verification on, and a 200k-node search budget so a batch
    /// without a deadline still terminates. Per-job search threads are
    /// pinned to 1: batch parallelism comes from `workers`, and letting
    /// every worker also auto-spawn `available_parallelism` search
    /// threads would oversubscribe the machine quadratically. Callers
    /// wanting intra-job parallelism set `synthesis.threads` (the CLI's
    /// `--threads`) explicitly.
    fn default() -> BatchOptions {
        BatchOptions {
            workers: 1,
            deadline: None,
            cache_size: Some(1024),
            canon_limit: 8,
            verify: true,
            fallback: false,
            trace_dir: None,
            telemetry: None,
            shared_cache: None,
            store: None,
            store_provenance: "batch".to_string(),
            synthesis: SynthesisOptions::new()
                .with_max_nodes(200_000)
                .with_threads(1),
        }
    }
}

/// How one job ended.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// A circuit was produced (and possibly verified).
    Solved {
        /// The synthesized circuit, in the job's own wire labeling.
        circuit: Circuit,
        /// `Some(result)` when verification ran, `None` when disabled.
        verified: Option<bool>,
        /// Which ladder tier produced the circuit (`Rmrls` unless the
        /// fallback ladder descended).
        solved_by: SolveTier,
    },
    /// The search stopped without a solution.
    Unsolved {
        /// Display form of the search's stop reason.
        stop_reason: String,
    },
    /// The job could not be loaded or was invalid.
    Error {
        /// What was wrong.
        message: String,
    },
    /// The job panicked; the panic was contained to this record.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The batch was drained before this job started.
    Skipped,
    /// The job was recovered from a resume journal; `json` is its
    /// journaled record, verbatim (including the `index` field).
    Resumed {
        /// The record as read from the journal.
        json: Json,
    },
}

/// One job's result row.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Display name.
    pub name: String,
    /// `file:line` / `suite:*` origin.
    pub origin: String,
    /// Whether this job was served from the cache.
    pub cache_hit: bool,
    /// Wall-clock seconds spent on the job.
    pub seconds: f64,
    /// How it ended.
    pub outcome: JobOutcome,
    /// Merged per-phase timings of every search and engine stage this
    /// job ran (empty unless `synthesis.profile` is set). Timings are
    /// non-deterministic, so the profile stays out of [`to_json`]
    /// (JobRecord::to_json) and is aggregated into the batch report
    /// instead.
    pub profile: PhaseProfile,
}

impl JobRecord {
    /// Serializes the **deterministic** portion of the record (no
    /// timings, no cache attribution) as one JSONL object.
    ///
    /// A [`Resumed`](JobOutcome::Resumed) record returns its journaled
    /// JSON with the `index` field stripped — byte-identical to what
    /// the original run's `to_json` produced, so a resumed batch's
    /// results stream matches an uninterrupted run's.
    pub fn to_json(&self) -> Json {
        if let JobOutcome::Resumed { json } = &self.outcome {
            if let Json::Obj(fields) = json {
                return Json::Obj(
                    fields
                        .iter()
                        .filter(|(k, _)| k != "index")
                        .cloned()
                        .collect(),
                );
            }
            return json.clone();
        }
        let mut fields = vec![
            ("job".to_string(), Json::str(&self.name)),
            ("origin".to_string(), Json::str(&self.origin)),
        ];
        match &self.outcome {
            JobOutcome::Solved {
                circuit,
                verified,
                solved_by,
            } => {
                let gates: Vec<Json> = circuit
                    .gates()
                    .iter()
                    .map(|g| Json::Str(g.to_string()))
                    .collect();
                fields.push(("status".to_string(), Json::str("solved")));
                fields.push(("solved_by".to_string(), Json::str(solved_by.as_str())));
                fields.push(("width".to_string(), Json::uint(circuit.width() as u64)));
                fields.push(("gates".to_string(), Json::uint(circuit.gate_count() as u64)));
                fields.push((
                    "quantum_cost".to_string(),
                    Json::uint(circuit.quantum_cost()),
                ));
                fields.push((
                    "verified".to_string(),
                    verified.map(Json::Bool).unwrap_or(Json::Null),
                ));
                fields.push(("circuit".to_string(), Json::Arr(gates)));
            }
            JobOutcome::Unsolved { stop_reason } => {
                fields.push(("status".to_string(), Json::str("unsolved")));
                fields.push(("stop_reason".to_string(), Json::str(stop_reason)));
            }
            JobOutcome::Error { message } => {
                fields.push(("status".to_string(), Json::str("error")));
                fields.push(("message".to_string(), Json::str(message)));
            }
            JobOutcome::Panicked { message } => {
                fields.push(("status".to_string(), Json::str("panicked")));
                fields.push(("message".to_string(), Json::str(message)));
            }
            JobOutcome::Skipped => {
                fields.push(("status".to_string(), Json::str("skipped")));
            }
            JobOutcome::Resumed { .. } => unreachable!("handled above"),
        }
        Json::Obj(fields)
    }

    /// Serializes the record as a journal line: [`to_json`] plus a
    /// leading `index` field tying it to its admission slot. Resumed
    /// records return their journaled JSON verbatim.
    pub fn to_json_indexed(&self, index: usize) -> Json {
        if let JobOutcome::Resumed { json } = &self.outcome {
            return json.clone();
        }
        let Json::Obj(fields) = self.to_json() else {
            unreachable!("to_json always returns an object");
        };
        let mut indexed = Vec::with_capacity(fields.len() + 1);
        indexed.push(("index".to_string(), Json::uint(index as u64)));
        indexed.extend(fields);
        Json::Obj(indexed)
    }
}

/// Aggregate counters of one batch run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchCounters {
    /// Jobs admitted (including per-job manifest errors).
    pub jobs_total: u64,
    /// Jobs that produced a circuit.
    pub jobs_completed: u64,
    /// Jobs whose search stopped without a solution.
    pub jobs_unsolved: u64,
    /// Jobs rejected at admission (malformed manifest entries).
    pub jobs_errored: u64,
    /// Panics contained by per-job isolation.
    pub panics_contained: u64,
    /// Jobs never started because the batch drained.
    pub jobs_skipped: u64,
    /// Canonical-cache hits.
    pub cache_hits: u64,
    /// Canonical-cache misses (cache enabled, entry absent).
    pub cache_misses: u64,
    /// Jobs served from the durable store's verified index (after an
    /// in-memory cache miss).
    pub store_hits: u64,
    /// Fresh syntheses appended to the durable store.
    pub store_inserts: u64,
    /// Store appends that failed (the job still completes; the store
    /// merely under-remembers).
    pub store_append_errors: u64,
    /// Searches stopped by their per-job deadline.
    pub deadline_expired: u64,
    /// Searches stopped by the abort token.
    pub cancelled: u64,
    /// Circuits that passed verification.
    pub verified_ok: u64,
    /// Circuits that FAILED verification (always a bug).
    pub verify_failures: u64,
    /// Jobs solved by the configured RMRLS search (tier 1).
    pub solved_by_rmrls: u64,
    /// Jobs solved by the relaxed-pruning retry (tier 2).
    pub solved_by_relaxed: u64,
    /// Jobs solved by the MMD baseline (tier 3).
    pub solved_by_mmd: u64,
    /// Jobs recovered from a resume journal instead of re-running.
    pub jobs_resumed: u64,
    /// Journal appends that failed (the batch continues; the journal
    /// merely under-records, which a later resume re-runs).
    pub journal_append_errors: u64,
    /// Anomaly dumps written to the trace directory.
    pub anomaly_dumps: u64,
    /// Flight-recorder records evicted from per-job rings (never
    /// silently lost: nonzero means the trace files are truncated
    /// prefixes-of-recent-history).
    pub trace_records_dropped: u64,
    /// Trace or anomaly files that failed to write (the batch
    /// continues; the dump is lost but counted).
    pub trace_write_errors: u64,
}

impl BatchCounters {
    /// Cache hit-rate in [0, 1]; `None` when the cache saw no traffic.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("jobs_total".to_string(), Json::uint(self.jobs_total)),
            (
                "jobs_completed".to_string(),
                Json::uint(self.jobs_completed),
            ),
            ("jobs_unsolved".to_string(), Json::uint(self.jobs_unsolved)),
            ("jobs_errored".to_string(), Json::uint(self.jobs_errored)),
            (
                "panics_contained".to_string(),
                Json::uint(self.panics_contained),
            ),
            ("jobs_skipped".to_string(), Json::uint(self.jobs_skipped)),
            ("cache_hits".to_string(), Json::uint(self.cache_hits)),
            ("cache_misses".to_string(), Json::uint(self.cache_misses)),
            ("store_hits".to_string(), Json::uint(self.store_hits)),
            ("store_inserts".to_string(), Json::uint(self.store_inserts)),
            (
                "store_append_errors".to_string(),
                Json::uint(self.store_append_errors),
            ),
            (
                "deadline_expired".to_string(),
                Json::uint(self.deadline_expired),
            ),
            ("cancelled".to_string(), Json::uint(self.cancelled)),
            ("verified_ok".to_string(), Json::uint(self.verified_ok)),
            (
                "verify_failures".to_string(),
                Json::uint(self.verify_failures),
            ),
            (
                "solved_by_rmrls".to_string(),
                Json::uint(self.solved_by_rmrls),
            ),
            (
                "solved_by_relaxed".to_string(),
                Json::uint(self.solved_by_relaxed),
            ),
            ("solved_by_mmd".to_string(), Json::uint(self.solved_by_mmd)),
            ("jobs_resumed".to_string(), Json::uint(self.jobs_resumed)),
            (
                "journal_append_errors".to_string(),
                Json::uint(self.journal_append_errors),
            ),
            ("anomaly_dumps".to_string(), Json::uint(self.anomaly_dumps)),
            (
                "trace_records_dropped".to_string(),
                Json::uint(self.trace_records_dropped),
            ),
            (
                "trace_write_errors".to_string(),
                Json::uint(self.trace_write_errors),
            ),
        ])
    }
}

/// Thread-shared counter set; snapshotted into [`BatchCounters`] once
/// the pool joins.
///
/// With telemetry enabled the handles come from the telemetry board's
/// registry, so every tally the aggregate report makes is *also* a
/// live `/metrics` series — one increment, two consumers. Without
/// telemetry they are free-standing atomics, exactly as before.
#[derive(Default)]
pub(crate) struct RunCounters {
    jobs_completed: Arc<SyncCounter>,
    jobs_unsolved: Arc<SyncCounter>,
    jobs_errored: Arc<SyncCounter>,
    panics_contained: Arc<SyncCounter>,
    cache_hits: Arc<SyncCounter>,
    cache_misses: Arc<SyncCounter>,
    store_hits: Arc<SyncCounter>,
    store_inserts: Arc<SyncCounter>,
    store_append_errors: Arc<SyncCounter>,
    deadline_expired: Arc<SyncCounter>,
    cancelled: Arc<SyncCounter>,
    verified_ok: Arc<SyncCounter>,
    verify_failures: Arc<SyncCounter>,
    solved_by_rmrls: Arc<SyncCounter>,
    solved_by_relaxed: Arc<SyncCounter>,
    solved_by_mmd: Arc<SyncCounter>,
    jobs_resumed: Arc<SyncCounter>,
    journal_append_errors: Arc<SyncCounter>,
    anomaly_dumps: Arc<SyncCounter>,
    trace_records_dropped: Arc<SyncCounter>,
    trace_write_errors: Arc<SyncCounter>,
    /// Spec-expansion memo hits across all searches (live-only series;
    /// not part of [`BatchCounters`]).
    spec_hits: Arc<SyncCounter>,
    /// Spec-expansion memo misses across all searches (live-only).
    spec_misses: Arc<SyncCounter>,
}

impl RunCounters {
    /// Free-standing counters, or handles registered on the telemetry
    /// board so the same increments feed `/metrics`.
    pub(crate) fn new(telemetry: Option<&BatchTelemetry>) -> RunCounters {
        let Some(t) = telemetry else {
            return RunCounters::default();
        };
        let r = t.registry();
        RunCounters {
            jobs_completed: r.counter("jobs_completed"),
            jobs_unsolved: r.counter("jobs_unsolved"),
            jobs_errored: r.counter("jobs_errored"),
            panics_contained: r.counter("panics_contained"),
            cache_hits: r.counter("cache_hits"),
            cache_misses: r.counter("cache_misses"),
            store_hits: r.counter("store_hits"),
            store_inserts: r.counter("store_inserts"),
            store_append_errors: r.counter("store_append_errors"),
            deadline_expired: r.counter("deadline_expired"),
            cancelled: r.counter("cancelled"),
            verified_ok: r.counter("verified_ok"),
            verify_failures: r.counter("verify_failures"),
            solved_by_rmrls: r.counter("solved_by_rmrls"),
            solved_by_relaxed: r.counter("solved_by_relaxed"),
            solved_by_mmd: r.counter("solved_by_mmd"),
            jobs_resumed: r.counter("jobs_resumed"),
            journal_append_errors: r.counter("journal_append_errors"),
            anomaly_dumps: r.counter("anomaly_dumps"),
            trace_records_dropped: r.counter("trace_records_dropped"),
            trace_write_errors: r.counter("trace_write_errors"),
            spec_hits: r.counter("spec_hits"),
            spec_misses: r.counter("spec_misses"),
        }
    }
}

/// A completed (possibly partially drained) batch run.
#[derive(Debug)]
pub struct BatchRun {
    /// Per-job records in admission order.
    pub records: Vec<JobRecord>,
    /// Aggregate counters.
    pub counters: BatchCounters,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Per-phase timings merged across every job (empty unless
    /// `synthesis.profile` was set). Lives here — not in the JSONL
    /// stream — because timings vary run to run.
    pub profile: PhaseProfile,
}

impl BatchRun {
    /// The per-job results as JSON lines (one object per job, in
    /// admission order; deterministic for a given manifest and search
    /// configuration, independent of worker count and cache setting).
    pub fn results_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&record.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Jobs actually processed (everything but skipped).
    pub fn jobs_processed(&self) -> u64 {
        self.counters.jobs_total - self.counters.jobs_skipped
    }

    /// Throughput over the whole run, in specifications per second.
    pub fn specs_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.jobs_processed() as f64 / secs
        } else {
            0.0
        }
    }

    /// The aggregate run report (counters, throughput, configuration
    /// echoes — the non-deterministic complement of the JSONL stream).
    pub fn report_json(&self, opts: &BatchOptions) -> Json {
        Json::Obj(vec![
            (
                "schema_version".to_string(),
                Json::uint(BATCH_SCHEMA_VERSION),
            ),
            ("tool".to_string(), Json::str("rmrls-batch")),
            ("workers".to_string(), Json::uint(self.workers as u64)),
            (
                "deadline_ms".to_string(),
                opts.deadline
                    .map(|d| Json::uint(d.as_millis() as u64))
                    .unwrap_or(Json::Null),
            ),
            (
                "cache_size".to_string(),
                opts.cache_size
                    .map(|c| Json::uint(c as u64))
                    .unwrap_or(Json::Null),
            ),
            (
                "canon_limit".to_string(),
                Json::uint(opts.canon_limit as u64),
            ),
            ("verify".to_string(), Json::Bool(opts.verify)),
            ("fallback".to_string(), Json::Bool(opts.fallback)),
            (
                "elapsed_seconds".to_string(),
                Json::Num(self.elapsed.as_secs_f64()),
            ),
            (
                "specs_per_second".to_string(),
                Json::Num(self.specs_per_second()),
            ),
            (
                "cache_hit_rate".to_string(),
                self.counters
                    .cache_hit_rate()
                    .map(Json::Num)
                    .unwrap_or(Json::Null),
            ),
            // Null (not an empty array) when profiling was off.
            (
                "profile".to_string(),
                if self.profile.is_empty() {
                    Json::Null
                } else {
                    self.profile.to_json()
                },
            ),
            ("counters".to_string(), self.counters.to_json()),
        ])
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A worker panicking inside the cache poisons the mutex; the data
    // (an LRU map) stays structurally valid, so recover rather than
    // letting one contained panic disable caching for the rest of the
    // run.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs every admitted job on a pool of `opts.workers` threads.
///
/// Returns when all jobs are finished or the batch drained via
/// `shutdown`; never panics on job failures (panics are contained into
/// per-job records).
pub fn run_batch(
    admissions: &[Admission],
    opts: &BatchOptions,
    shutdown: &ShutdownHandles,
) -> BatchRun {
    run_batch_resumable(admissions, opts, shutdown, None, None)
}

/// [`run_batch`] plus checkpoint/resume plumbing.
///
/// When `journal` is given, every finished record is durably appended
/// (via [`JournalWriter::append`]) before the batch moves on — the
/// write-ahead discipline that makes a SIGKILL lose at most one job. A
/// failed append never fails the batch; it increments
/// `journal_append_errors` and the affected job simply re-runs on the
/// next resume.
///
/// When `resumed` is given, the records it maps are taken as already
/// complete: their slots are pre-filled with
/// [`Resumed`](JobOutcome::Resumed) outcomes, their counters are
/// tallied from the journaled fields, and workers skip them entirely.
/// Cache counters intentionally start cold — a resumed run may show
/// different `cache_hits`/`cache_misses` than an uninterrupted one,
/// but never different results.
pub fn run_batch_resumable(
    admissions: &[Admission],
    opts: &BatchOptions,
    shutdown: &ShutdownHandles,
    journal: Option<&Mutex<JournalWriter>>,
    resumed: Option<&HashMap<usize, CompletedJob>>,
) -> BatchRun {
    let started = Instant::now();
    let workers = opts.workers.max(1);
    let cache = opts
        .shared_cache
        .clone()
        .or_else(|| opts.cache_size.map(SharedCache::new));
    let telemetry = opts.telemetry.as_ref();
    let counters = RunCounters::new(telemetry.map(Arc::as_ref));
    if let Some(t) = telemetry {
        t.set_workers_total(workers as u64);
    }
    let slots: Vec<Mutex<Option<JobRecord>>> =
        admissions.iter().map(|_| Mutex::new(None)).collect();
    if let Some(done) = resumed {
        for (&index, job) in done {
            if index >= admissions.len() {
                continue;
            }
            tally_resumed(job, &counters);
            let outcome = JobOutcome::Resumed {
                json: job.json.clone(),
            };
            if let Some(t) = telemetry {
                t.jobs.mark_finished(index, &outcome);
            }
            *lock(&slots[index]) = Some(JobRecord {
                name: admissions[index].name().to_string(),
                origin: admissions[index].origin().to_string(),
                cache_hit: false,
                seconds: 0.0,
                outcome,
                profile: PhaseProfile::default(),
            });
        }
    }
    let next = AtomicUsize::new(0);

    // Workers only poll for signals between jobs, so with every worker
    // deep inside a long search nothing would propagate a second
    // Ctrl-C into the abort token until some job finished. A dedicated
    // monitor keeps polling while workers are busy; the abort token
    // then reaches in-flight searches within one budget poll.
    let workers_done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let monitor = scope.spawn(|| {
            while !workers_done.load(Ordering::Acquire) {
                shutdown.poll_signals();
                std::thread::park_timeout(Duration::from_millis(20));
            }
        });
        // The sampler publishes point-in-time gauges (frontier depth,
        // live terms, cache occupancy, busy workers) every beat, so a
        // scrape mid-run sees current values rather than whatever the
        // last finished job left behind. One final beat after the pool
        // drains leaves the gauges at their end-of-run state.
        let sampler = telemetry.map(|t| {
            scope.spawn(|| loop {
                t.sample(cache.as_ref().map(|c| c.len() as u64));
                if workers_done.load(Ordering::Acquire) {
                    break;
                }
                std::thread::park_timeout(SAMPLE_INTERVAL);
            })
        });
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    shutdown.poll_signals();
                    if shutdown.draining() {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::SeqCst);
                    if index >= admissions.len() {
                        break;
                    }
                    if resumed.is_some_and(|done| done.contains_key(&index)) {
                        continue;
                    }
                    // One recorder per job, created inside the worker
                    // thread (FlightRecorder is same-thread by design).
                    let recorder = opts
                        .trace_dir
                        .as_ref()
                        .map(|_| FlightRecorder::with_default_budget());
                    if let Some(t) = telemetry {
                        t.jobs.mark_running(index);
                    }
                    let record = run_one(
                        &admissions[index],
                        opts,
                        shutdown,
                        cache.as_ref(),
                        &counters,
                        recorder.as_ref(),
                        telemetry.map(|t| (t, index)),
                        None,
                    );
                    if let Some(t) = telemetry {
                        t.job_seconds.record(record.seconds);
                        t.jobs.mark_finished(index, &record.outcome);
                    }
                    if let Some(w) = journal {
                        let line = record.to_json_indexed(index).to_string();
                        if lock(w).append(&line).is_err() {
                            counters.journal_append_errors.inc();
                            if let Some(r) = &recorder {
                                r.anomaly("journal_append_failed", "engine/journal/append");
                            }
                        }
                    }
                    if let (Some(dir), Some(r)) = (opts.trace_dir.as_deref(), &recorder) {
                        write_job_traces(dir, index, &record.name, r, &counters);
                    }
                    *lock(&slots[index]) = Some(record);
                })
            })
            .collect();
        let mut worker_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                worker_panic = Some(payload);
            }
        }
        workers_done.store(true, Ordering::Release);
        monitor.thread().unpark();
        if let Some(s) = &sampler {
            s.thread().unpark();
        }
        if let Some(payload) = worker_panic {
            // Preserve pre-monitor behavior: an uncontained worker
            // panic (a bug — jobs run under catch_unwind) still
            // propagates out of the scope.
            std::panic::resume_unwind(payload);
        }
    });

    let mut jobs_skipped = 0u64;
    let records: Vec<JobRecord> = admissions
        .iter()
        .zip(slots)
        .map(|(adm, slot)| {
            lock(&slot).take().unwrap_or_else(|| {
                jobs_skipped += 1;
                JobRecord {
                    name: adm.name().to_string(),
                    origin: adm.origin().to_string(),
                    cache_hit: false,
                    seconds: 0.0,
                    outcome: JobOutcome::Skipped,
                    profile: PhaseProfile::default(),
                }
            })
        })
        .collect();
    let mut profile = PhaseProfile::default();
    for record in &records {
        profile.merge(&record.profile);
    }

    let snapshot = BatchCounters {
        jobs_total: admissions.len() as u64,
        jobs_completed: counters.jobs_completed.get(),
        jobs_unsolved: counters.jobs_unsolved.get(),
        jobs_errored: counters.jobs_errored.get(),
        panics_contained: counters.panics_contained.get(),
        jobs_skipped,
        cache_hits: counters.cache_hits.get(),
        cache_misses: counters.cache_misses.get(),
        store_hits: counters.store_hits.get(),
        store_inserts: counters.store_inserts.get(),
        store_append_errors: counters.store_append_errors.get(),
        deadline_expired: counters.deadline_expired.get(),
        cancelled: counters.cancelled.get(),
        verified_ok: counters.verified_ok.get(),
        verify_failures: counters.verify_failures.get(),
        solved_by_rmrls: counters.solved_by_rmrls.get(),
        solved_by_relaxed: counters.solved_by_relaxed.get(),
        solved_by_mmd: counters.solved_by_mmd.get(),
        jobs_resumed: counters.jobs_resumed.get(),
        journal_append_errors: counters.journal_append_errors.get(),
        anomaly_dumps: counters.anomaly_dumps.get(),
        trace_records_dropped: counters.trace_records_dropped.get(),
        trace_write_errors: counters.trace_write_errors.get(),
    };
    BatchRun {
        records,
        counters: snapshot,
        elapsed: started.elapsed(),
        workers,
        profile,
    }
}

/// Trace filenames keep `[A-Za-z0-9._-]` from the job name; every other
/// character becomes `_` so shell-hostile manifest names stay safe on
/// disk. Bounded so a pathological name cannot overflow path limits.
fn sanitize_filename(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    out.truncate(80);
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Prepends identifying fields to a snapshot object so a dump on disk
/// names its job without relying on the filename.
fn tagged_snapshot(snapshot_json: Json, extra: Vec<(String, Json)>) -> Json {
    let Json::Obj(fields) = snapshot_json else {
        unreachable!("RecorderSnapshot::to_json always returns an object");
    };
    let mut all = extra;
    all.extend(fields);
    Json::Obj(all)
}

/// Writes one job's flight-recorder dump — `<index>-<job>.trace.json`,
/// plus `<index>-<job>.anomaly.json` when the recorder registered an
/// anomaly — into the trace directory. Write failures never fail the
/// batch; they increment `trace_write_errors` and move on.
pub(crate) fn write_job_traces(
    dir: &str,
    index: usize,
    job_name: &str,
    recorder: &FlightRecorder,
    counters: &RunCounters,
) {
    let snapshot = recorder.snapshot();
    counters.trace_records_dropped.add(snapshot.dropped);
    let stem = format!("{dir}/{index:04}-{}", sanitize_filename(job_name));
    let trace = tagged_snapshot(
        snapshot.to_json(),
        vec![("job".to_string(), Json::str(job_name))],
    );
    if crate::fsutil::write_atomic(&format!("{stem}.trace.json"), &trace.to_string()).is_err() {
        counters.trace_write_errors.inc();
    }
    if snapshot.anomalies == 0 {
        return;
    }
    // The trailing anomaly record names the trigger; the count survives
    // ring eviction, the record may not.
    let trigger = snapshot
        .records
        .iter()
        .rev()
        .find_map(|rec| match &rec.kind {
            TraceKind::Anomaly { kind, .. } => Some(kind.clone()),
            _ => None,
        })
        .unwrap_or_else(|| "evicted".to_string());
    let anomaly = tagged_snapshot(
        snapshot.to_json(),
        vec![
            ("job".to_string(), Json::str(job_name)),
            ("trigger".to_string(), Json::Str(trigger)),
        ],
    );
    match crate::fsutil::write_atomic(&format!("{stem}.anomaly.json"), &anomaly.to_string()) {
        Ok(()) => counters.anomaly_dumps.inc(),
        Err(_) => counters.trace_write_errors.inc(),
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_one(
    admission: &Admission,
    opts: &BatchOptions,
    shutdown: &ShutdownHandles,
    cache: Option<&SharedCache>,
    counters: &RunCounters,
    recorder: Option<&FlightRecorder>,
    telemetry: JobTelemetry,
    sink: Option<&SinkFactory>,
) -> JobRecord {
    let started = Instant::now();
    let (name, origin) = (admission.name().to_string(), admission.origin().to_string());
    match admission {
        Admission::Error { message, .. } => {
            counters.jobs_errored.inc();
            JobRecord {
                name,
                origin,
                cache_hit: false,
                seconds: started.elapsed().as_secs_f64(),
                outcome: JobOutcome::Error {
                    message: message.clone(),
                },
                profile: PhaseProfile::default(),
            }
        }
        Admission::Job(job) => {
            if let Some(r) = recorder {
                r.phase_enter("job");
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                execute_job(
                    job, opts, shutdown, cache, counters, recorder, telemetry, sink,
                )
            }));
            // Exit after catch_unwind returns so the span closes (and
            // nests correctly) even when the job panicked mid-phase.
            if let Some(r) = recorder {
                r.phase_exit("job");
            }
            let (outcome, cache_hit, profile) = match result {
                Ok(r) => r,
                Err(payload) => {
                    counters.panics_contained.inc();
                    if let Some(r) = recorder {
                        r.anomaly("panic", "engine/worker/job");
                    }
                    let message = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    (
                        JobOutcome::Panicked { message },
                        false,
                        PhaseProfile::default(),
                    )
                }
            };
            JobRecord {
                name,
                origin,
                cache_hit,
                seconds: started.elapsed().as_secs_f64(),
                outcome,
                profile,
            }
        }
    }
}

/// The tier-2 configuration: the same budget (deadline, cancel token,
/// memory caps) with greedy pruning, a small queue, and stop-at-first —
/// a cheap, fast sweep that often succeeds exactly where the configured
/// search spent its node budget exploring.
fn relaxed_options(base: &SynthesisOptions) -> SynthesisOptions {
    base.clone()
        .with_pruning(Pruning::Greedy)
        .with_stop_at_first(true)
        .with_max_queue(Some(10_000))
}

/// One ladder tier: runs the search with the job's flight recorder
/// attached (when tracing) and folds the tier's phase timings into the
/// job profile whether or not it solved.
#[allow(clippy::too_many_arguments)]
fn run_search(
    spec: &MultiPprm,
    sopts: &SynthesisOptions,
    recorder: Option<&FlightRecorder>,
    profile: &mut PhaseProfile,
    counters: &RunCounters,
    telemetry: JobTelemetry,
    sink: Option<&SinkFactory>,
) -> Result<Synthesis, Option<StopReason>> {
    let mut observer = match sink {
        // Serve-path event streaming: a fresh sink per search attempt,
        // fed the same run_start/expand/... events the JSONL log sink
        // sees. Observation-only, like the recorder and progress hooks.
        Some(f) => Observer::with_sink(f()),
        None => Observer::null(),
    };
    if let Some(r) = recorder {
        observer = observer.with_recorder(r.clone());
    }
    if let Some((t, index)) = telemetry {
        // Live progress beats: one per TIME_CHECK_INTERVAL expansions.
        // The callback only stores into the job's slot atomics and a
        // histogram — it cannot influence the search, preserving
        // byte-identical results with telemetry on.
        let board = Arc::clone(t);
        let batches = Arc::clone(&t.expansion_batch_seconds);
        let mut last_beat = Instant::now();
        observer = observer.with_progress(Box::new(move |p| {
            board.jobs.update_progress(
                index,
                p.nodes_expanded,
                p.queue_depth as u64,
                p.live_terms,
                p.memory_sheds,
            );
            let now = Instant::now();
            batches.record(now.duration_since(last_beat).as_secs_f64());
            last_beat = now;
        }));
    }
    let tally = |stats: &rmrls_core::SearchStats| {
        counters.spec_hits.add(stats.spec_hits);
        counters.spec_misses.add(stats.spec_misses);
        if let Some((t, _)) = telemetry {
            t.note_memory_sheds(stats.memory_sheds);
        }
    };
    match synthesize_with_observer(spec, sopts, &mut observer) {
        Ok(s) => {
            tally(&s.stats);
            profile.merge(&s.stats.profile);
            Ok(s)
        }
        Err(e) => {
            tally(&e.stats);
            profile.merge(&e.stats.profile);
            Err(e.stats.stop_reason)
        }
    }
}

/// Records a fallback-ladder descent: a tier-escalation trace record
/// plus an anomaly, since escalation means a solver tier failed.
fn escalate(recorder: Option<&FlightRecorder>, from: SolveTier, to: SolveTier) {
    if let Some(r) = recorder {
        r.record(TraceKind::TierEscalate {
            from: from.as_str().to_string(),
            to: to.as_str().to_string(),
        });
        r.anomaly("tier_escalation", "engine/ladder");
    }
}

/// Runs the synthesis ladder on one (canonical) spec.
///
/// Tier 1 is the configured search. With `fallback` set, a failure
/// descends to tier 2 (relaxed pruning) and finally tier 3, the MMD
/// baseline — which always terminates, so a well-formed reversible spec
/// within [`MMD_FALLBACK_LIMIT`] wires cannot stay unsolved.
/// `perm_for_mmd` materializes the spec as a permutation for tier 3; it
/// returns `None` for specs too wide (or too broken) to hand to MMD,
/// and runs only if the ladder actually reaches tier 3.
///
/// An aborted batch is the one exception to "never fail": once the
/// shared cancel token has tripped, descending further would stall
/// shutdown, so the ladder returns the cancellation instead.
///
/// On failure, returns the *last* attempted tier's stop reason.
#[allow(clippy::too_many_arguments)]
fn synthesize_ladder(
    spec: &MultiPprm,
    sopts: &SynthesisOptions,
    fallback: bool,
    recorder: Option<&FlightRecorder>,
    profile: &mut PhaseProfile,
    counters: &RunCounters,
    telemetry: JobTelemetry,
    sink: Option<&SinkFactory>,
    perm_for_mmd: impl FnOnce() -> Option<Permutation>,
) -> Result<(Circuit, SolveTier), Option<StopReason>> {
    let tier1 = match run_search(spec, sopts, recorder, profile, counters, telemetry, sink) {
        Ok(s) => return Ok((s.circuit, SolveTier::Rmrls)),
        Err(reason) => reason,
    };
    if !fallback || sopts.budget.cancelled() {
        return Err(tier1);
    }
    escalate(recorder, SolveTier::Rmrls, SolveTier::RmrlsRelaxed);
    let tier2 = match run_search(
        spec,
        &relaxed_options(sopts),
        recorder,
        profile,
        counters,
        telemetry,
        sink,
    ) {
        Ok(s) => return Ok((s.circuit, SolveTier::RmrlsRelaxed)),
        Err(reason) => reason.or(tier1),
    };
    if sopts.budget.cancelled() {
        return Err(tier2);
    }
    match perm_for_mmd() {
        Some(p) => {
            escalate(recorder, SolveTier::RmrlsRelaxed, SolveTier::Mmd);
            Ok((
                mmd_synthesize(&p, MmdVariant::Bidirectional),
                SolveTier::Mmd,
            ))
        }
        None => Err(tier2),
    }
}

/// Folds one journaled record into the run counters, so a resumed
/// batch's aggregate report accounts for the whole job list, not just
/// the re-run remainder.
fn tally_resumed(job: &CompletedJob, counters: &RunCounters) {
    counters.jobs_resumed.inc();
    match job.status.as_str() {
        "solved" => {
            counters.jobs_completed.inc();
            match job.verified {
                Some(true) => counters.verified_ok.inc(),
                Some(false) => counters.verify_failures.inc(),
                None => {}
            }
            match job.solved_by.as_deref() {
                Some("rmrls-relaxed") => counters.solved_by_relaxed.inc(),
                Some("mmd") => counters.solved_by_mmd.inc(),
                // Pre-fallback journals have no solved_by; attribute to
                // the only tier that existed.
                _ => counters.solved_by_rmrls.inc(),
            }
        }
        "unsolved" => {
            counters.jobs_unsolved.inc();
            match job.stop_reason.as_deref() {
                Some("deadline expired") => counters.deadline_expired.inc(),
                Some("cancelled") => counters.cancelled.inc(),
                _ => {}
            }
        }
        "error" => counters.jobs_errored.inc(),
        "panicked" => counters.panics_contained.inc(),
        _ => {}
    }
}

fn tally_tier(tier: SolveTier, counters: &RunCounters) {
    match tier {
        SolveTier::Rmrls => counters.solved_by_rmrls.inc(),
        SolveTier::RmrlsRelaxed => counters.solved_by_relaxed.inc(),
        SolveTier::Mmd => counters.solved_by_mmd.inc(),
    }
}

/// Converts a fired failpoint into a contained `Error` record, so
/// injected faults flow through the same bookkeeping as real ones —
/// including an anomaly naming the site, so the fault matrix can assert
/// every injected class surfaces in a dump.
fn injected_error(
    e: rmrls_obs::FailError,
    site: &'static str,
    recorder: Option<&FlightRecorder>,
    counters: &RunCounters,
) -> JobOutcome {
    counters.jobs_errored.inc();
    if let Some(r) = recorder {
        r.anomaly("injected_fault", site);
    }
    JobOutcome::Error {
        message: e.to_string(),
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_job(
    job: &BatchJob,
    opts: &BatchOptions,
    shutdown: &ShutdownHandles,
    cache: Option<&SharedCache>,
    counters: &RunCounters,
    recorder: Option<&FlightRecorder>,
    telemetry: JobTelemetry,
    sink: Option<&SinkFactory>,
) -> (JobOutcome, bool, PhaseProfile) {
    // The engine-side profiler times the stages the search cannot see
    // (canonicalization + cache, verification); the search's own phase
    // table merges in through the ladder. `finish(ZERO)` contributes no
    // "other" time, so the job's residual stays attributed to the
    // search's wall clock, not double-counted here.
    let mut profiler = if opts.synthesis.profile {
        Profiler::enabled()
    } else {
        Profiler::disabled()
    };
    let mut profile = PhaseProfile::default();
    // Failpoint: a worker falling over as it picks the job up.
    if let Err(e) = rmrls_obs::fail::trigger("engine/worker/dispatch") {
        return (
            injected_error(e, "engine/worker/dispatch", recorder, counters),
            false,
            profile,
        );
    }
    let mut sopts = opts
        .synthesis
        .clone()
        .with_cancel_token(shutdown.abort.clone());
    if let Some(d) = opts.deadline {
        sopts = sopts.with_deadline(Instant::now() + d);
    }
    match &job.spec {
        SpecData::Perm(p) => {
            // Always synthesize the canonical representative — cache on
            // or off — so results never depend on scheduling (see the
            // module docs).
            let t_cache = profiler.start();
            let lookup_started = telemetry.map(|_| Instant::now());
            let (canon_table, sigma) = canonical_form(p, opts.canon_limit);
            let key = CacheKey {
                num_vars: p.num_vars(),
                table: canon_table,
            };
            let mut cache_hit = false;
            // Failpoint: a lookup failure degrades to a miss — the job
            // re-synthesizes rather than erroring.
            let mut canon_solution = match rmrls_obs::fail::trigger("engine/cache/lookup") {
                Ok(()) => cache.and_then(|c| c.lock().get(&key)),
                Err(_) => None,
            };
            profiler.stop("cache", t_cache);
            if let (Some((t, _)), Some(at)) = (telemetry, lookup_started) {
                t.cache_lookup_seconds.record(at.elapsed().as_secs_f64());
            }
            if canon_solution.is_some() {
                counters.cache_hits.inc();
                cache_hit = true;
            } else if cache.is_some() {
                counters.cache_misses.inc();
            }
            if let Some(r) = recorder {
                if cache.is_some() {
                    r.record(TraceKind::CacheLookup { hit: cache_hit });
                }
            }
            // Second chance: the durable store's verified index. A hit
            // is promoted into the in-memory cache so repeats within
            // this run stay memory-speed.
            let mut store_hit = false;
            if canon_solution.is_none() {
                if let Some(s) = opts.store.as_ref() {
                    canon_solution = s.lock().get(&key);
                    if let Some((circuit, tier)) = &canon_solution {
                        counters.store_hits.inc();
                        store_hit = true;
                        if let Some(c) = cache {
                            c.lock().insert(key.clone(), circuit.clone(), *tier);
                        }
                    }
                }
            }
            if !cache_hit && !store_hit {
                let spec = MultiPprm::from_permutation(&key.table, key.num_vars);
                let ladder = synthesize_ladder(
                    &spec,
                    &sopts,
                    opts.fallback,
                    recorder,
                    &mut profile,
                    counters,
                    telemetry,
                    sink,
                    || {
                        (key.num_vars <= MMD_FALLBACK_LIMIT)
                            .then(|| Permutation::from_vec(key.table.clone()).ok())
                            .flatten()
                    },
                );
                match ladder {
                    Ok((circuit, tier)) => {
                        // Failpoint: a failed insert only costs future
                        // hits; this job's result is already in hand.
                        if let Some(c) = cache {
                            if rmrls_obs::fail::trigger("engine/cache/insert").is_ok() {
                                c.lock().insert(key.clone(), circuit.clone(), tier);
                            }
                        }
                        // Offer the fresh synthesis to the durable
                        // store; an append failure costs only future
                        // warm starts, never this job.
                        if let Some(s) = opts.store.as_ref() {
                            match s
                                .lock()
                                .insert(&key, &circuit, tier, &opts.store_provenance)
                            {
                                Ok(crate::store::InsertOutcome::Inserted { .. }) => {
                                    counters.store_inserts.inc();
                                }
                                Ok(_) => {}
                                Err(_) => {
                                    counters.store_append_errors.inc();
                                    if let Some(r) = recorder {
                                        r.anomaly("store_append_failed", "engine/store/append");
                                    }
                                }
                            }
                        }
                        canon_solution = Some((circuit, tier));
                    }
                    Err(reason) => {
                        profile.merge(&profiler.finish(Duration::ZERO));
                        return (unsolved(reason, counters), cache_hit, profile);
                    }
                }
            }
            let (canon_circuit, tier) = canon_solution.expect("hit or fresh");
            let circuit = uncanonicalize_circuit(&canon_circuit, &sigma);
            // Failpoint: the verifier itself failing. An unverifiable
            // result must not be reported as solved.
            if let Err(e) = rmrls_obs::fail::trigger("engine/worker/pre-verify") {
                profile.merge(&profiler.finish(Duration::ZERO));
                return (
                    injected_error(e, "engine/worker/pre-verify", recorder, counters),
                    cache_hit || store_hit,
                    profile,
                );
            }
            let t_verify = profiler.start();
            let verified = opts.verify.then(|| verify_permutation(&circuit, p));
            profiler.stop("verify", t_verify);
            tally_verify(verified, counters);
            tally_tier(tier, counters);
            counters.jobs_completed.inc();
            profile.merge(&profiler.finish(Duration::ZERO));
            (
                JobOutcome::Solved {
                    circuit,
                    verified,
                    solved_by: tier,
                },
                // A durable-store hit reports as a cache hit: either
                // way the circuit came from the canonical cache layer,
                // not a fresh search.
                cache_hit || store_hit,
                profile,
            )
        }
        SpecData::Pprm(m) => {
            // Symbolic specs are not canonicalized or cached; the
            // ladder still applies, with tier 3 gated on the spec
            // having a materializable (reversible, narrow-enough)
            // truth table.
            let ladder = synthesize_ladder(
                m,
                &sopts,
                opts.fallback,
                recorder,
                &mut profile,
                counters,
                telemetry,
                sink,
                || {
                    (m.num_vars() <= MMD_FALLBACK_LIMIT)
                        .then(|| Permutation::from_vec(m.to_permutation()).ok())
                        .flatten()
                },
            );
            match ladder {
                Ok((circuit, tier)) => {
                    if let Err(e) = rmrls_obs::fail::trigger("engine/worker/pre-verify") {
                        profile.merge(&profiler.finish(Duration::ZERO));
                        return (
                            injected_error(e, "engine/worker/pre-verify", recorder, counters),
                            false,
                            profile,
                        );
                    }
                    let t_verify = profiler.start();
                    let verified = opts.verify.then(|| verify_pprm(&circuit, m));
                    profiler.stop("verify", t_verify);
                    tally_verify(verified, counters);
                    tally_tier(tier, counters);
                    counters.jobs_completed.inc();
                    profile.merge(&profiler.finish(Duration::ZERO));
                    (
                        JobOutcome::Solved {
                            circuit,
                            verified,
                            solved_by: tier,
                        },
                        false,
                        profile,
                    )
                }
                Err(reason) => {
                    profile.merge(&profiler.finish(Duration::ZERO));
                    (unsolved(reason, counters), false, profile)
                }
            }
        }
    }
}

fn unsolved(reason: Option<StopReason>, counters: &RunCounters) -> JobOutcome {
    match reason {
        Some(StopReason::DeadlineExpired) => counters.deadline_expired.inc(),
        Some(StopReason::Cancelled) => counters.cancelled.inc(),
        _ => {}
    }
    counters.jobs_unsolved.inc();
    JobOutcome::Unsolved {
        stop_reason: reason
            .map(|r| r.to_string())
            .unwrap_or_else(|| "unknown".to_string()),
    }
}

fn tally_verify(verified: Option<bool>, counters: &RunCounters) {
    match verified {
        Some(true) => counters.verified_ok.inc(),
        Some(false) => counters.verify_failures.inc(),
        None => {}
    }
}

fn verify_permutation(circuit: &Circuit, p: &Permutation) -> bool {
    circuit.width() == p.num_vars() && circuit.to_permutation() == p.as_slice()
}

fn verify_pprm(circuit: &Circuit, m: &MultiPprm) -> bool {
    let n = m.num_vars();
    if circuit.width() != n {
        return false;
    }
    if n <= VERIFY_EXHAUSTIVE_LIMIT {
        (0..1u64 << n).all(|x| circuit.apply(x) == m.eval(x))
    } else {
        // Quasirandom probes, same multiplier as check_equivalence.
        let mask = if n >= 64 { !0u64 } else { (1u64 << n) - 1 };
        (0..VERIFY_PROBES).all(|k| {
            let x = k.wrapping_mul(0x9e37_79b9_7f4a_7c15) & mask;
            circuit.apply(x) == m.eval(x)
        })
    }
}
