//! The batch engine: a fixed worker pool over a shared job queue.
//!
//! Execution model, per job:
//!
//! 1. tabulated permutations are **canonicalized** under wire
//!    relabeling and the search always runs on the canonical
//!    representative, whether or not the cache is enabled — this is
//!    what makes batch results byte-identical across worker counts and
//!    cache on/off (the cache merely memoizes a computation the engine
//!    would deterministically repeat);
//! 2. the shared LRU cache is consulted on the canonical table; a hit
//!    skips the search entirely and the cached circuit is conjugated
//!    back to the requested labeling;
//! 3. each job runs under `catch_unwind`, so one poisoned spec becomes
//!    a `panicked` record instead of taking down the run;
//! 4. each job's search carries a [`Budget`](rmrls_core::Budget): the
//!    per-job deadline (measured from job start) plus the engine's
//!    abort token, so shutdown reaches in-flight searches within one
//!    budget poll.
//!
//! Results are written in job-admission order regardless of completion
//! order. The per-job JSONL stream contains only deterministic fields;
//! wall-clock timings and cache statistics live in the aggregate
//! report, which is allowed to vary run to run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rmrls_circuit::Circuit;
use rmrls_core::{synthesize, StopReason, SynthesisOptions};
use rmrls_obs::{Json, SyncCounter};
use rmrls_pprm::MultiPprm;
use rmrls_spec::Permutation;

use crate::cache::{CacheKey, CircuitCache};
use crate::canon::{canonical_form, uncanonicalize_circuit};
use crate::manifest::{Admission, BatchJob, SpecData};
use crate::signal::ShutdownHandles;

/// Version of the batch report / results-JSONL schema.
pub const BATCH_SCHEMA_VERSION: u64 = 1;

/// Widths up to this bound are verified exhaustively; wider symbolic
/// specs fall back to quasirandom probes (mirrors the policy of
/// `rmrls_circuit::check_equivalence`).
const VERIFY_EXHAUSTIVE_LIMIT: usize = 20;
const VERIFY_PROBES: u64 = 4096;

/// Configuration of one batch run.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Per-job deadline, measured from the moment the job is dequeued.
    pub deadline: Option<Duration>,
    /// Result-cache capacity; `None` disables the cache.
    pub cache_size: Option<usize>,
    /// Widest permutation canonicalized by brute force (cost `n!·2^n`).
    pub canon_limit: usize,
    /// Verify every produced circuit against its specification.
    pub verify: bool,
    /// Base search configuration applied to every job.
    pub synthesis: SynthesisOptions,
}

impl Default for BatchOptions {
    /// One worker, 1024-entry cache, canonicalization up to 8 wires,
    /// verification on, and a 200k-node search budget so a batch
    /// without a deadline still terminates.
    fn default() -> BatchOptions {
        BatchOptions {
            workers: 1,
            deadline: None,
            cache_size: Some(1024),
            canon_limit: 8,
            verify: true,
            synthesis: SynthesisOptions::new().with_max_nodes(200_000),
        }
    }
}

/// How one job ended.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// A circuit was produced (and possibly verified).
    Solved {
        /// The synthesized circuit, in the job's own wire labeling.
        circuit: Circuit,
        /// `Some(result)` when verification ran, `None` when disabled.
        verified: Option<bool>,
    },
    /// The search stopped without a solution.
    Unsolved {
        /// Display form of the search's stop reason.
        stop_reason: String,
    },
    /// The job could not be loaded or was invalid.
    Error {
        /// What was wrong.
        message: String,
    },
    /// The job panicked; the panic was contained to this record.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The batch was drained before this job started.
    Skipped,
}

/// One job's result row.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Display name.
    pub name: String,
    /// `file:line` / `suite:*` origin.
    pub origin: String,
    /// Whether this job was served from the cache.
    pub cache_hit: bool,
    /// Wall-clock seconds spent on the job.
    pub seconds: f64,
    /// How it ended.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Serializes the **deterministic** portion of the record (no
    /// timings, no cache attribution) as one JSONL object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("job".to_string(), Json::str(&self.name)),
            ("origin".to_string(), Json::str(&self.origin)),
        ];
        match &self.outcome {
            JobOutcome::Solved { circuit, verified } => {
                let gates: Vec<Json> = circuit
                    .gates()
                    .iter()
                    .map(|g| Json::Str(g.to_string()))
                    .collect();
                fields.push(("status".to_string(), Json::str("solved")));
                fields.push(("width".to_string(), Json::uint(circuit.width() as u64)));
                fields.push(("gates".to_string(), Json::uint(circuit.gate_count() as u64)));
                fields.push((
                    "quantum_cost".to_string(),
                    Json::uint(circuit.quantum_cost()),
                ));
                fields.push((
                    "verified".to_string(),
                    verified.map(Json::Bool).unwrap_or(Json::Null),
                ));
                fields.push(("circuit".to_string(), Json::Arr(gates)));
            }
            JobOutcome::Unsolved { stop_reason } => {
                fields.push(("status".to_string(), Json::str("unsolved")));
                fields.push(("stop_reason".to_string(), Json::str(stop_reason)));
            }
            JobOutcome::Error { message } => {
                fields.push(("status".to_string(), Json::str("error")));
                fields.push(("message".to_string(), Json::str(message)));
            }
            JobOutcome::Panicked { message } => {
                fields.push(("status".to_string(), Json::str("panicked")));
                fields.push(("message".to_string(), Json::str(message)));
            }
            JobOutcome::Skipped => {
                fields.push(("status".to_string(), Json::str("skipped")));
            }
        }
        Json::Obj(fields)
    }
}

/// Aggregate counters of one batch run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchCounters {
    /// Jobs admitted (including per-job manifest errors).
    pub jobs_total: u64,
    /// Jobs that produced a circuit.
    pub jobs_completed: u64,
    /// Jobs whose search stopped without a solution.
    pub jobs_unsolved: u64,
    /// Jobs rejected at admission (malformed manifest entries).
    pub jobs_errored: u64,
    /// Panics contained by per-job isolation.
    pub panics_contained: u64,
    /// Jobs never started because the batch drained.
    pub jobs_skipped: u64,
    /// Canonical-cache hits.
    pub cache_hits: u64,
    /// Canonical-cache misses (cache enabled, entry absent).
    pub cache_misses: u64,
    /// Searches stopped by their per-job deadline.
    pub deadline_expired: u64,
    /// Searches stopped by the abort token.
    pub cancelled: u64,
    /// Circuits that passed verification.
    pub verified_ok: u64,
    /// Circuits that FAILED verification (always a bug).
    pub verify_failures: u64,
}

impl BatchCounters {
    /// Cache hit-rate in [0, 1]; `None` when the cache saw no traffic.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("jobs_total".to_string(), Json::uint(self.jobs_total)),
            (
                "jobs_completed".to_string(),
                Json::uint(self.jobs_completed),
            ),
            ("jobs_unsolved".to_string(), Json::uint(self.jobs_unsolved)),
            ("jobs_errored".to_string(), Json::uint(self.jobs_errored)),
            (
                "panics_contained".to_string(),
                Json::uint(self.panics_contained),
            ),
            ("jobs_skipped".to_string(), Json::uint(self.jobs_skipped)),
            ("cache_hits".to_string(), Json::uint(self.cache_hits)),
            ("cache_misses".to_string(), Json::uint(self.cache_misses)),
            (
                "deadline_expired".to_string(),
                Json::uint(self.deadline_expired),
            ),
            ("cancelled".to_string(), Json::uint(self.cancelled)),
            ("verified_ok".to_string(), Json::uint(self.verified_ok)),
            (
                "verify_failures".to_string(),
                Json::uint(self.verify_failures),
            ),
        ])
    }
}

/// Thread-shared counter set; snapshotted into [`BatchCounters`] once
/// the pool joins.
#[derive(Default)]
struct RunCounters {
    jobs_completed: SyncCounter,
    jobs_unsolved: SyncCounter,
    jobs_errored: SyncCounter,
    panics_contained: SyncCounter,
    cache_hits: SyncCounter,
    cache_misses: SyncCounter,
    deadline_expired: SyncCounter,
    cancelled: SyncCounter,
    verified_ok: SyncCounter,
    verify_failures: SyncCounter,
}

/// A completed (possibly partially drained) batch run.
#[derive(Debug)]
pub struct BatchRun {
    /// Per-job records in admission order.
    pub records: Vec<JobRecord>,
    /// Aggregate counters.
    pub counters: BatchCounters,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl BatchRun {
    /// The per-job results as JSON lines (one object per job, in
    /// admission order; deterministic for a given manifest and search
    /// configuration, independent of worker count and cache setting).
    pub fn results_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&record.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Jobs actually processed (everything but skipped).
    pub fn jobs_processed(&self) -> u64 {
        self.counters.jobs_total - self.counters.jobs_skipped
    }

    /// Throughput over the whole run, in specifications per second.
    pub fn specs_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.jobs_processed() as f64 / secs
        } else {
            0.0
        }
    }

    /// The aggregate run report (counters, throughput, configuration
    /// echoes — the non-deterministic complement of the JSONL stream).
    pub fn report_json(&self, opts: &BatchOptions) -> Json {
        Json::Obj(vec![
            (
                "schema_version".to_string(),
                Json::uint(BATCH_SCHEMA_VERSION),
            ),
            ("tool".to_string(), Json::str("rmrls-batch")),
            ("workers".to_string(), Json::uint(self.workers as u64)),
            (
                "deadline_ms".to_string(),
                opts.deadline
                    .map(|d| Json::uint(d.as_millis() as u64))
                    .unwrap_or(Json::Null),
            ),
            (
                "cache_size".to_string(),
                opts.cache_size
                    .map(|c| Json::uint(c as u64))
                    .unwrap_or(Json::Null),
            ),
            (
                "canon_limit".to_string(),
                Json::uint(opts.canon_limit as u64),
            ),
            ("verify".to_string(), Json::Bool(opts.verify)),
            (
                "elapsed_seconds".to_string(),
                Json::Num(self.elapsed.as_secs_f64()),
            ),
            (
                "specs_per_second".to_string(),
                Json::Num(self.specs_per_second()),
            ),
            (
                "cache_hit_rate".to_string(),
                self.counters
                    .cache_hit_rate()
                    .map(Json::Num)
                    .unwrap_or(Json::Null),
            ),
            ("counters".to_string(), self.counters.to_json()),
        ])
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A worker panicking inside the cache poisons the mutex; the data
    // (an LRU map) stays structurally valid, so recover rather than
    // letting one contained panic disable caching for the rest of the
    // run.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs every admitted job on a pool of `opts.workers` threads.
///
/// Returns when all jobs are finished or the batch drained via
/// `shutdown`; never panics on job failures (panics are contained into
/// per-job records).
pub fn run_batch(
    admissions: &[Admission],
    opts: &BatchOptions,
    shutdown: &ShutdownHandles,
) -> BatchRun {
    let started = Instant::now();
    let workers = opts.workers.max(1);
    let cache = opts
        .cache_size
        .map(|cap| Mutex::new(CircuitCache::new(cap)));
    let counters = RunCounters::default();
    let slots: Vec<Mutex<Option<JobRecord>>> =
        admissions.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                shutdown.poll_signals();
                if shutdown.draining() {
                    break;
                }
                let index = next.fetch_add(1, Ordering::SeqCst);
                if index >= admissions.len() {
                    break;
                }
                let record = run_one(
                    &admissions[index],
                    opts,
                    shutdown,
                    cache.as_ref(),
                    &counters,
                );
                *lock(&slots[index]) = Some(record);
            });
        }
    });

    let mut jobs_skipped = 0u64;
    let records: Vec<JobRecord> = admissions
        .iter()
        .zip(slots)
        .map(|(adm, slot)| {
            lock(&slot).take().unwrap_or_else(|| {
                jobs_skipped += 1;
                JobRecord {
                    name: adm.name().to_string(),
                    origin: adm.origin().to_string(),
                    cache_hit: false,
                    seconds: 0.0,
                    outcome: JobOutcome::Skipped,
                }
            })
        })
        .collect();

    let snapshot = BatchCounters {
        jobs_total: admissions.len() as u64,
        jobs_completed: counters.jobs_completed.get(),
        jobs_unsolved: counters.jobs_unsolved.get(),
        jobs_errored: counters.jobs_errored.get(),
        panics_contained: counters.panics_contained.get(),
        jobs_skipped,
        cache_hits: counters.cache_hits.get(),
        cache_misses: counters.cache_misses.get(),
        deadline_expired: counters.deadline_expired.get(),
        cancelled: counters.cancelled.get(),
        verified_ok: counters.verified_ok.get(),
        verify_failures: counters.verify_failures.get(),
    };
    BatchRun {
        records,
        counters: snapshot,
        elapsed: started.elapsed(),
        workers,
    }
}

fn run_one(
    admission: &Admission,
    opts: &BatchOptions,
    shutdown: &ShutdownHandles,
    cache: Option<&Mutex<CircuitCache>>,
    counters: &RunCounters,
) -> JobRecord {
    let started = Instant::now();
    let (name, origin) = (admission.name().to_string(), admission.origin().to_string());
    match admission {
        Admission::Error { message, .. } => {
            counters.jobs_errored.inc();
            JobRecord {
                name,
                origin,
                cache_hit: false,
                seconds: started.elapsed().as_secs_f64(),
                outcome: JobOutcome::Error {
                    message: message.clone(),
                },
            }
        }
        Admission::Job(job) => {
            let result = catch_unwind(AssertUnwindSafe(|| {
                execute_job(job, opts, shutdown, cache, counters)
            }));
            let (outcome, cache_hit) = match result {
                Ok(r) => r,
                Err(payload) => {
                    counters.panics_contained.inc();
                    let message = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    (JobOutcome::Panicked { message }, false)
                }
            };
            JobRecord {
                name,
                origin,
                cache_hit,
                seconds: started.elapsed().as_secs_f64(),
                outcome,
            }
        }
    }
}

fn execute_job(
    job: &BatchJob,
    opts: &BatchOptions,
    shutdown: &ShutdownHandles,
    cache: Option<&Mutex<CircuitCache>>,
    counters: &RunCounters,
) -> (JobOutcome, bool) {
    let mut sopts = opts
        .synthesis
        .clone()
        .with_cancel_token(shutdown.abort.clone());
    if let Some(d) = opts.deadline {
        sopts = sopts.with_deadline(Instant::now() + d);
    }
    match &job.spec {
        SpecData::Perm(p) => {
            // Always synthesize the canonical representative — cache on
            // or off — so results never depend on scheduling (see the
            // module docs).
            let (canon_table, sigma) = canonical_form(p, opts.canon_limit);
            let key = CacheKey {
                num_vars: p.num_vars(),
                table: canon_table,
            };
            let mut cache_hit = false;
            let mut canon_circuit = cache.and_then(|m| lock(m).get(&key));
            if canon_circuit.is_some() {
                counters.cache_hits.inc();
                cache_hit = true;
            } else {
                if cache.is_some() {
                    counters.cache_misses.inc();
                }
                let spec = MultiPprm::from_permutation(&key.table, key.num_vars);
                match synthesize(&spec, &sopts) {
                    Ok(s) => {
                        if let Some(m) = cache {
                            lock(m).insert(key, s.circuit.clone());
                        }
                        canon_circuit = Some(s.circuit);
                    }
                    Err(e) => return (unsolved(e.stats.stop_reason, counters), cache_hit),
                }
            }
            let circuit = uncanonicalize_circuit(&canon_circuit.expect("hit or fresh"), &sigma);
            let verified = opts.verify.then(|| verify_permutation(&circuit, p));
            tally_verify(verified, counters);
            counters.jobs_completed.inc();
            (JobOutcome::Solved { circuit, verified }, cache_hit)
        }
        SpecData::Pprm(m) => match synthesize(m, &sopts) {
            Ok(s) => {
                let verified = opts.verify.then(|| verify_pprm(&s.circuit, m));
                tally_verify(verified, counters);
                counters.jobs_completed.inc();
                (
                    JobOutcome::Solved {
                        circuit: s.circuit,
                        verified,
                    },
                    false,
                )
            }
            Err(e) => (unsolved(e.stats.stop_reason, counters), false),
        },
    }
}

fn unsolved(reason: Option<StopReason>, counters: &RunCounters) -> JobOutcome {
    match reason {
        Some(StopReason::DeadlineExpired) => counters.deadline_expired.inc(),
        Some(StopReason::Cancelled) => counters.cancelled.inc(),
        _ => {}
    }
    counters.jobs_unsolved.inc();
    JobOutcome::Unsolved {
        stop_reason: reason
            .map(|r| r.to_string())
            .unwrap_or_else(|| "unknown".to_string()),
    }
}

fn tally_verify(verified: Option<bool>, counters: &RunCounters) {
    match verified {
        Some(true) => counters.verified_ok.inc(),
        Some(false) => counters.verify_failures.inc(),
        None => {}
    }
}

fn verify_permutation(circuit: &Circuit, p: &Permutation) -> bool {
    circuit.width() == p.num_vars() && circuit.to_permutation() == p.as_slice()
}

fn verify_pprm(circuit: &Circuit, m: &MultiPprm) -> bool {
    let n = m.num_vars();
    if circuit.width() != n {
        return false;
    }
    if n <= VERIFY_EXHAUSTIVE_LIMIT {
        (0..1u64 << n).all(|x| circuit.apply(x) == m.eval(x))
    } else {
        // Quasirandom probes, same multiplier as check_equivalence.
        let mask = if n >= 64 { !0u64 } else { (1u64 << n) - 1 };
        (0..VERIFY_PROBES).all(|k| {
            let x = k.wrapping_mul(0x9e37_79b9_7f4a_7c15) & mask;
            circuit.apply(x) == m.eval(x)
        })
    }
}
