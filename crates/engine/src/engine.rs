//! The batch engine: a fixed worker pool over a shared job queue.
//!
//! Execution model, per job:
//!
//! 1. tabulated permutations are **canonicalized** under wire
//!    relabeling and the search always runs on the canonical
//!    representative, whether or not the cache is enabled — this is
//!    what makes batch results byte-identical across worker counts and
//!    cache on/off (the cache merely memoizes a computation the engine
//!    would deterministically repeat);
//! 2. the shared LRU cache is consulted on the canonical table; a hit
//!    skips the search entirely and the cached circuit is conjugated
//!    back to the requested labeling;
//! 3. each job runs under `catch_unwind`, so one poisoned spec becomes
//!    a `panicked` record instead of taking down the run;
//! 4. each job's search carries a [`Budget`](rmrls_core::Budget): the
//!    per-job deadline (measured from job start) plus the engine's
//!    abort token, so shutdown reaches in-flight searches within one
//!    budget poll;
//! 5. with [`BatchOptions::fallback`] set, a failed search descends a
//!    **fallback ladder** — relaxed-pruning RMRLS, then the MMD
//!    baseline, which always terminates — and every solved record
//!    carries its producing tier as `solved_by`.
//!
//! Results are written in job-admission order regardless of completion
//! order. The per-job JSONL stream contains only deterministic fields;
//! wall-clock timings and cache statistics live in the aggregate
//! report, which is allowed to vary run to run.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rmrls_baselines::{mmd_synthesize, MmdVariant};
use rmrls_circuit::Circuit;
use rmrls_core::{synthesize, Pruning, StopReason, SynthesisOptions};
use rmrls_obs::{Json, SyncCounter};
use rmrls_pprm::MultiPprm;
use rmrls_spec::Permutation;

use crate::cache::{CacheKey, CircuitCache};
use crate::canon::{canonical_form, uncanonicalize_circuit};
use crate::journal::{CompletedJob, JournalWriter};
use crate::manifest::{Admission, BatchJob, SpecData};
use crate::signal::ShutdownHandles;

/// Version of the batch report / results-JSONL schema.
pub const BATCH_SCHEMA_VERSION: u64 = 1;

/// Widths up to this bound are verified exhaustively; wider symbolic
/// specs fall back to quasirandom probes (mirrors the policy of
/// `rmrls_circuit::check_equivalence`).
const VERIFY_EXHAUSTIVE_LIMIT: usize = 20;
const VERIFY_PROBES: u64 = 4096;

/// Widest spec handed to the MMD fallback tier: MMD materializes the
/// full `2^n` truth table, so the ladder only descends to it for specs
/// that fit (this matches the manifest loader's TFC width cap).
const MMD_FALLBACK_LIMIT: usize = 16;

/// Which rung of the fallback ladder produced a circuit.
///
/// The ladder is deterministic per (canonical spec, options): every run
/// that solves a given job solves it at the same tier, so `solved_by`
/// is part of the deterministic JSONL stream and identical across
/// worker counts and cache settings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveTier {
    /// The configured RMRLS search solved it directly.
    Rmrls,
    /// The relaxed retry (greedy pruning, small queue, stop at first
    /// solution) solved it after the configured search gave up.
    RmrlsRelaxed,
    /// The MMD transformation-based baseline solved it; MMD always
    /// terminates, which is what makes the ladder total.
    Mmd,
}

impl SolveTier {
    /// Stable lowercase name used in JSONL records and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            SolveTier::Rmrls => "rmrls",
            SolveTier::RmrlsRelaxed => "rmrls-relaxed",
            SolveTier::Mmd => "mmd",
        }
    }
}

/// Configuration of one batch run.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Per-job deadline, measured from the moment the job is dequeued.
    pub deadline: Option<Duration>,
    /// Result-cache capacity; `None` disables the cache.
    pub cache_size: Option<usize>,
    /// Widest permutation canonicalized by brute force (cost `n!·2^n`).
    pub canon_limit: usize,
    /// Verify every produced circuit against its specification.
    pub verify: bool,
    /// Run the fallback ladder: when the configured search gives up,
    /// retry with relaxed pruning, then hand the job to the MMD
    /// baseline (which always terminates). With this set, every
    /// well-formed reversible job of fallback-eligible width produces a
    /// verified circuit.
    pub fallback: bool,
    /// Base search configuration applied to every job.
    pub synthesis: SynthesisOptions,
}

impl Default for BatchOptions {
    /// One worker, 1024-entry cache, canonicalization up to 8 wires,
    /// verification on, and a 200k-node search budget so a batch
    /// without a deadline still terminates.
    fn default() -> BatchOptions {
        BatchOptions {
            workers: 1,
            deadline: None,
            cache_size: Some(1024),
            canon_limit: 8,
            verify: true,
            fallback: false,
            synthesis: SynthesisOptions::new().with_max_nodes(200_000),
        }
    }
}

/// How one job ended.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// A circuit was produced (and possibly verified).
    Solved {
        /// The synthesized circuit, in the job's own wire labeling.
        circuit: Circuit,
        /// `Some(result)` when verification ran, `None` when disabled.
        verified: Option<bool>,
        /// Which ladder tier produced the circuit (`Rmrls` unless the
        /// fallback ladder descended).
        solved_by: SolveTier,
    },
    /// The search stopped without a solution.
    Unsolved {
        /// Display form of the search's stop reason.
        stop_reason: String,
    },
    /// The job could not be loaded or was invalid.
    Error {
        /// What was wrong.
        message: String,
    },
    /// The job panicked; the panic was contained to this record.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The batch was drained before this job started.
    Skipped,
    /// The job was recovered from a resume journal; `json` is its
    /// journaled record, verbatim (including the `index` field).
    Resumed {
        /// The record as read from the journal.
        json: Json,
    },
}

/// One job's result row.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Display name.
    pub name: String,
    /// `file:line` / `suite:*` origin.
    pub origin: String,
    /// Whether this job was served from the cache.
    pub cache_hit: bool,
    /// Wall-clock seconds spent on the job.
    pub seconds: f64,
    /// How it ended.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Serializes the **deterministic** portion of the record (no
    /// timings, no cache attribution) as one JSONL object.
    ///
    /// A [`Resumed`](JobOutcome::Resumed) record returns its journaled
    /// JSON with the `index` field stripped — byte-identical to what
    /// the original run's `to_json` produced, so a resumed batch's
    /// results stream matches an uninterrupted run's.
    pub fn to_json(&self) -> Json {
        if let JobOutcome::Resumed { json } = &self.outcome {
            if let Json::Obj(fields) = json {
                return Json::Obj(
                    fields
                        .iter()
                        .filter(|(k, _)| k != "index")
                        .cloned()
                        .collect(),
                );
            }
            return json.clone();
        }
        let mut fields = vec![
            ("job".to_string(), Json::str(&self.name)),
            ("origin".to_string(), Json::str(&self.origin)),
        ];
        match &self.outcome {
            JobOutcome::Solved {
                circuit,
                verified,
                solved_by,
            } => {
                let gates: Vec<Json> = circuit
                    .gates()
                    .iter()
                    .map(|g| Json::Str(g.to_string()))
                    .collect();
                fields.push(("status".to_string(), Json::str("solved")));
                fields.push(("solved_by".to_string(), Json::str(solved_by.as_str())));
                fields.push(("width".to_string(), Json::uint(circuit.width() as u64)));
                fields.push(("gates".to_string(), Json::uint(circuit.gate_count() as u64)));
                fields.push((
                    "quantum_cost".to_string(),
                    Json::uint(circuit.quantum_cost()),
                ));
                fields.push((
                    "verified".to_string(),
                    verified.map(Json::Bool).unwrap_or(Json::Null),
                ));
                fields.push(("circuit".to_string(), Json::Arr(gates)));
            }
            JobOutcome::Unsolved { stop_reason } => {
                fields.push(("status".to_string(), Json::str("unsolved")));
                fields.push(("stop_reason".to_string(), Json::str(stop_reason)));
            }
            JobOutcome::Error { message } => {
                fields.push(("status".to_string(), Json::str("error")));
                fields.push(("message".to_string(), Json::str(message)));
            }
            JobOutcome::Panicked { message } => {
                fields.push(("status".to_string(), Json::str("panicked")));
                fields.push(("message".to_string(), Json::str(message)));
            }
            JobOutcome::Skipped => {
                fields.push(("status".to_string(), Json::str("skipped")));
            }
            JobOutcome::Resumed { .. } => unreachable!("handled above"),
        }
        Json::Obj(fields)
    }

    /// Serializes the record as a journal line: [`to_json`] plus a
    /// leading `index` field tying it to its admission slot. Resumed
    /// records return their journaled JSON verbatim.
    pub fn to_json_indexed(&self, index: usize) -> Json {
        if let JobOutcome::Resumed { json } = &self.outcome {
            return json.clone();
        }
        let Json::Obj(fields) = self.to_json() else {
            unreachable!("to_json always returns an object");
        };
        let mut indexed = Vec::with_capacity(fields.len() + 1);
        indexed.push(("index".to_string(), Json::uint(index as u64)));
        indexed.extend(fields);
        Json::Obj(indexed)
    }
}

/// Aggregate counters of one batch run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchCounters {
    /// Jobs admitted (including per-job manifest errors).
    pub jobs_total: u64,
    /// Jobs that produced a circuit.
    pub jobs_completed: u64,
    /// Jobs whose search stopped without a solution.
    pub jobs_unsolved: u64,
    /// Jobs rejected at admission (malformed manifest entries).
    pub jobs_errored: u64,
    /// Panics contained by per-job isolation.
    pub panics_contained: u64,
    /// Jobs never started because the batch drained.
    pub jobs_skipped: u64,
    /// Canonical-cache hits.
    pub cache_hits: u64,
    /// Canonical-cache misses (cache enabled, entry absent).
    pub cache_misses: u64,
    /// Searches stopped by their per-job deadline.
    pub deadline_expired: u64,
    /// Searches stopped by the abort token.
    pub cancelled: u64,
    /// Circuits that passed verification.
    pub verified_ok: u64,
    /// Circuits that FAILED verification (always a bug).
    pub verify_failures: u64,
    /// Jobs solved by the configured RMRLS search (tier 1).
    pub solved_by_rmrls: u64,
    /// Jobs solved by the relaxed-pruning retry (tier 2).
    pub solved_by_relaxed: u64,
    /// Jobs solved by the MMD baseline (tier 3).
    pub solved_by_mmd: u64,
    /// Jobs recovered from a resume journal instead of re-running.
    pub jobs_resumed: u64,
    /// Journal appends that failed (the batch continues; the journal
    /// merely under-records, which a later resume re-runs).
    pub journal_append_errors: u64,
}

impl BatchCounters {
    /// Cache hit-rate in [0, 1]; `None` when the cache saw no traffic.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("jobs_total".to_string(), Json::uint(self.jobs_total)),
            (
                "jobs_completed".to_string(),
                Json::uint(self.jobs_completed),
            ),
            ("jobs_unsolved".to_string(), Json::uint(self.jobs_unsolved)),
            ("jobs_errored".to_string(), Json::uint(self.jobs_errored)),
            (
                "panics_contained".to_string(),
                Json::uint(self.panics_contained),
            ),
            ("jobs_skipped".to_string(), Json::uint(self.jobs_skipped)),
            ("cache_hits".to_string(), Json::uint(self.cache_hits)),
            ("cache_misses".to_string(), Json::uint(self.cache_misses)),
            (
                "deadline_expired".to_string(),
                Json::uint(self.deadline_expired),
            ),
            ("cancelled".to_string(), Json::uint(self.cancelled)),
            ("verified_ok".to_string(), Json::uint(self.verified_ok)),
            (
                "verify_failures".to_string(),
                Json::uint(self.verify_failures),
            ),
            (
                "solved_by_rmrls".to_string(),
                Json::uint(self.solved_by_rmrls),
            ),
            (
                "solved_by_relaxed".to_string(),
                Json::uint(self.solved_by_relaxed),
            ),
            ("solved_by_mmd".to_string(), Json::uint(self.solved_by_mmd)),
            ("jobs_resumed".to_string(), Json::uint(self.jobs_resumed)),
            (
                "journal_append_errors".to_string(),
                Json::uint(self.journal_append_errors),
            ),
        ])
    }
}

/// Thread-shared counter set; snapshotted into [`BatchCounters`] once
/// the pool joins.
#[derive(Default)]
struct RunCounters {
    jobs_completed: SyncCounter,
    jobs_unsolved: SyncCounter,
    jobs_errored: SyncCounter,
    panics_contained: SyncCounter,
    cache_hits: SyncCounter,
    cache_misses: SyncCounter,
    deadline_expired: SyncCounter,
    cancelled: SyncCounter,
    verified_ok: SyncCounter,
    verify_failures: SyncCounter,
    solved_by_rmrls: SyncCounter,
    solved_by_relaxed: SyncCounter,
    solved_by_mmd: SyncCounter,
    jobs_resumed: SyncCounter,
    journal_append_errors: SyncCounter,
}

/// A completed (possibly partially drained) batch run.
#[derive(Debug)]
pub struct BatchRun {
    /// Per-job records in admission order.
    pub records: Vec<JobRecord>,
    /// Aggregate counters.
    pub counters: BatchCounters,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl BatchRun {
    /// The per-job results as JSON lines (one object per job, in
    /// admission order; deterministic for a given manifest and search
    /// configuration, independent of worker count and cache setting).
    pub fn results_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&record.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Jobs actually processed (everything but skipped).
    pub fn jobs_processed(&self) -> u64 {
        self.counters.jobs_total - self.counters.jobs_skipped
    }

    /// Throughput over the whole run, in specifications per second.
    pub fn specs_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.jobs_processed() as f64 / secs
        } else {
            0.0
        }
    }

    /// The aggregate run report (counters, throughput, configuration
    /// echoes — the non-deterministic complement of the JSONL stream).
    pub fn report_json(&self, opts: &BatchOptions) -> Json {
        Json::Obj(vec![
            (
                "schema_version".to_string(),
                Json::uint(BATCH_SCHEMA_VERSION),
            ),
            ("tool".to_string(), Json::str("rmrls-batch")),
            ("workers".to_string(), Json::uint(self.workers as u64)),
            (
                "deadline_ms".to_string(),
                opts.deadline
                    .map(|d| Json::uint(d.as_millis() as u64))
                    .unwrap_or(Json::Null),
            ),
            (
                "cache_size".to_string(),
                opts.cache_size
                    .map(|c| Json::uint(c as u64))
                    .unwrap_or(Json::Null),
            ),
            (
                "canon_limit".to_string(),
                Json::uint(opts.canon_limit as u64),
            ),
            ("verify".to_string(), Json::Bool(opts.verify)),
            ("fallback".to_string(), Json::Bool(opts.fallback)),
            (
                "elapsed_seconds".to_string(),
                Json::Num(self.elapsed.as_secs_f64()),
            ),
            (
                "specs_per_second".to_string(),
                Json::Num(self.specs_per_second()),
            ),
            (
                "cache_hit_rate".to_string(),
                self.counters
                    .cache_hit_rate()
                    .map(Json::Num)
                    .unwrap_or(Json::Null),
            ),
            ("counters".to_string(), self.counters.to_json()),
        ])
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A worker panicking inside the cache poisons the mutex; the data
    // (an LRU map) stays structurally valid, so recover rather than
    // letting one contained panic disable caching for the rest of the
    // run.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs every admitted job on a pool of `opts.workers` threads.
///
/// Returns when all jobs are finished or the batch drained via
/// `shutdown`; never panics on job failures (panics are contained into
/// per-job records).
pub fn run_batch(
    admissions: &[Admission],
    opts: &BatchOptions,
    shutdown: &ShutdownHandles,
) -> BatchRun {
    run_batch_resumable(admissions, opts, shutdown, None, None)
}

/// [`run_batch`] plus checkpoint/resume plumbing.
///
/// When `journal` is given, every finished record is durably appended
/// (via [`JournalWriter::append`]) before the batch moves on — the
/// write-ahead discipline that makes a SIGKILL lose at most one job. A
/// failed append never fails the batch; it increments
/// `journal_append_errors` and the affected job simply re-runs on the
/// next resume.
///
/// When `resumed` is given, the records it maps are taken as already
/// complete: their slots are pre-filled with
/// [`Resumed`](JobOutcome::Resumed) outcomes, their counters are
/// tallied from the journaled fields, and workers skip them entirely.
/// Cache counters intentionally start cold — a resumed run may show
/// different `cache_hits`/`cache_misses` than an uninterrupted one,
/// but never different results.
pub fn run_batch_resumable(
    admissions: &[Admission],
    opts: &BatchOptions,
    shutdown: &ShutdownHandles,
    journal: Option<&Mutex<JournalWriter>>,
    resumed: Option<&HashMap<usize, CompletedJob>>,
) -> BatchRun {
    let started = Instant::now();
    let workers = opts.workers.max(1);
    let cache = opts
        .cache_size
        .map(|cap| Mutex::new(CircuitCache::new(cap)));
    let counters = RunCounters::default();
    let slots: Vec<Mutex<Option<JobRecord>>> =
        admissions.iter().map(|_| Mutex::new(None)).collect();
    if let Some(done) = resumed {
        for (&index, job) in done {
            if index >= admissions.len() {
                continue;
            }
            tally_resumed(job, &counters);
            *lock(&slots[index]) = Some(JobRecord {
                name: admissions[index].name().to_string(),
                origin: admissions[index].origin().to_string(),
                cache_hit: false,
                seconds: 0.0,
                outcome: JobOutcome::Resumed {
                    json: job.json.clone(),
                },
            });
        }
    }
    let next = AtomicUsize::new(0);

    // Workers only poll for signals between jobs, so with every worker
    // deep inside a long search nothing would propagate a second
    // Ctrl-C into the abort token until some job finished. A dedicated
    // monitor keeps polling while workers are busy; the abort token
    // then reaches in-flight searches within one budget poll.
    let workers_done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let monitor = scope.spawn(|| {
            while !workers_done.load(Ordering::Acquire) {
                shutdown.poll_signals();
                std::thread::park_timeout(Duration::from_millis(20));
            }
        });
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    shutdown.poll_signals();
                    if shutdown.draining() {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::SeqCst);
                    if index >= admissions.len() {
                        break;
                    }
                    if resumed.is_some_and(|done| done.contains_key(&index)) {
                        continue;
                    }
                    let record = run_one(
                        &admissions[index],
                        opts,
                        shutdown,
                        cache.as_ref(),
                        &counters,
                    );
                    if let Some(w) = journal {
                        let line = record.to_json_indexed(index).to_string();
                        if lock(w).append(&line).is_err() {
                            counters.journal_append_errors.inc();
                        }
                    }
                    *lock(&slots[index]) = Some(record);
                })
            })
            .collect();
        let mut worker_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                worker_panic = Some(payload);
            }
        }
        workers_done.store(true, Ordering::Release);
        monitor.thread().unpark();
        if let Some(payload) = worker_panic {
            // Preserve pre-monitor behavior: an uncontained worker
            // panic (a bug — jobs run under catch_unwind) still
            // propagates out of the scope.
            std::panic::resume_unwind(payload);
        }
    });

    let mut jobs_skipped = 0u64;
    let records: Vec<JobRecord> = admissions
        .iter()
        .zip(slots)
        .map(|(adm, slot)| {
            lock(&slot).take().unwrap_or_else(|| {
                jobs_skipped += 1;
                JobRecord {
                    name: adm.name().to_string(),
                    origin: adm.origin().to_string(),
                    cache_hit: false,
                    seconds: 0.0,
                    outcome: JobOutcome::Skipped,
                }
            })
        })
        .collect();

    let snapshot = BatchCounters {
        jobs_total: admissions.len() as u64,
        jobs_completed: counters.jobs_completed.get(),
        jobs_unsolved: counters.jobs_unsolved.get(),
        jobs_errored: counters.jobs_errored.get(),
        panics_contained: counters.panics_contained.get(),
        jobs_skipped,
        cache_hits: counters.cache_hits.get(),
        cache_misses: counters.cache_misses.get(),
        deadline_expired: counters.deadline_expired.get(),
        cancelled: counters.cancelled.get(),
        verified_ok: counters.verified_ok.get(),
        verify_failures: counters.verify_failures.get(),
        solved_by_rmrls: counters.solved_by_rmrls.get(),
        solved_by_relaxed: counters.solved_by_relaxed.get(),
        solved_by_mmd: counters.solved_by_mmd.get(),
        jobs_resumed: counters.jobs_resumed.get(),
        journal_append_errors: counters.journal_append_errors.get(),
    };
    BatchRun {
        records,
        counters: snapshot,
        elapsed: started.elapsed(),
        workers,
    }
}

fn run_one(
    admission: &Admission,
    opts: &BatchOptions,
    shutdown: &ShutdownHandles,
    cache: Option<&Mutex<CircuitCache>>,
    counters: &RunCounters,
) -> JobRecord {
    let started = Instant::now();
    let (name, origin) = (admission.name().to_string(), admission.origin().to_string());
    match admission {
        Admission::Error { message, .. } => {
            counters.jobs_errored.inc();
            JobRecord {
                name,
                origin,
                cache_hit: false,
                seconds: started.elapsed().as_secs_f64(),
                outcome: JobOutcome::Error {
                    message: message.clone(),
                },
            }
        }
        Admission::Job(job) => {
            let result = catch_unwind(AssertUnwindSafe(|| {
                execute_job(job, opts, shutdown, cache, counters)
            }));
            let (outcome, cache_hit) = match result {
                Ok(r) => r,
                Err(payload) => {
                    counters.panics_contained.inc();
                    let message = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    (JobOutcome::Panicked { message }, false)
                }
            };
            JobRecord {
                name,
                origin,
                cache_hit,
                seconds: started.elapsed().as_secs_f64(),
                outcome,
            }
        }
    }
}

/// The tier-2 configuration: the same budget (deadline, cancel token,
/// memory caps) with greedy pruning, a small queue, and stop-at-first —
/// a cheap, fast sweep that often succeeds exactly where the configured
/// search spent its node budget exploring.
fn relaxed_options(base: &SynthesisOptions) -> SynthesisOptions {
    base.clone()
        .with_pruning(Pruning::Greedy)
        .with_stop_at_first(true)
        .with_max_queue(Some(10_000))
}

/// Runs the synthesis ladder on one (canonical) spec.
///
/// Tier 1 is the configured search. With `fallback` set, a failure
/// descends to tier 2 (relaxed pruning) and finally tier 3, the MMD
/// baseline — which always terminates, so a well-formed reversible spec
/// within [`MMD_FALLBACK_LIMIT`] wires cannot stay unsolved.
/// `perm_for_mmd` materializes the spec as a permutation for tier 3; it
/// returns `None` for specs too wide (or too broken) to hand to MMD,
/// and runs only if the ladder actually reaches tier 3.
///
/// An aborted batch is the one exception to "never fail": once the
/// shared cancel token has tripped, descending further would stall
/// shutdown, so the ladder returns the cancellation instead.
///
/// On failure, returns the *last* attempted tier's stop reason.
fn synthesize_ladder(
    spec: &MultiPprm,
    sopts: &SynthesisOptions,
    fallback: bool,
    perm_for_mmd: impl FnOnce() -> Option<Permutation>,
) -> Result<(Circuit, SolveTier), Option<StopReason>> {
    let tier1 = match synthesize(spec, sopts) {
        Ok(s) => return Ok((s.circuit, SolveTier::Rmrls)),
        Err(e) => e.stats.stop_reason,
    };
    if !fallback || sopts.budget.cancelled() {
        return Err(tier1);
    }
    let tier2 = match synthesize(spec, &relaxed_options(sopts)) {
        Ok(s) => return Ok((s.circuit, SolveTier::RmrlsRelaxed)),
        Err(e) => e.stats.stop_reason.or(tier1),
    };
    if sopts.budget.cancelled() {
        return Err(tier2);
    }
    match perm_for_mmd() {
        Some(p) => Ok((
            mmd_synthesize(&p, MmdVariant::Bidirectional),
            SolveTier::Mmd,
        )),
        None => Err(tier2),
    }
}

/// Folds one journaled record into the run counters, so a resumed
/// batch's aggregate report accounts for the whole job list, not just
/// the re-run remainder.
fn tally_resumed(job: &CompletedJob, counters: &RunCounters) {
    counters.jobs_resumed.inc();
    match job.status.as_str() {
        "solved" => {
            counters.jobs_completed.inc();
            match job.verified {
                Some(true) => counters.verified_ok.inc(),
                Some(false) => counters.verify_failures.inc(),
                None => {}
            }
            match job.solved_by.as_deref() {
                Some("rmrls-relaxed") => counters.solved_by_relaxed.inc(),
                Some("mmd") => counters.solved_by_mmd.inc(),
                // Pre-fallback journals have no solved_by; attribute to
                // the only tier that existed.
                _ => counters.solved_by_rmrls.inc(),
            }
        }
        "unsolved" => {
            counters.jobs_unsolved.inc();
            match job.stop_reason.as_deref() {
                Some("deadline expired") => counters.deadline_expired.inc(),
                Some("cancelled") => counters.cancelled.inc(),
                _ => {}
            }
        }
        "error" => counters.jobs_errored.inc(),
        "panicked" => counters.panics_contained.inc(),
        _ => {}
    }
}

fn tally_tier(tier: SolveTier, counters: &RunCounters) {
    match tier {
        SolveTier::Rmrls => counters.solved_by_rmrls.inc(),
        SolveTier::RmrlsRelaxed => counters.solved_by_relaxed.inc(),
        SolveTier::Mmd => counters.solved_by_mmd.inc(),
    }
}

/// Converts a fired failpoint into a contained `Error` record, so
/// injected faults flow through the same bookkeeping as real ones.
fn injected_error(e: rmrls_obs::FailError, counters: &RunCounters) -> JobOutcome {
    counters.jobs_errored.inc();
    JobOutcome::Error {
        message: e.to_string(),
    }
}

fn execute_job(
    job: &BatchJob,
    opts: &BatchOptions,
    shutdown: &ShutdownHandles,
    cache: Option<&Mutex<CircuitCache>>,
    counters: &RunCounters,
) -> (JobOutcome, bool) {
    // Failpoint: a worker falling over as it picks the job up.
    if let Err(e) = rmrls_obs::fail::trigger("engine/worker/dispatch") {
        return (injected_error(e, counters), false);
    }
    let mut sopts = opts
        .synthesis
        .clone()
        .with_cancel_token(shutdown.abort.clone());
    if let Some(d) = opts.deadline {
        sopts = sopts.with_deadline(Instant::now() + d);
    }
    match &job.spec {
        SpecData::Perm(p) => {
            // Always synthesize the canonical representative — cache on
            // or off — so results never depend on scheduling (see the
            // module docs).
            let (canon_table, sigma) = canonical_form(p, opts.canon_limit);
            let key = CacheKey {
                num_vars: p.num_vars(),
                table: canon_table,
            };
            let mut cache_hit = false;
            // Failpoint: a lookup failure degrades to a miss — the job
            // re-synthesizes rather than erroring.
            let mut canon_solution = match rmrls_obs::fail::trigger("engine/cache/lookup") {
                Ok(()) => cache.and_then(|m| lock(m).get(&key)),
                Err(_) => None,
            };
            if canon_solution.is_some() {
                counters.cache_hits.inc();
                cache_hit = true;
            } else {
                if cache.is_some() {
                    counters.cache_misses.inc();
                }
                let spec = MultiPprm::from_permutation(&key.table, key.num_vars);
                let ladder = synthesize_ladder(&spec, &sopts, opts.fallback, || {
                    (key.num_vars <= MMD_FALLBACK_LIMIT)
                        .then(|| Permutation::from_vec(key.table.clone()).ok())
                        .flatten()
                });
                match ladder {
                    Ok((circuit, tier)) => {
                        // Failpoint: a failed insert only costs future
                        // hits; this job's result is already in hand.
                        if let Some(m) = cache {
                            if rmrls_obs::fail::trigger("engine/cache/insert").is_ok() {
                                lock(m).insert(key, circuit.clone(), tier);
                            }
                        }
                        canon_solution = Some((circuit, tier));
                    }
                    Err(reason) => return (unsolved(reason, counters), cache_hit),
                }
            }
            let (canon_circuit, tier) = canon_solution.expect("hit or fresh");
            let circuit = uncanonicalize_circuit(&canon_circuit, &sigma);
            // Failpoint: the verifier itself failing. An unverifiable
            // result must not be reported as solved.
            if let Err(e) = rmrls_obs::fail::trigger("engine/worker/pre-verify") {
                return (injected_error(e, counters), cache_hit);
            }
            let verified = opts.verify.then(|| verify_permutation(&circuit, p));
            tally_verify(verified, counters);
            tally_tier(tier, counters);
            counters.jobs_completed.inc();
            (
                JobOutcome::Solved {
                    circuit,
                    verified,
                    solved_by: tier,
                },
                cache_hit,
            )
        }
        SpecData::Pprm(m) => {
            // Symbolic specs are not canonicalized or cached; the
            // ladder still applies, with tier 3 gated on the spec
            // having a materializable (reversible, narrow-enough)
            // truth table.
            let ladder = synthesize_ladder(m, &sopts, opts.fallback, || {
                (m.num_vars() <= MMD_FALLBACK_LIMIT)
                    .then(|| Permutation::from_vec(m.to_permutation()).ok())
                    .flatten()
            });
            match ladder {
                Ok((circuit, tier)) => {
                    if let Err(e) = rmrls_obs::fail::trigger("engine/worker/pre-verify") {
                        return (injected_error(e, counters), false);
                    }
                    let verified = opts.verify.then(|| verify_pprm(&circuit, m));
                    tally_verify(verified, counters);
                    tally_tier(tier, counters);
                    counters.jobs_completed.inc();
                    (
                        JobOutcome::Solved {
                            circuit,
                            verified,
                            solved_by: tier,
                        },
                        false,
                    )
                }
                Err(reason) => (unsolved(reason, counters), false),
            }
        }
    }
}

fn unsolved(reason: Option<StopReason>, counters: &RunCounters) -> JobOutcome {
    match reason {
        Some(StopReason::DeadlineExpired) => counters.deadline_expired.inc(),
        Some(StopReason::Cancelled) => counters.cancelled.inc(),
        _ => {}
    }
    counters.jobs_unsolved.inc();
    JobOutcome::Unsolved {
        stop_reason: reason
            .map(|r| r.to_string())
            .unwrap_or_else(|| "unknown".to_string()),
    }
}

fn tally_verify(verified: Option<bool>, counters: &RunCounters) {
    match verified {
        Some(true) => counters.verified_ok.inc(),
        Some(false) => counters.verify_failures.inc(),
        None => {}
    }
}

fn verify_permutation(circuit: &Circuit, p: &Permutation) -> bool {
    circuit.width() == p.num_vars() && circuit.to_permutation() == p.as_slice()
}

fn verify_pprm(circuit: &Circuit, m: &MultiPprm) -> bool {
    let n = m.num_vars();
    if circuit.width() != n {
        return false;
    }
    if n <= VERIFY_EXHAUSTIVE_LIMIT {
        (0..1u64 << n).all(|x| circuit.apply(x) == m.eval(x))
    } else {
        // Quasirandom probes, same multiplier as check_equivalence.
        let mask = if n >= 64 { !0u64 } else { (1u64 << n) - 1 };
        (0..VERIFY_PROBES).all(|k| {
            let x = k.wrapping_mul(0x9e37_79b9_7f4a_7c15) & mask;
            circuit.apply(x) == m.eval(x)
        })
    }
}
