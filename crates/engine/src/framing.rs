//! CRC32-framed binary records: the shared on-disk codec.
//!
//! One framing format serves every binary durable file in the
//! workspace — today the [`store`](crate::store), and available to the
//! batch/serve journals should they ever move off JSON lines — so there
//! is exactly one place that knows how to detect torn writes and
//! bit-rot.
//!
//! A frame is `magic(2) | len(4, LE) | crc32(4, LE) | payload(len)`.
//! The CRC covers the payload only; the length is implicitly checked
//! because a corrupted length almost surely misaligns the payload and
//! fails the CRC, at which point the scanner *resyncs* by searching
//! forward for the next position that parses as a complete frame with
//! a valid checksum. The scanner therefore distinguishes three
//! conditions a reader must treat differently:
//!
//! - [`FrameEvent::Record`] — a complete frame with a matching CRC.
//! - [`FrameEvent::Corrupt`] — a damaged region followed by more valid
//!   frames (or a whole damaged interior): quarantine it, keep reading.
//! - [`FrameEvent::Torn`] — an incomplete frame at end-of-buffer, the
//!   signature of a crash mid-append: truncate it.

/// Two-byte marker opening every frame (used for resynchronization
/// after a corrupt region).
pub const FRAME_MAGIC: [u8; 2] = *b"rF";

/// Bytes of framing overhead per record (magic + length + CRC).
pub const FRAME_HEADER_LEN: usize = 10;

/// Ceiling on a single frame's payload (64 MiB). A length field above
/// this is treated as corruption, not as a request to allocate.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 26;

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup
/// table, computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC32 (IEEE) checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Encodes one payload as a complete frame ready to append.
///
/// # Panics
///
/// If the payload exceeds [`MAX_PAYLOAD_LEN`] — callers frame records
/// they produced themselves, so an oversized payload is a bug, not
/// input.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD_LEN as usize,
        "frame payload of {} bytes exceeds the {} byte ceiling",
        payload.len(),
        MAX_PAYLOAD_LEN
    );
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// One event from a [`FrameScanner`] pass over a buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent<'a> {
    /// A complete frame whose CRC matched. `start..end` is the frame's
    /// byte range (header included) within the scanned buffer.
    Record {
        /// The frame's payload.
        payload: &'a [u8],
        /// Offset of the frame's first byte.
        start: usize,
        /// Offset one past the frame's last byte.
        end: usize,
    },
    /// A damaged region: either a frame whose CRC failed (the region is
    /// exactly that frame) or unrecognizable bytes up to the next
    /// position that parses as a valid frame (or end of buffer).
    Corrupt {
        /// Offset of the first damaged byte.
        start: usize,
        /// Offset one past the last damaged byte.
        end: usize,
    },
    /// An incomplete frame at the end of the buffer — a torn append.
    /// Always the final event when emitted.
    Torn {
        /// Offset of the torn frame's first byte; truncating here
        /// restores a clean append point.
        start: usize,
    },
}

/// Iterator over the frames of a byte buffer, yielding every record,
/// corrupt region, and torn tail exactly once, in file order.
pub struct FrameScanner<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> FrameScanner<'a> {
    /// Scans `buf` from its first byte.
    pub fn new(buf: &'a [u8]) -> FrameScanner<'a> {
        FrameScanner { buf, at: 0 }
    }

    /// Attempts to parse a complete, CRC-valid frame at `pos`.
    /// Returns the payload range on success.
    fn valid_frame_at(buf: &[u8], pos: usize) -> Option<(usize, usize)> {
        let header_end = pos.checked_add(FRAME_HEADER_LEN)?;
        if header_end > buf.len() || buf[pos..pos + 2] != FRAME_MAGIC {
            return None;
        }
        let len = u32::from_le_bytes(buf[pos + 2..pos + 6].try_into().unwrap());
        if len > MAX_PAYLOAD_LEN {
            return None;
        }
        let end = header_end.checked_add(len as usize)?;
        if end > buf.len() {
            return None;
        }
        let crc = u32::from_le_bytes(buf[pos + 6..pos + 10].try_into().unwrap());
        (crc32(&buf[header_end..end]) == crc).then_some((header_end, end))
    }

    /// Whether the bytes at `pos` look like the *prefix* of a frame
    /// that ran past the end of the buffer — the signature of an append
    /// interrupted mid-write rather than of bit-rot.
    fn torn_prefix_at(buf: &[u8], pos: usize) -> bool {
        let rem = &buf[pos..];
        if rem.len() < 2 {
            return rem == &FRAME_MAGIC[..rem.len()];
        }
        if rem[..2] != FRAME_MAGIC {
            return false;
        }
        if rem.len() < 6 {
            return true; // magic present, length itself cut short
        }
        let len = u32::from_le_bytes(rem[2..6].try_into().unwrap());
        len <= MAX_PAYLOAD_LEN && FRAME_HEADER_LEN + len as usize > rem.len()
    }
}

impl<'a> Iterator for FrameScanner<'a> {
    type Item = FrameEvent<'a>;

    fn next(&mut self) -> Option<FrameEvent<'a>> {
        if self.at >= self.buf.len() {
            return None;
        }
        let start = self.at;
        // The common case: a valid frame right here.
        if let Some((payload_start, end)) = Self::valid_frame_at(self.buf, start) {
            self.at = end;
            return Some(FrameEvent::Record {
                payload: &self.buf[payload_start..end],
                start,
                end,
            });
        }
        // An incomplete-but-plausible frame touching end-of-buffer is a
        // torn append; everything from here on is discarded.
        if Self::torn_prefix_at(self.buf, start) {
            self.at = self.buf.len();
            return Some(FrameEvent::Torn { start });
        }
        // Damage. If the frame header still parses (magic and a sane
        // length) the CRC failed over a well-delimited payload:
        // quarantine exactly that frame and continue behind it.
        if start + FRAME_HEADER_LEN <= self.buf.len() && self.buf[start..start + 2] == FRAME_MAGIC {
            let len = u32::from_le_bytes(self.buf[start + 2..start + 6].try_into().unwrap());
            let end = start + FRAME_HEADER_LEN + len as usize;
            if len <= MAX_PAYLOAD_LEN && end <= self.buf.len() {
                self.at = end;
                return Some(FrameEvent::Corrupt { start, end });
            }
        }
        // The length or magic itself is gone: resync by searching for
        // the next position that parses as a complete valid frame.
        let mut pos = start + 1;
        while pos + FRAME_HEADER_LEN <= self.buf.len() {
            if Self::valid_frame_at(self.buf, pos).is_some() {
                self.at = pos;
                return Some(FrameEvent::Corrupt { start, end: pos });
            }
            pos += 1;
        }
        // No later valid frame. If the tail still looks like a cut-off
        // append somewhere, a crash explanation fits; otherwise the
        // whole remainder is corrupt. Either way scanning ends here.
        self.at = self.buf.len();
        Some(FrameEvent::Corrupt {
            start,
            end: self.buf.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(buf: &[u8]) -> Vec<Vec<u8>> {
        FrameScanner::new(buf)
            .filter_map(|e| match e {
                FrameEvent::Record { payload, .. } => Some(payload.to_vec()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn frames_round_trip_in_order() {
        let mut buf = Vec::new();
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"\x00\xFF\x00binary"];
        for p in &payloads {
            buf.extend_from_slice(&encode_frame(p));
        }
        assert_eq!(records(&buf), payloads);
    }

    #[test]
    fn torn_tail_is_reported_once_and_ends_the_scan() {
        let mut buf = encode_frame(b"keep me");
        let torn = encode_frame(b"interrupted append");
        let start = buf.len();
        buf.extend_from_slice(&torn[..torn.len() / 2]);
        let events: Vec<_> = FrameScanner::new(&buf).collect();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], FrameEvent::Record { .. }));
        assert_eq!(events[1], FrameEvent::Torn { start });
    }

    #[test]
    fn bare_magic_prefix_at_eof_is_torn() {
        let mut buf = encode_frame(b"ok");
        let start = buf.len();
        buf.push(FRAME_MAGIC[0]);
        let events: Vec<_> = FrameScanner::new(&buf).collect();
        assert_eq!(events[1], FrameEvent::Torn { start });
    }

    #[test]
    fn payload_corruption_quarantines_exactly_one_frame() {
        let mut buf = Vec::new();
        for p in [&b"first"[..], b"second", b"third"] {
            buf.extend_from_slice(&encode_frame(p));
        }
        // Flip one payload byte of the middle record.
        let second_start = encode_frame(b"first").len();
        buf[second_start + FRAME_HEADER_LEN] ^= 0x40;
        let events: Vec<_> = FrameScanner::new(&buf).collect();
        assert_eq!(events.len(), 3);
        assert!(matches!(events[0], FrameEvent::Record { payload, .. } if payload == b"first"));
        assert!(
            matches!(events[1], FrameEvent::Corrupt { start, .. } if start == second_start),
            "damaged frame quarantined, not resynced past"
        );
        assert!(matches!(events[2], FrameEvent::Record { payload, .. } if payload == b"third"));
    }

    #[test]
    fn length_corruption_resyncs_to_the_next_valid_frame() {
        let mut buf = Vec::new();
        for p in [&b"one"[..], b"two", b"three"] {
            buf.extend_from_slice(&encode_frame(p));
        }
        // Blow up the middle record's length field far past the buffer.
        let second_start = encode_frame(b"one").len();
        buf[second_start + 2..second_start + 6].copy_from_slice(&u32::MAX.to_le_bytes());
        let payloads = records(&buf);
        assert_eq!(payloads, vec![b"one".to_vec(), b"three".to_vec()]);
        let corrupt: Vec<_> = FrameScanner::new(&buf)
            .filter(|e| matches!(e, FrameEvent::Corrupt { .. }))
            .collect();
        assert_eq!(corrupt.len(), 1);
    }

    #[test]
    fn garbage_only_buffer_is_one_corrupt_region() {
        let buf = vec![0xA5u8; 37];
        let events: Vec<_> = FrameScanner::new(&buf).collect();
        assert_eq!(events, vec![FrameEvent::Corrupt { start: 0, end: 37 }]);
    }

    #[test]
    fn empty_buffer_yields_nothing() {
        assert_eq!(FrameScanner::new(&[]).count(), 0);
    }

    #[test]
    fn magic_bytes_inside_payloads_do_not_confuse_the_scanner() {
        // Payloads stuffed with the frame magic still round-trip.
        let tricky: Vec<u8> = FRAME_MAGIC.repeat(16);
        let mut buf = encode_frame(&tricky);
        buf.extend_from_slice(&encode_frame(&tricky));
        assert_eq!(records(&buf), vec![tricky.clone(), tricky]);
    }
}
