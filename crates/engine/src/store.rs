//! Durable canonical circuit store: crash-safe, corruption-detecting,
//! verified-on-load persistence for the synthesis cache.
//!
//! The in-memory [`CircuitCache`](crate::cache::CircuitCache) dies with
//! the process; this module makes canonicalization pay off across
//! restarts. A [`CircuitStore`] is an append-only file mapping
//! canonical representative → best-known verified circuit, with the
//! `solved_by` tier, gate/cost metadata, and provenance per record,
//! plus an in-memory index built on open.
//!
//! On disk the store is a self-describing JSON header line (in the
//! style of the fsync'd journals) followed by CRC32-framed binary
//! records using the shared [`framing`](crate::framing) codec. The
//! recovery contract, enforced on every open:
//!
//! - a **torn tail** (crash mid-append) is truncated, restoring a clean
//!   append point;
//! - a **mid-file CRC failure** quarantines exactly the damaged region
//!   and keeps reading — later valid records survive;
//! - every loaded circuit is **re-verified against its own canonical
//!   table** before it is trusted; records that fail decoding,
//!   verification, or metadata cross-checks are counted and skipped,
//!   never served.
//!
//! Upgrades are cost-monotonic: re-inserting a key keeps the cheaper
//! circuit (fewer gates, then lower quantum cost), so merging stores
//! or replaying traffic can only improve the best-known result.
//! Superseded and quarantined bytes are reclaimed by [`compact`]
//! (atomic temp-file + rename), and [`fsck`] reports a file's health
//! without modifying it.
//!
//! [`compact`]: CircuitStore::compact
//! [`fsck`]: fsck

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::{Arc, Mutex, MutexGuard};

use rmrls_circuit::{Circuit, Gate};
use rmrls_obs::Json;

use crate::cache::CacheKey;
use crate::engine::SolveTier;
use crate::framing::{encode_frame, FrameEvent, FrameScanner};
use crate::fsutil::write_atomic_bytes;

/// On-disk schema version; files written by a newer schema are refused.
pub const STORE_SCHEMA_VERSION: u64 = 1;

/// Per-record payload format version.
const RECORD_VERSION: u8 = 1;

/// Widest key the store persists: a canonical table of `2^n` entries is
/// materialized per record, so this caps a record at half a megabyte of
/// table. Wider circuits are simply not persisted (the in-memory cache
/// still serves them within a process lifetime).
pub const STORE_MAX_VARS: usize = 16;

/// Longest JSON header line accepted before the file is declared
/// not-a-store.
const MAX_HEADER_LINE: usize = 4096;

/// One live store entry: the best-known verified circuit for a
/// canonical representative.
#[derive(Clone, Debug)]
pub struct StoreEntry {
    /// The canonical circuit (same width as the key).
    pub circuit: Circuit,
    /// Which ladder tier produced it.
    pub tier: SolveTier,
    /// Free-form origin label (`"batch"`, `"serve"`, ...), preserved
    /// across compactions.
    pub provenance: String,
}

impl StoreEntry {
    /// Whether `self` is strictly cheaper than `other`: fewer gates,
    /// then lower quantum cost.
    fn cheaper_than(&self, other: &StoreEntry) -> bool {
        let (a, b) = (&self.circuit, &other.circuit);
        a.gate_count() < b.gate_count()
            || (a.gate_count() == b.gate_count() && a.quantum_cost() < b.quantum_cost())
    }
}

/// Counters describing a store's health and traffic, snapshotted by
/// [`CircuitStore::stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live index entries (unique canonical keys).
    pub entries: u64,
    /// Records loaded and verified from disk on open.
    pub records_loaded: u64,
    /// On-disk records superseded by a cheaper same-key record later in
    /// the file (reclaimed by compact).
    pub superseded: u64,
    /// Corrupt regions quarantined on open (CRC failures / unframeable
    /// bytes skipped without losing later records).
    pub quarantined_records: u64,
    /// Total bytes inside quarantined regions.
    pub quarantined_bytes: u64,
    /// Records whose frame was intact but whose payload failed
    /// decoding, metadata cross-checks, or circuit re-verification.
    /// Never served.
    pub verify_rejected: u64,
    /// Bytes of torn tail truncated on open (crash mid-append).
    pub torn_bytes_truncated: u64,
    /// Records appended by this handle since open.
    pub appends: u64,
    /// Appends that failed (the in-memory result is unaffected; the
    /// store merely under-remembers).
    pub append_errors: u64,
    /// Compactions completed by this handle.
    pub compactions: u64,
    /// Current file size in bytes.
    pub file_bytes: u64,
}

impl StoreStats {
    /// The stats as a JSON object (the `rmrls store stats` output).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("entries".to_string(), Json::uint(self.entries)),
            (
                "records_loaded".to_string(),
                Json::uint(self.records_loaded),
            ),
            ("superseded".to_string(), Json::uint(self.superseded)),
            (
                "quarantined_records".to_string(),
                Json::uint(self.quarantined_records),
            ),
            (
                "quarantined_bytes".to_string(),
                Json::uint(self.quarantined_bytes),
            ),
            (
                "verify_rejected".to_string(),
                Json::uint(self.verify_rejected),
            ),
            (
                "torn_bytes_truncated".to_string(),
                Json::uint(self.torn_bytes_truncated),
            ),
            ("appends".to_string(), Json::uint(self.appends)),
            ("append_errors".to_string(), Json::uint(self.append_errors)),
            ("compactions".to_string(), Json::uint(self.compactions)),
            ("file_bytes".to_string(), Json::uint(self.file_bytes)),
        ])
    }
}

/// What [`CircuitStore::insert`] did with an offered circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Appended: the key was new or the offer was cheaper.
    Inserted {
        /// Whether an existing (more expensive) entry was superseded.
        superseded: bool,
    },
    /// The existing entry is at least as cheap; nothing written.
    KeptExisting,
    /// The key is too wide (or mis-shaped) for persistence; nothing
    /// written.
    Ineligible,
}

/// Read-only health report produced by [`fsck`].
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Complete, CRC-valid, verified records.
    pub valid_records: u64,
    /// Unique canonical keys among the valid records.
    pub entries: u64,
    /// Valid records shadowed by a cheaper same-key record.
    pub superseded: u64,
    /// Quarantined corrupt regions as `(offset, length)` pairs.
    pub quarantined: Vec<(u64, u64)>,
    /// Frames whose payload failed decode/verify checks.
    pub verify_rejected: u64,
    /// Bytes of torn tail (would be truncated by a real open).
    pub torn_tail_bytes: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

impl FsckReport {
    /// Whether the file is fully healthy (nothing quarantined, torn, or
    /// rejected).
    pub fn clean(&self) -> bool {
        self.quarantined.is_empty() && self.verify_rejected == 0 && self.torn_tail_bytes == 0
    }

    /// The report as a JSON object (the `rmrls store fsck` output).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("clean".to_string(), Json::Bool(self.clean())),
            ("valid_records".to_string(), Json::uint(self.valid_records)),
            ("entries".to_string(), Json::uint(self.entries)),
            ("superseded".to_string(), Json::uint(self.superseded)),
            (
                "quarantined_records".to_string(),
                Json::uint(self.quarantined.len() as u64),
            ),
            (
                "quarantined".to_string(),
                Json::Arr(
                    self.quarantined
                        .iter()
                        .map(|&(off, len)| {
                            Json::Obj(vec![
                                ("offset".to_string(), Json::uint(off)),
                                ("bytes".to_string(), Json::uint(len)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "verify_rejected".to_string(),
                Json::uint(self.verify_rejected),
            ),
            (
                "torn_tail_bytes".to_string(),
                Json::uint(self.torn_tail_bytes),
            ),
            ("file_bytes".to_string(), Json::uint(self.file_bytes)),
        ])
    }
}

/// Result of a [`CircuitStore::compact`] rewrite.
#[derive(Clone, Copy, Debug)]
pub struct CompactStats {
    /// Live records written to the compacted file.
    pub records_kept: u64,
    /// File size before the rewrite.
    pub bytes_before: u64,
    /// File size after the rewrite.
    pub bytes_after: u64,
}

/// A disk-backed canonical circuit store: append-only file + in-memory
/// index of the best-known verified circuit per canonical key.
#[derive(Debug)]
pub struct CircuitStore {
    path: String,
    file: File,
    index: HashMap<CacheKey, StoreEntry>,
    stats: StoreStats,
    /// Logical end of file: the clean append point.
    end: u64,
}

impl CircuitStore {
    /// Opens (or creates) the store at `path`, building the verified
    /// in-memory index and repairing a torn tail.
    ///
    /// # Errors
    ///
    /// On I/O failure, a header that is not a store (or a newer schema
    /// version), or the `engine/store/load` failpoint.
    pub fn open(path: &str) -> Result<CircuitStore, String> {
        rmrls_obs::fail::trigger("engine/store/load").map_err(|e| e.to_string())?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| format!("cannot open store {path}: {e}"))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| format!("cannot read store {path}: {e}"))?;
        if bytes.is_empty() {
            let header = format!("{}\n", header_json());
            file.write_all(header.as_bytes())
                .and_then(|()| file.sync_data())
                .map_err(|e| format!("cannot initialize store {path}: {e}"))?;
            let end = header.len() as u64;
            return Ok(CircuitStore {
                path: path.to_string(),
                file,
                index: HashMap::new(),
                stats: StoreStats {
                    file_bytes: end,
                    ..StoreStats::default()
                },
                end,
            });
        }
        let body_start = check_header(&bytes).map_err(|e| format!("store {path}: {e}"))?;
        let scan = scan_records(&bytes, body_start);
        if let Some(torn_at) = scan.torn_start {
            file.set_len(torn_at as u64)
                .and_then(|()| file.sync_data())
                .map_err(|e| format!("cannot truncate torn store tail {path}: {e}"))?;
        }
        let end = scan.torn_start.unwrap_or(bytes.len()) as u64;
        let mut stats = scan.stats;
        stats.entries = scan.index.len() as u64;
        stats.file_bytes = end;
        Ok(CircuitStore {
            path: path.to_string(),
            file,
            index: scan.index,
            stats,
            end,
        })
    }

    /// The store's file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// A snapshot of the store's health and traffic counters.
    pub fn stats(&self) -> StoreStats {
        let mut s = self.stats.clone();
        s.entries = self.index.len() as u64;
        s.file_bytes = self.end;
        s
    }

    /// Looks up the best-known circuit for a canonical key. Entries
    /// were verified on load (or produced verified in this process), so
    /// a hit can be trusted into the cache.
    pub fn get(&self, key: &CacheKey) -> Option<(Circuit, SolveTier)> {
        self.index.get(key).map(|e| (e.circuit.clone(), e.tier))
    }

    /// Iterates over the live entries (arbitrary order).
    pub fn entries(&self) -> impl Iterator<Item = (&CacheKey, &StoreEntry)> {
        self.index.iter()
    }

    /// Offers a circuit for a canonical key, appending it (fsync'd)
    /// when the key is new or the offer is cheaper than the current
    /// best. The append is crash-safe: a process killed mid-write
    /// leaves a torn tail the next open truncates.
    ///
    /// # Errors
    ///
    /// On I/O failure or the `engine/store/append` failpoint; the file
    /// is rolled back to its pre-append length (best effort) and the
    /// in-memory index is left unchanged, so the running process keeps
    /// serving correct results.
    pub fn insert(
        &mut self,
        key: &CacheKey,
        circuit: &Circuit,
        tier: SolveTier,
        provenance: &str,
    ) -> Result<InsertOutcome, String> {
        if key.num_vars == 0
            || key.num_vars > STORE_MAX_VARS
            || circuit.width() != key.num_vars
            || key.table.len() != 1usize << key.num_vars
        {
            return Ok(InsertOutcome::Ineligible);
        }
        let offer = StoreEntry {
            circuit: circuit.clone(),
            tier,
            provenance: provenance.to_string(),
        };
        let superseded = match self.index.get(key) {
            Some(existing) if !offer.cheaper_than(existing) => {
                return Ok(InsertOutcome::KeptExisting)
            }
            Some(_) => true,
            None => false,
        };
        let frame = encode_frame(&encode_payload(key, &offer));
        if let Err(e) = self.append_frame(&frame) {
            self.stats.append_errors += 1;
            return Err(e);
        }
        self.stats.appends += 1;
        if superseded {
            self.stats.superseded += 1;
        }
        self.index.insert(key.clone(), offer);
        Ok(InsertOutcome::Inserted { superseded })
    }

    /// Writes one frame at the clean append point and fsyncs it. The
    /// write is deliberately split around the `engine/store/append`
    /// failpoint so a `panic` action leaves exactly the torn tail a
    /// real crash would.
    fn append_frame(&mut self, frame: &[u8]) -> Result<(), String> {
        let start = self.end;
        let err = |e: std::io::Error| format!("cannot append to store {}: {e}", self.path);
        self.file.seek(SeekFrom::Start(start)).map_err(err)?;
        let half = frame.len() / 2;
        self.file.write_all(&frame[..half]).map_err(err)?;
        if let Err(e) = rmrls_obs::fail::trigger("engine/store/append") {
            let _ = self.file.set_len(start);
            return Err(e.to_string());
        }
        self.file.write_all(&frame[half..]).map_err(err)?;
        self.file.sync_data().map_err(err)?;
        self.end = start + frame.len() as u64;
        Ok(())
    }

    /// Rewrites the file to exactly the live index (dropping
    /// quarantined regions and superseded records) via an atomic
    /// temp-file + rename, then reopens the append handle on the new
    /// file. Entries are written in canonical-key order so two compacts
    /// of the same index are byte-identical.
    ///
    /// # Errors
    ///
    /// On I/O failure or the `engine/store/compact` failpoint; the
    /// original file is left untouched.
    pub fn compact(&mut self) -> Result<CompactStats, String> {
        rmrls_obs::fail::trigger("engine/store/compact").map_err(|e| e.to_string())?;
        let bytes_before = self.end;
        let mut keys: Vec<&CacheKey> = self.index.keys().collect();
        keys.sort_by(|a, b| (a.num_vars, &a.table).cmp(&(b.num_vars, &b.table)));
        let mut out = format!("{}\n", header_json()).into_bytes();
        for key in keys {
            let entry = &self.index[key];
            out.extend_from_slice(&encode_frame(&encode_payload(key, entry)));
        }
        write_atomic_bytes(&self.path, &out)?;
        self.file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| format!("cannot reopen compacted store {}: {e}", self.path))?;
        self.end = out.len() as u64;
        self.stats.compactions += 1;
        self.stats.quarantined_records = 0;
        self.stats.quarantined_bytes = 0;
        self.stats.superseded = 0;
        Ok(CompactStats {
            records_kept: self.index.len() as u64,
            bytes_before,
            bytes_after: self.end,
        })
    }
}

/// A [`CircuitStore`] behind one shared lock, cloneable across the
/// batch workers and serve request handlers (mirroring
/// [`SharedCache`](crate::cache::SharedCache)). Lock poisoning is
/// recovered: the store's file mutations are internally rolled back on
/// error, so a panicked holder leaves a consistent structure.
#[derive(Clone, Debug)]
pub struct SharedStore {
    inner: Arc<Mutex<CircuitStore>>,
}

impl SharedStore {
    /// Opens (or creates) a shared store at `path`.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitStore::open`] failures.
    pub fn open(path: &str) -> Result<SharedStore, String> {
        Ok(SharedStore {
            inner: Arc::new(Mutex::new(CircuitStore::open(path)?)),
        })
    }

    /// Locks the underlying store, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, CircuitStore> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Number of live entries right now (takes the lock briefly).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the store is empty right now.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A stats snapshot (takes the lock briefly).
    pub fn stats(&self) -> StoreStats {
        self.lock().stats()
    }
}

/// Read-only integrity check of the store at `path`: scans every frame,
/// re-verifies every circuit, and reports damage without modifying the
/// file (unlike `open`, which truncates a torn tail).
///
/// # Errors
///
/// On I/O failure or a header that is not a store.
pub fn fsck(path: &str) -> Result<FsckReport, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read store {path}: {e}"))?;
    let body_start = check_header(&bytes).map_err(|e| format!("store {path}: {e}"))?;
    let scan = scan_records(&bytes, body_start);
    Ok(FsckReport {
        valid_records: scan.stats.records_loaded,
        entries: scan.index.len() as u64,
        superseded: scan.stats.superseded,
        quarantined: scan.quarantined,
        verify_rejected: scan.stats.verify_rejected,
        torn_tail_bytes: scan
            .torn_start
            .map(|at| (bytes.len() - at) as u64)
            .unwrap_or(0),
        file_bytes: bytes.len() as u64,
    })
}

/// The store's self-describing header line (JSON, newline-terminated on
/// disk).
fn header_json() -> Json {
    Json::Obj(vec![
        ("rmrls_store".to_string(), Json::uint(1)),
        (
            "schema_version".to_string(),
            Json::uint(STORE_SCHEMA_VERSION),
        ),
    ])
}

/// Validates the header line and returns the offset of the first frame.
fn check_header(bytes: &[u8]) -> Result<usize, String> {
    let probe = &bytes[..bytes.len().min(MAX_HEADER_LINE)];
    let newline = probe
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("missing header line (not a circuit store)")?;
    let line = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| "header line is not UTF-8 (not a circuit store)".to_string())?;
    let json = Json::parse(line).map_err(|e| format!("unparsable header: {e}"))?;
    if json.get("rmrls_store").and_then(Json::as_u64) != Some(1) {
        return Err("header is not a circuit-store header".to_string());
    }
    match json.get("schema_version").and_then(Json::as_u64) {
        Some(v) if v == STORE_SCHEMA_VERSION => Ok(newline + 1),
        Some(v) => Err(format!(
            "schema version {v} is newer than supported {STORE_SCHEMA_VERSION}"
        )),
        None => Err("header missing schema_version".to_string()),
    }
}

/// Everything one pass over the record area produces.
struct ScanOutcome {
    index: HashMap<CacheKey, StoreEntry>,
    stats: StoreStats,
    quarantined: Vec<(u64, u64)>,
    /// Absolute offset of a torn tail, if any.
    torn_start: Option<usize>,
}

/// Scans the frames after the header, decoding, cross-checking, and
/// re-verifying every record. Shared by `open` and `fsck`.
fn scan_records(bytes: &[u8], body_start: usize) -> ScanOutcome {
    let mut outcome = ScanOutcome {
        index: HashMap::new(),
        stats: StoreStats::default(),
        quarantined: Vec::new(),
        torn_start: None,
    };
    for event in FrameScanner::new(&bytes[body_start..]) {
        match event {
            FrameEvent::Record { payload, .. } => match decode_payload(payload) {
                Some((key, entry)) => {
                    outcome.stats.records_loaded += 1;
                    match outcome.index.get(&key) {
                        Some(existing) if !entry.cheaper_than(existing) => {
                            outcome.stats.superseded += 1;
                        }
                        other => {
                            if other.is_some() {
                                outcome.stats.superseded += 1;
                            }
                            outcome.index.insert(key, entry);
                        }
                    }
                }
                None => outcome.stats.verify_rejected += 1,
            },
            FrameEvent::Corrupt { start, end } => {
                outcome.stats.quarantined_records += 1;
                outcome.stats.quarantined_bytes += (end - start) as u64;
                outcome
                    .quarantined
                    .push(((body_start + start) as u64, (end - start) as u64));
            }
            FrameEvent::Torn { start } => {
                outcome.torn_start = Some(body_start + start);
                outcome.stats.torn_bytes_truncated = (bytes.len() - body_start - start) as u64;
            }
        }
    }
    outcome
}

fn tier_code(tier: SolveTier) -> u8 {
    match tier {
        SolveTier::Rmrls => 0,
        SolveTier::RmrlsRelaxed => 1,
        SolveTier::Mmd => 2,
    }
}

fn tier_from_code(code: u8) -> Option<SolveTier> {
    match code {
        0 => Some(SolveTier::Rmrls),
        1 => Some(SolveTier::RmrlsRelaxed),
        2 => Some(SolveTier::Mmd),
        _ => None,
    }
}

/// Byte marker for a Toffoli gate record.
const GATE_TOFFOLI: u8 = 0;
/// Byte marker for a Fredkin gate record.
const GATE_FREDKIN: u8 = 1;

/// Serializes one record payload:
/// `version u8 | tier u8 | num_vars u8 | width u8 | gate_count u32 |
/// quantum_cost u64 | table (2^num_vars × u64) |
/// gates (gate_count × [kind u8, controls u32, a u8, b u8]) |
/// provenance (len u16 + UTF-8 bytes)` — all little-endian.
fn encode_payload(key: &CacheKey, entry: &StoreEntry) -> Vec<u8> {
    let gates = entry.circuit.gates();
    let mut out = Vec::with_capacity(16 + key.table.len() * 8 + gates.len() * 7);
    out.push(RECORD_VERSION);
    out.push(tier_code(entry.tier));
    out.push(key.num_vars as u8);
    out.push(entry.circuit.width() as u8);
    out.extend_from_slice(&(gates.len() as u32).to_le_bytes());
    out.extend_from_slice(&entry.circuit.quantum_cost().to_le_bytes());
    for &v in &key.table {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for gate in gates {
        match *gate {
            Gate::Toffoli { controls, target } => {
                out.push(GATE_TOFFOLI);
                out.extend_from_slice(&controls.to_le_bytes());
                out.push(target);
                out.push(0);
            }
            Gate::Fredkin { controls, targets } => {
                out.push(GATE_FREDKIN);
                out.extend_from_slice(&controls.to_le_bytes());
                out.push(targets.0);
                out.push(targets.1);
            }
        }
    }
    let prov = entry.provenance.as_bytes();
    let prov = &prov[..prov.len().min(u16::MAX as usize)];
    out.extend_from_slice(&(prov.len() as u16).to_le_bytes());
    out.extend_from_slice(prov);
    out
}

/// Decodes and fully validates one record payload: structural bounds,
/// gate legality (so the panicking `Gate` constructors are never fed
/// bad input), metadata cross-checks, and the re-verification that the
/// circuit actually computes its stored canonical table. Any failure
/// returns `None` — the caller counts it and moves on.
fn decode_payload(payload: &[u8]) -> Option<(CacheKey, StoreEntry)> {
    let mut r = Reader(payload);
    if r.u8()? != RECORD_VERSION {
        return None;
    }
    let tier = tier_from_code(r.u8()?)?;
    let num_vars = r.u8()? as usize;
    let width = r.u8()? as usize;
    if num_vars == 0 || num_vars > STORE_MAX_VARS || width != num_vars {
        return None;
    }
    let gate_count = r.u32()? as usize;
    let quantum_cost = r.u64()?;
    let table_len = 1usize << num_vars;
    let mut table = Vec::with_capacity(table_len);
    for _ in 0..table_len {
        let v = r.u64()?;
        if v >= table_len as u64 {
            return None;
        }
        table.push(v);
    }
    let wire_mask = ((1u64 << num_vars) - 1) as u32;
    let mut gates = Vec::with_capacity(gate_count.min(1 << 16));
    for _ in 0..gate_count {
        let kind = r.u8()?;
        let controls = r.u32()?;
        let a = r.u8()? as usize;
        let b = r.u8()? as usize;
        if controls & !wire_mask != 0 {
            return None;
        }
        let gate = match kind {
            GATE_TOFFOLI => {
                if a >= num_vars || b != 0 || controls >> a & 1 != 0 {
                    return None;
                }
                Gate::toffoli_mask(controls, a)
            }
            GATE_FREDKIN => {
                if a >= b || b >= num_vars || controls & ((1 << a) | (1 << b)) != 0 {
                    return None;
                }
                Gate::fredkin_mask(controls, a, b)
            }
            _ => return None,
        };
        gates.push(gate);
    }
    let prov_len = r.u16()? as usize;
    let provenance = std::str::from_utf8(r.take(prov_len)?).ok()?.to_string();
    if !r.0.is_empty() {
        return None; // trailing bytes: not a record this schema wrote
    }
    let circuit = Circuit::from_gates(width, gates);
    // Metadata cross-check, then the load-time re-verification: the
    // circuit must compute exactly the canonical table it claims to
    // solve. A record that fails here is never trusted into any cache.
    if circuit.quantum_cost() != quantum_cost || circuit.to_permutation() != table {
        return None;
    }
    let key = CacheKey { num_vars, table };
    Some((
        key,
        StoreEntry {
            circuit,
            tier,
            provenance,
        },
    ))
}

/// Bounds-checked little-endian cursor over a payload.
struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.0.len() {
            return None;
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::FRAME_HEADER_LEN;

    fn scratch(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("rmrls-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path.to_str().unwrap().to_string()
    }

    /// A verified (key, circuit) pair: the circuit's own permutation is
    /// its canonical table, so load-time verification passes.
    fn entry(width: usize, gates: Vec<Gate>) -> (CacheKey, Circuit) {
        let circuit = Circuit::from_gates(width, gates);
        let key = CacheKey {
            num_vars: width,
            table: circuit.to_permutation(),
        };
        (key, circuit)
    }

    fn cnot_pair() -> (CacheKey, Circuit) {
        entry(3, vec![Gate::cnot(0, 1), Gate::not(2)])
    }

    fn fredkin_pair() -> (CacheKey, Circuit) {
        entry(3, vec![Gate::fredkin(&[2], 0, 1)])
    }

    #[test]
    fn create_insert_reopen_round_trip() {
        let path = scratch("roundtrip.store");
        let (key, circuit) = cnot_pair();
        let (fkey, fcirc) = fredkin_pair();
        {
            let mut s = CircuitStore::open(&path).unwrap();
            assert!(s.is_empty());
            assert_eq!(
                s.insert(&key, &circuit, SolveTier::Rmrls, "test").unwrap(),
                InsertOutcome::Inserted { superseded: false }
            );
            assert_eq!(
                s.insert(&fkey, &fcirc, SolveTier::Mmd, "test").unwrap(),
                InsertOutcome::Inserted { superseded: false }
            );
        }
        let s = CircuitStore::open(&path).unwrap();
        assert_eq!(s.len(), 2);
        let (hit, tier) = s.get(&key).unwrap();
        assert_eq!(hit.gates(), circuit.gates());
        assert_eq!(tier, SolveTier::Rmrls);
        assert_eq!(s.get(&fkey).unwrap().1, SolveTier::Mmd);
        let stats = s.stats();
        assert_eq!(stats.records_loaded, 2);
        assert!(stats.quarantined_records == 0 && stats.verify_rejected == 0);
        let report = fsck(&path).unwrap();
        assert!(report.clean());
        assert_eq!(report.entries, 2);
    }

    #[test]
    fn upgrades_are_cost_monotonic() {
        let path = scratch("upgrade.store");
        let mut s = CircuitStore::open(&path).unwrap();
        // A wasteful identity-suffixed circuit and a cheaper equivalent
        // computing the same table.
        let cheap = Circuit::from_gates(3, vec![Gate::cnot(0, 1)]);
        let costly = Circuit::from_gates(3, vec![Gate::cnot(0, 1), Gate::not(2), Gate::not(2)]);
        assert_eq!(cheap.to_permutation(), costly.to_permutation());
        let key = CacheKey {
            num_vars: 3,
            table: cheap.to_permutation(),
        };
        s.insert(&key, &costly, SolveTier::Mmd, "first").unwrap();
        assert_eq!(
            s.insert(&key, &costly, SolveTier::Mmd, "again").unwrap(),
            InsertOutcome::KeptExisting,
            "equal cost does not rewrite"
        );
        assert_eq!(
            s.insert(&key, &cheap, SolveTier::Rmrls, "better").unwrap(),
            InsertOutcome::Inserted { superseded: true }
        );
        assert_eq!(
            s.insert(&key, &costly, SolveTier::Mmd, "regression")
                .unwrap(),
            InsertOutcome::KeptExisting,
            "a worse circuit never replaces a better one"
        );
        assert_eq!(s.get(&key).unwrap().0.gate_count(), 1);
        // Across a reopen the cheaper (later) record still wins, and the
        // shadowed one is counted superseded.
        let s2 = CircuitStore::open(&path).unwrap();
        assert_eq!(s2.get(&key).unwrap().0.gate_count(), 1);
        assert_eq!(s2.stats().superseded, 1);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = scratch("torn.store");
        let (key, circuit) = cnot_pair();
        {
            let mut s = CircuitStore::open(&path).unwrap();
            s.insert(&key, &circuit, SolveTier::Rmrls, "test").unwrap();
        }
        // Simulate a crash mid-append: half a frame at the tail.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let (fkey, fcirc) = fredkin_pair();
        let torn = encode_frame(&encode_payload(
            &fkey,
            &StoreEntry {
                circuit: fcirc,
                tier: SolveTier::Rmrls,
                provenance: "torn".to_string(),
            },
        ));
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&torn[..torn.len() / 2]).unwrap();
        drop(f);
        let report = fsck(&path).unwrap();
        assert_eq!(report.torn_tail_bytes, (torn.len() / 2) as u64);
        let mut s = CircuitStore::open(&path).unwrap();
        assert_eq!(s.len(), 1, "torn record never loads");
        assert_eq!(s.stats().torn_bytes_truncated, (torn.len() / 2) as u64);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len,
            "file physically truncated back to the clean append point"
        );
        // The store is fully usable after repair.
        s.insert(&fkey, &fredkin_pair().1, SolveTier::Mmd, "after")
            .unwrap();
        assert_eq!(CircuitStore::open(&path).unwrap().len(), 2);
    }

    #[test]
    fn corrupt_record_is_quarantined_and_valid_ones_survive() {
        let path = scratch("quarantine.store");
        let (key, circuit) = cnot_pair();
        let (fkey, fcirc) = fredkin_pair();
        let mid_offset;
        {
            let mut s = CircuitStore::open(&path).unwrap();
            s.insert(&key, &circuit, SolveTier::Rmrls, "keep").unwrap();
            mid_offset = s.end;
            s.insert(&fkey, &fcirc, SolveTier::Mmd, "damage").unwrap();
            let (tkey, tcirc) = entry(2, vec![Gate::not(0)]);
            s.insert(&tkey, &tcirc, SolveTier::Rmrls, "keep2").unwrap();
        }
        // Flip one payload byte of the middle record.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[mid_offset as usize + FRAME_HEADER_LEN] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let report = fsck(&path).unwrap();
        assert_eq!(report.quarantined.len(), 1, "exactly one record damaged");
        assert_eq!(report.quarantined[0].0, mid_offset);
        assert_eq!(report.valid_records, 2, "valid records preserved");
        assert!(!report.clean());
        let s = CircuitStore::open(&path).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.get(&fkey).is_none(), "quarantined entry never served");
        assert!(s.get(&key).is_some());
        assert_eq!(s.stats().quarantined_records, 1);
    }

    #[test]
    fn tampered_payload_with_valid_crc_is_verify_rejected() {
        let path = scratch("tamper.store");
        let (key, circuit) = cnot_pair();
        {
            let mut s = CircuitStore::open(&path).unwrap();
            s.insert(&key, &circuit, SolveTier::Rmrls, "test").unwrap();
        }
        // Re-frame a payload whose table claims something the circuit
        // does not compute — the CRC is valid, so only the load-time
        // re-verification can catch it.
        let header_len = format!("{}\n", header_json()).len();
        let tampered = StoreEntry {
            circuit,
            tier: SolveTier::Rmrls,
            provenance: "test".to_string(),
        };
        let mut bad_key = key.clone();
        bad_key.table.swap(0, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(header_len);
        bytes.extend_from_slice(&encode_frame(&encode_payload(&bad_key, &tampered)));
        std::fs::write(&path, &bytes).unwrap();
        let s = CircuitStore::open(&path).unwrap();
        assert_eq!(s.len(), 0, "unverifiable circuit never enters the index");
        assert_eq!(s.stats().verify_rejected, 1);
        assert_eq!(s.stats().quarantined_records, 0, "CRC itself was fine");
        assert_eq!(fsck(&path).unwrap().verify_rejected, 1);
    }

    #[test]
    fn compact_drops_quarantined_and_superseded_bytes() {
        let path = scratch("compact.store");
        let (key, _) = cnot_pair();
        let cheap = Circuit::from_gates(3, vec![Gate::cnot(0, 1), Gate::not(2)]);
        let costly = Circuit::from_gates(
            3,
            vec![Gate::cnot(0, 1), Gate::not(2), Gate::not(0), Gate::not(0)],
        );
        let damage_offset;
        {
            let mut s = CircuitStore::open(&path).unwrap();
            s.insert(&key, &costly, SolveTier::Mmd, "old").unwrap();
            let (fkey, fcirc) = fredkin_pair();
            damage_offset = s.end;
            s.insert(&fkey, &fcirc, SolveTier::Rmrls, "damage").unwrap();
            s.insert(&key, &cheap, SolveTier::Rmrls, "new").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[damage_offset as usize + FRAME_HEADER_LEN] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();

        let mut s = CircuitStore::open(&path).unwrap();
        let before = s.stats();
        assert_eq!(before.quarantined_records, 1);
        let compacted = s.compact().unwrap();
        assert_eq!(compacted.records_kept, 1);
        assert!(compacted.bytes_after < compacted.bytes_before);
        assert_eq!(s.get(&key).unwrap().0.gate_count(), 2, "best entry kept");
        // The compacted file is clean and holds exactly the live set.
        let report = fsck(&path).unwrap();
        assert!(report.clean());
        assert_eq!(report.valid_records, 1);
        assert_eq!(report.superseded, 0);
        // And the reopened handle keeps appending correctly.
        let (tkey, tcirc) = entry(2, vec![Gate::not(1)]);
        s.insert(&tkey, &tcirc, SolveTier::Rmrls, "after").unwrap();
        assert_eq!(CircuitStore::open(&path).unwrap().len(), 2);
    }

    #[test]
    fn compact_is_deterministic() {
        let path_a = scratch("det-a.store");
        let path_b = scratch("det-b.store");
        let pairs = [
            cnot_pair(),
            fredkin_pair(),
            entry(2, vec![Gate::not(0)]),
            entry(4, vec![Gate::toffoli(&[0, 1], 2), Gate::not(3)]),
        ];
        for (path, order) in [(&path_a, [0, 1, 2, 3]), (&path_b, [3, 1, 0, 2])] {
            let mut s = CircuitStore::open(path).unwrap();
            for &i in &order {
                let (k, c) = &pairs[i];
                s.insert(k, c, SolveTier::Rmrls, "det").unwrap();
            }
            s.compact().unwrap();
        }
        assert_eq!(
            std::fs::read(&path_a).unwrap(),
            std::fs::read(&path_b).unwrap(),
            "same live set compacts to identical bytes regardless of insert order"
        );
    }

    #[test]
    fn oversized_keys_are_ineligible_not_errors() {
        let path = scratch("wide.store");
        let mut s = CircuitStore::open(&path).unwrap();
        let key = CacheKey {
            num_vars: STORE_MAX_VARS + 1,
            table: Vec::new(),
        };
        let circuit = Circuit::new(STORE_MAX_VARS + 1);
        assert_eq!(
            s.insert(&key, &circuit, SolveTier::Rmrls, "wide").unwrap(),
            InsertOutcome::Ineligible
        );
        assert!(s.is_empty());
    }

    #[test]
    fn non_store_files_are_refused() {
        let path = scratch("not-a-store");
        std::fs::write(&path, "just some text\nmore text\n").unwrap();
        let err = CircuitStore::open(&path).unwrap_err();
        assert!(err.contains("unparsable header"), "{err}");
        let json_path = scratch("wrong-json.store");
        std::fs::write(&json_path, "{\"schema_version\":1}\n").unwrap();
        let err = CircuitStore::open(&json_path).unwrap_err();
        assert!(err.contains("not a circuit-store header"), "{err}");
    }

    #[test]
    fn future_schema_versions_are_refused() {
        let path = scratch("future.store");
        std::fs::write(&path, "{\"rmrls_store\":1,\"schema_version\":99}\n").unwrap();
        let err = CircuitStore::open(&path).unwrap_err();
        assert!(err.contains("newer than supported"), "{err}");
    }

    #[test]
    fn shared_store_is_one_store_across_clones_and_threads() {
        let path = scratch("shared.store");
        let shared = SharedStore::open(&path).unwrap();
        let clone = shared.clone();
        let (key, circuit) = cnot_pair();
        let handle = std::thread::spawn(move || {
            clone
                .lock()
                .insert(&key, &circuit, SolveTier::Rmrls, "thread")
                .unwrap();
        });
        handle.join().unwrap();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared.stats().appends, 1);
    }

    #[test]
    fn payload_decode_rejects_malformed_gates() {
        let (key, circuit) = cnot_pair();
        let entry = StoreEntry {
            circuit,
            tier: SolveTier::Rmrls,
            provenance: "x".to_string(),
        };
        let good = encode_payload(&key, &entry);
        assert!(decode_payload(&good).is_some());
        // Gate kind byte out of range.
        let gates_at = 16 + key.table.len() * 8;
        let mut bad = good.clone();
        bad[gates_at] = 9;
        assert!(decode_payload(&bad).is_none());
        // Target wire outside the circuit width.
        let mut bad = good.clone();
        bad[gates_at + 5] = 31;
        assert!(decode_payload(&bad).is_none());
        // Truncated payload.
        assert!(decode_payload(&good[..good.len() - 1]).is_none());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(decode_payload(&bad).is_none());
    }
}
