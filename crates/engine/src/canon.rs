//! Canonical representatives under wire relabeling.
//!
//! Two specifications that differ only by a renaming of wires have
//! structurally identical syntheses: if circuit `C` realizes `π`, then
//! `C` with every gate's wires renamed through `σ` realizes the
//! conjugate `p_σ ∘ π ∘ p_σ⁻¹`, where `p_σ` is the bit permutation
//! moving bit `i` to bit `σ[i]`. The batch cache exploits this by
//! keying every permutation job on the lexicographically smallest
//! conjugate over all `σ ∈ S_n` — the **canonical representative** —
//! and mapping a cached canonical circuit back to the requested
//! labeling with a SWAP-free gate-mask rewrite.
//!
//! The minimization enumerates all `n!` wire permutations (Heap's
//! algorithm) and compares `2^n`-entry tables, so it is gated on a
//! `canon_limit` (default 8 wires ≈ 10M word operations); wider
//! permutations fall back to the identity labeling and still cache on
//! their raw table.

use rmrls_circuit::{Circuit, Gate};
use rmrls_spec::Permutation;

/// A wire relabeling: wire `i` of the original becomes wire
/// `sigma[i]` of the canonical form.
pub type WirePerm = Vec<u8>;

/// Applies the bit permutation `p_σ`: bit `i` of `x` moves to bit
/// `sigma[i]` of the result.
pub fn permute_bits(x: u64, sigma: &[u8]) -> u64 {
    let mut y = 0u64;
    for (i, &s) in sigma.iter().enumerate() {
        y |= (x >> i & 1) << s;
    }
    y
}

/// The inverse relabeling: `inverse(σ)[σ[i]] = i`.
pub fn inverse_wire_perm(sigma: &[u8]) -> WirePerm {
    let mut inv = vec![0u8; sigma.len()];
    for (i, &s) in sigma.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

/// Conjugates a permutation table by the wire relabeling `sigma`:
/// returns the table of `p_σ ∘ π ∘ p_σ⁻¹`.
pub fn conjugate_table(map: &[u64], sigma: &[u8]) -> Vec<u64> {
    let mut out = vec![0u64; map.len()];
    for (x, &y) in map.iter().enumerate() {
        out[permute_bits(x as u64, sigma) as usize] = permute_bits(y, sigma);
    }
    out
}

/// The canonical representative of `perm` under wire relabeling, and
/// the relabeling `σ*` that produces it (`canon = p_σ* ∘ π ∘ p_σ*⁻¹`).
///
/// When `perm` is wider than `canon_limit` the search is skipped and
/// the permutation is its own representative under the identity
/// relabeling — correct, just without cross-labeling cache sharing.
pub fn canonical_form(perm: &Permutation, canon_limit: usize) -> (Vec<u64>, WirePerm) {
    let n = perm.num_vars();
    let identity: WirePerm = (0..n as u8).collect();
    if n > canon_limit || n <= 1 {
        return (perm.as_slice().to_vec(), identity);
    }
    let mut best_table = perm.as_slice().to_vec();
    let mut best_sigma = identity.clone();
    // Heap's algorithm over σ; the identity is the first visited state.
    let mut sigma = identity;
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                sigma.swap(0, i);
            } else {
                sigma.swap(c[i], i);
            }
            let table = conjugate_table(perm.as_slice(), &sigma);
            if table < best_table {
                best_table = table;
                best_sigma = sigma.clone();
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (best_table, best_sigma)
}

/// Renames every wire of `circuit` through `rho` (wire `i` → wire
/// `rho[i]`), without inserting any SWAP gates. If `circuit` realizes
/// `f`, the result realizes `p_ρ ∘ f ∘ p_ρ⁻¹`.
pub fn relabel_circuit(circuit: &Circuit, rho: &[u8]) -> Circuit {
    let remap_mask = |mask: u32| -> u32 {
        let mut out = 0u32;
        for (i, &r) in rho.iter().enumerate() {
            out |= (mask >> i & 1) << r;
        }
        out
    };
    let gates = circuit
        .gates()
        .iter()
        .map(|g| match *g {
            Gate::Toffoli { controls, target } => {
                Gate::toffoli_mask(remap_mask(controls), rho[target as usize] as usize)
            }
            Gate::Fredkin { controls, targets } => Gate::fredkin_mask(
                remap_mask(controls),
                rho[targets.0 as usize] as usize,
                rho[targets.1 as usize] as usize,
            ),
        })
        .collect();
    Circuit::from_gates(circuit.width(), gates)
}

/// Maps a circuit for the canonical representative back to the
/// original labeling: given `C` realizing `p_σ ∘ π ∘ p_σ⁻¹`, returns a
/// circuit realizing `π`.
pub fn uncanonicalize_circuit(canonical: &Circuit, sigma: &[u8]) -> Circuit {
    relabel_circuit(canonical, &inverse_wire_perm(sigma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn permute_bits_round_trips() {
        let sigma = [2u8, 0, 1];
        let inv = inverse_wire_perm(&sigma);
        for x in 0..8u64 {
            assert_eq!(permute_bits(permute_bits(x, &sigma), &inv), x);
        }
    }

    #[test]
    fn conjugation_by_identity_is_identity() {
        let p = Permutation::from_vec(vec![1, 0, 7, 2, 3, 4, 5, 6]).unwrap();
        let (table, _) = canonical_form(&p, 0); // above limit: no search
        assert_eq!(table, p.as_slice());
    }

    #[test]
    fn canonical_form_is_relabeling_invariant() {
        // π and every conjugate of π share one canonical table.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let p = rmrls_spec::random_permutation(3, &mut rng);
            let (canon, _) = canonical_form(&p, 8);
            for sigma in [[1u8, 0, 2], [2, 1, 0], [1, 2, 0]] {
                let relabeled =
                    Permutation::from_vec(conjugate_table(p.as_slice(), &sigma)).unwrap();
                let (canon2, _) = canonical_form(&relabeled, 8);
                assert_eq!(canon, canon2, "conjugates must share a canonical form");
            }
        }
    }

    #[test]
    fn canonical_sigma_reproduces_the_table() {
        let mut rng = StdRng::seed_from_u64(13);
        let p = rmrls_spec::random_permutation(4, &mut rng);
        let (canon, sigma) = canonical_form(&p, 8);
        assert_eq!(conjugate_table(p.as_slice(), &sigma), canon);
        // Canonical is lexicographically minimal, so never above the
        // original table.
        assert!(canon <= p.as_slice().to_vec());
    }

    #[test]
    fn relabeled_circuit_realizes_the_conjugate() {
        // C = CNOT(a→b) then NOT(c) on 3 wires.
        let c = Circuit::from_gates(
            3,
            vec![Gate::toffoli(&[0], 1), Gate::toffoli(&[] as &[usize], 2)],
        );
        let sigma = [2u8, 0, 1];
        let relabeled = relabel_circuit(&c, &sigma);
        for x in 0..8u64 {
            let inv = inverse_wire_perm(&sigma);
            let expected = permute_bits(c.apply(permute_bits(x, &inv)), &sigma);
            assert_eq!(relabeled.apply(x), expected, "input {x}");
        }
    }

    #[test]
    fn uncanonicalize_recovers_the_original_function() {
        // Synthesize the canonical form, map back, verify against π.
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..4 {
            let p = rmrls_spec::random_permutation(3, &mut rng);
            let (canon, sigma) = canonical_form(&p, 8);
            let canon_spec = rmrls_pprm::MultiPprm::from_permutation(&canon, 3);
            let opts = rmrls_core::SynthesisOptions::new().with_max_nodes(50_000);
            let canon_circuit = rmrls_core::synthesize(&canon_spec, &opts)
                .expect("3-variable canon synthesizes")
                .circuit;
            let circuit = uncanonicalize_circuit(&canon_circuit, &sigma);
            assert_eq!(
                circuit.to_permutation(),
                p.as_slice(),
                "conjugated circuit must realize the original permutation"
            );
        }
    }

    #[test]
    fn fredkin_gates_relabel_too() {
        let c = Circuit::from_gates(3, vec![Gate::fredkin_mask(0b100, 0, 1)]);
        let sigma = [1u8, 2, 0];
        let relabeled = relabel_circuit(&c, &sigma);
        let inv = inverse_wire_perm(&sigma);
        for x in 0..8u64 {
            let expected = permute_bits(c.apply(permute_bits(x, &inv)), &sigma);
            assert_eq!(relabeled.apply(x), expected);
        }
    }
}
