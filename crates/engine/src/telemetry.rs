//! Live telemetry for a running batch: a thread-safe metrics registry
//! plus a per-job status board, both scrapeable mid-run.
//!
//! [`BatchTelemetry`] is handed to [`run_batch`] via
//! [`BatchOptions::telemetry`]; the engine then
//!
//! - sources its run counters from the shared [`SyncRegistry`] (so
//!   every counter the aggregate report tallies is also a live
//!   `/metrics` series),
//! - records per-job synthesis latency, expansion-batch latency, and
//!   cache-lookup latency into log-bucketed histograms,
//! - drives the [`JobStatusRegistry`] through
//!   pending → running → done/failed transitions, and
//! - runs a background sampler that publishes point-in-time gauges
//!   (frontier depth, live PPRM terms, cache occupancy, busy workers)
//!   every [`SAMPLE_INTERVAL`].
//!
//! Everything here is observation-only. Job state lives in
//! per-slot atomics written by workers and read by scrape threads; no
//! telemetry path takes a lock a worker search loop holds, and no
//! search decision reads telemetry state — which is what makes the
//! "byte-identical results with telemetry on" guarantee hold.
//!
//! [`run_batch`]: crate::engine::run_batch
//! [`BatchOptions::telemetry`]: crate::engine::BatchOptions

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rmrls_obs::{prometheus_text, Json, SyncCounter, SyncGauge, SyncHistogram, SyncRegistry};

use crate::engine::{JobOutcome, SolveTier};

/// Cadence of the background gauge sampler.
pub const SAMPLE_INTERVAL: Duration = Duration::from_millis(250);

/// Sentinel for "not yet" in the per-slot millisecond timestamps.
const UNSET: u64 = u64::MAX;

/// Lifecycle of one batch job, as exposed on `/jobs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Not yet picked up by a worker.
    Pending,
    /// A worker is executing it now.
    Running,
    /// Finished with a circuit (solved, or recovered from a journal).
    Done,
    /// Finished without a circuit (unsolved, errored, panicked, or
    /// skipped by a drain).
    Failed,
}

impl JobState {
    /// Stable lowercase name used in the `/jobs` JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    fn from_u8(v: u8) -> JobState {
        match v {
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            _ => JobState::Pending,
        }
    }
}

/// One job's live status cell: all-atomic (except the name, which is
/// only locked on slot reassignment and status reads — never inside a
/// search loop), so workers update and scrape threads read without
/// contending.
struct JobSlot {
    name: Mutex<String>,
    state: AtomicU8,
    /// 0 = none/unsolved, else `SolveTier as u8 + 1`.
    solved_by: AtomicU8,
    started_ms: AtomicU64,
    ended_ms: AtomicU64,
    nodes_expanded: AtomicU64,
    queue_depth: AtomicU64,
    live_terms: AtomicU64,
    memory_sheds: AtomicU64,
}

impl JobSlot {
    fn new(name: String) -> JobSlot {
        JobSlot {
            name: Mutex::new(name),
            state: AtomicU8::new(0),
            solved_by: AtomicU8::new(0),
            started_ms: AtomicU64::new(UNSET),
            ended_ms: AtomicU64::new(UNSET),
            nodes_expanded: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            live_terms: AtomicU64::new(0),
            memory_sheds: AtomicU64::new(0),
        }
    }
}

/// Point-in-time view of one job, as served on `/jobs`.
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// Admission index.
    pub index: usize,
    /// Display name from the manifest.
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Producing tier, once solved.
    pub solved_by: Option<SolveTier>,
    /// Wall-clock seconds: running → elapsed so far; finished → total;
    /// pending → 0.
    pub elapsed_seconds: f64,
    /// Nodes expanded (live while running, final afterwards).
    pub nodes_expanded: u64,
    /// Frontier queue depth at the last progress beat.
    pub queue_depth: u64,
    /// Live PPRM terms at the last progress beat.
    pub live_terms: u64,
    /// Memory sheds so far.
    pub memory_sheds: u64,
}

impl JobStatus {
    /// Serializes one status row for the `/jobs` endpoint.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("index".into(), Json::uint(self.index as u64)),
            ("job".into(), Json::str(&self.name)),
            ("state".into(), Json::str(self.state.as_str())),
            (
                "solved_by".into(),
                self.solved_by
                    .map(|t| Json::str(t.as_str()))
                    .unwrap_or(Json::Null),
            ),
            ("elapsed_seconds".into(), Json::Num(self.elapsed_seconds)),
            ("nodes_expanded".into(), Json::uint(self.nodes_expanded)),
            ("queue_depth".into(), Json::uint(self.queue_depth)),
            ("live_terms".into(), Json::uint(self.live_terms)),
            ("memory_sheds".into(), Json::uint(self.memory_sheds)),
        ])
    }
}

/// Live per-job state for one batch run.
///
/// Indices are admission indices; the slot vector is sized once at
/// construction and never grows, so readers never race a resize.
pub struct JobStatusRegistry {
    t0: Instant,
    slots: Vec<JobSlot>,
}

impl JobStatusRegistry {
    /// One pending slot per job name, in admission order.
    pub fn new(names: Vec<String>) -> JobStatusRegistry {
        JobStatusRegistry {
            t0: Instant::now(),
            slots: names.into_iter().map(JobSlot::new).collect(),
        }
    }

    /// Number of tracked jobs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when tracking no jobs.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    /// Reassigns a slot to a new job — the serve daemon's pattern,
    /// where a fixed ring of slots is relabeled as requests arrive
    /// (batch mode names every slot once at construction and never
    /// calls this). Renames the slot and resets every field to a fresh
    /// pending state.
    pub fn assign(&self, index: usize, name: &str) {
        let Some(slot) = self.slots.get(index) else {
            return;
        };
        match slot.name.lock() {
            Ok(mut n) => *n = name.to_string(),
            Err(poisoned) => *poisoned.into_inner() = name.to_string(),
        }
        slot.solved_by.store(0, Ordering::Relaxed);
        slot.started_ms.store(UNSET, Ordering::Relaxed);
        slot.ended_ms.store(UNSET, Ordering::Relaxed);
        slot.nodes_expanded.store(0, Ordering::Relaxed);
        slot.queue_depth.store(0, Ordering::Relaxed);
        slot.live_terms.store(0, Ordering::Relaxed);
        slot.memory_sheds.store(0, Ordering::Relaxed);
        slot.state.store(0, Ordering::Release);
    }

    /// Marks a job picked up by a worker.
    pub fn mark_running(&self, index: usize) {
        let Some(slot) = self.slots.get(index) else {
            return;
        };
        slot.started_ms.store(self.now_ms(), Ordering::Relaxed);
        slot.state.store(1, Ordering::Release);
    }

    /// Marks a job finished, deriving done/failed and the solve tier
    /// from its outcome.
    pub fn mark_finished(&self, index: usize, outcome: &JobOutcome) {
        match outcome {
            JobOutcome::Solved { solved_by, .. } => self.mark_done(index, Some(*solved_by)),
            JobOutcome::Resumed { .. } => self.mark_done(index, None),
            _ => self.mark_failed(index),
        }
    }

    /// Marks a job finished with a circuit (tier `None` for jobs
    /// recovered from a journal, where the tier was not replayed).
    pub fn mark_done(&self, index: usize, tier: Option<SolveTier>) {
        self.finish(index, 2, tier);
    }

    /// Marks a job finished without a circuit.
    pub fn mark_failed(&self, index: usize) {
        self.finish(index, 3, None);
    }

    fn finish(&self, index: usize, state: u8, tier: Option<SolveTier>) {
        let Some(slot) = self.slots.get(index) else {
            return;
        };
        slot.solved_by
            .store(tier.map_or(0, |t| t as u8 + 1), Ordering::Relaxed);
        slot.ended_ms.store(self.now_ms(), Ordering::Relaxed);
        slot.state.store(state, Ordering::Release);
    }

    /// Publishes a progress beat from inside a running search.
    pub fn update_progress(
        &self,
        index: usize,
        nodes_expanded: u64,
        queue_depth: u64,
        live_terms: u64,
        memory_sheds: u64,
    ) {
        let Some(slot) = self.slots.get(index) else {
            return;
        };
        slot.nodes_expanded.store(nodes_expanded, Ordering::Relaxed);
        slot.queue_depth.store(queue_depth, Ordering::Relaxed);
        slot.live_terms.store(live_terms, Ordering::Relaxed);
        slot.memory_sheds.store(memory_sheds, Ordering::Relaxed);
    }

    /// Reads one job's current status.
    pub fn status(&self, index: usize) -> Option<JobStatus> {
        let slot = self.slots.get(index)?;
        let state = JobState::from_u8(slot.state.load(Ordering::Acquire));
        let started = slot.started_ms.load(Ordering::Relaxed);
        let ended = slot.ended_ms.load(Ordering::Relaxed);
        let elapsed_ms = match (state, started, ended) {
            (JobState::Pending, _, _) | (_, UNSET, _) => 0,
            (JobState::Running, s, _) => self.now_ms().saturating_sub(s),
            (_, s, e) => {
                if e == UNSET {
                    0
                } else {
                    e.saturating_sub(s)
                }
            }
        };
        let solved_by = match slot.solved_by.load(Ordering::Relaxed) {
            1 => Some(SolveTier::Rmrls),
            2 => Some(SolveTier::RmrlsRelaxed),
            3 => Some(SolveTier::Mmd),
            _ => None,
        };
        let name = match slot.name.lock() {
            Ok(n) => n.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        Some(JobStatus {
            index,
            name,
            state,
            solved_by,
            elapsed_seconds: elapsed_ms as f64 / 1000.0,
            nodes_expanded: slot.nodes_expanded.load(Ordering::Relaxed),
            queue_depth: slot.queue_depth.load(Ordering::Relaxed),
            live_terms: slot.live_terms.load(Ordering::Relaxed),
            memory_sheds: slot.memory_sheds.load(Ordering::Relaxed),
        })
    }

    /// Snapshot of every job, in admission order.
    pub fn statuses(&self) -> Vec<JobStatus> {
        (0..self.slots.len())
            .filter_map(|i| self.status(i))
            .collect()
    }

    /// Count of jobs currently in `state`.
    pub fn count_in(&self, state: JobState) -> u64 {
        self.slots
            .iter()
            .filter(|s| JobState::from_u8(s.state.load(Ordering::Acquire)) == state)
            .count() as u64
    }

    /// Sums a live field over all *running* jobs — the cluster-wide
    /// "how deep are the frontiers right now" view the sampler
    /// publishes as gauges.
    fn sum_running(&self, field: impl Fn(&JobSlot) -> &AtomicU64) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.state.load(Ordering::Acquire) == 1)
            .map(|s| field(s).load(Ordering::Relaxed))
            .sum()
    }
}

/// Everything a scrape endpoint needs to describe a running batch.
///
/// Construct once per run, share via `Arc`: the engine writes, the
/// HTTP providers read.
pub struct BatchTelemetry {
    registry: SyncRegistry,
    /// Per-job live state, drives `/jobs`.
    pub jobs: JobStatusRegistry,
    /// Per-job wall-clock synthesis latency (seconds).
    pub job_seconds: Arc<SyncHistogram>,
    /// Latency between successive in-search progress beats (one beat
    /// per `TIME_CHECK_INTERVAL` expansions), i.e. expansion-batch
    /// latency in seconds.
    pub expansion_batch_seconds: Arc<SyncHistogram>,
    /// Canonicalization + cache-probe latency per lookup (seconds).
    pub cache_lookup_seconds: Arc<SyncHistogram>,
    queue_depth: Arc<SyncGauge>,
    live_terms: Arc<SyncGauge>,
    cache_entries: Arc<SyncGauge>,
    workers_busy: Arc<SyncGauge>,
    workers_total: Arc<SyncGauge>,
    jobs_running: Arc<SyncGauge>,
    jobs_pending: Arc<SyncGauge>,
    // Degradation witnesses: shared with the engine's run counters
    // (same registry names), read by `/healthz`.
    panics_contained: Arc<SyncCounter>,
    verify_failures: Arc<SyncCounter>,
    journal_append_errors: Arc<SyncCounter>,
    trace_write_errors: Arc<SyncCounter>,
    memory_shed_jobs: Arc<SyncCounter>,
    /// 1 while the serve admission queue is shedding load (429s being
    /// returned), 0 otherwise. Always 0 in batch mode.
    backpressure: Arc<SyncGauge>,
}

impl fmt::Debug for BatchTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchTelemetry")
            .field("jobs", &self.jobs.len())
            .finish_non_exhaustive()
    }
}

impl BatchTelemetry {
    /// Builds the telemetry board for a run over the named jobs.
    pub fn new(job_names: Vec<String>) -> BatchTelemetry {
        let registry = SyncRegistry::new();
        let latency = rmrls_obs::log2_bounds(1e-6, 128.0);
        BatchTelemetry {
            job_seconds: registry.histogram("job_seconds", &latency),
            expansion_batch_seconds: registry.histogram("expansion_batch_seconds", &latency),
            cache_lookup_seconds: registry.histogram("cache_lookup_seconds", &latency),
            queue_depth: registry.gauge("queue_depth"),
            live_terms: registry.gauge("live_terms"),
            cache_entries: registry.gauge("cache_entries"),
            workers_busy: registry.gauge("workers_busy"),
            workers_total: registry.gauge("workers_total"),
            jobs_running: registry.gauge("jobs_running"),
            jobs_pending: registry.gauge("jobs_pending"),
            panics_contained: registry.counter("panics_contained"),
            verify_failures: registry.counter("verify_failures"),
            journal_append_errors: registry.counter("journal_append_errors"),
            trace_write_errors: registry.counter("trace_write_errors"),
            memory_shed_jobs: registry.counter("memory_shed_jobs"),
            backpressure: registry.gauge("admission_backpressure"),
            jobs: JobStatusRegistry::new(job_names),
            registry,
        }
    }

    /// The shared metrics registry (the engine sources its run
    /// counters here so every tally is also a live series).
    pub fn registry(&self) -> &SyncRegistry {
        &self.registry
    }

    /// Records the total worker count (published once at pool start).
    pub fn set_workers_total(&self, n: u64) {
        self.workers_total.set(n);
    }

    /// One sampler beat: reads live state and publishes it as gauges.
    /// `cache_entries` is the memo-cache occupancy, `None` when the
    /// cache is disabled.
    pub fn sample(&self, cache_entries: Option<u64>) {
        self.queue_depth
            .set(self.jobs.sum_running(|s| &s.queue_depth));
        self.live_terms
            .set(self.jobs.sum_running(|s| &s.live_terms));
        if let Some(n) = cache_entries {
            self.cache_entries.set(n);
        }
        let running = self.jobs.count_in(JobState::Running);
        self.workers_busy.set(running);
        self.jobs_running.set(running);
        self.jobs_pending.set(self.jobs.count_in(JobState::Pending));
    }

    /// True when the run has witnessed degradation: a contained panic,
    /// a verification failure, a journal/trace write error, a memory
    /// shed, or (serve mode) active admission backpressure.
    pub fn degraded(&self) -> bool {
        self.panics_contained.get() > 0
            || self.verify_failures.get() > 0
            || self.journal_append_errors.get() > 0
            || self.trace_write_errors.get() > 0
            || self.memory_shed_jobs.get() > 0
            || self.backpressure.get() > 0
    }

    /// Flags (or clears) admission backpressure: the serve daemon sets
    /// this while it is shedding requests with 429, which also flips
    /// `/healthz` to degraded for the duration.
    pub fn set_backpressure(&self, shedding: bool) {
        self.backpressure.set(u64::from(shedding));
    }

    /// Counts a job whose search shed memory (degraded mode).
    pub fn note_memory_sheds(&self, sheds: u64) {
        if sheds > 0 {
            self.memory_shed_jobs.inc();
        }
    }

    /// Body of `GET /metrics`: the live registry in Prometheus text
    /// exposition format.
    pub fn metrics_text(&self) -> String {
        prometheus_text(&self.registry.snapshot())
    }

    /// Body of `GET /healthz`: liveness plus the degraded-mode flag.
    pub fn healthz_json(&self) -> String {
        Json::Obj(vec![
            ("status".into(), Json::str("ok")),
            ("degraded".into(), Json::Bool(self.degraded())),
            ("jobs_total".into(), Json::uint(self.jobs.len() as u64)),
            (
                "jobs_running".into(),
                Json::uint(self.jobs.count_in(JobState::Running)),
            ),
            (
                "jobs_done".into(),
                Json::uint(self.jobs.count_in(JobState::Done)),
            ),
            (
                "jobs_failed".into(),
                Json::uint(self.jobs.count_in(JobState::Failed)),
            ),
        ])
        .to_string()
    }

    /// Body of `GET /jobs`: every job's current status, in admission
    /// order.
    pub fn jobs_json(&self) -> String {
        Json::Arr(
            self.jobs
                .statuses()
                .iter()
                .map(JobStatus::to_json)
                .collect(),
        )
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmrls_circuit::Circuit;

    fn telemetry(n: usize) -> BatchTelemetry {
        BatchTelemetry::new((0..n).map(|i| format!("job-{i}")).collect())
    }

    #[test]
    fn jobs_walk_the_lifecycle() {
        let t = telemetry(2);
        assert_eq!(t.jobs.status(0).unwrap().state, JobState::Pending);
        t.jobs.mark_running(0);
        assert_eq!(t.jobs.status(0).unwrap().state, JobState::Running);
        t.jobs.update_progress(0, 512, 40, 900, 1);
        let s = t.jobs.status(0).unwrap();
        assert_eq!(s.nodes_expanded, 512);
        assert_eq!(s.queue_depth, 40);
        assert_eq!(s.live_terms, 900);
        assert_eq!(s.memory_sheds, 1);
        t.jobs.mark_finished(
            0,
            &JobOutcome::Solved {
                circuit: Circuit::new(3),
                verified: Some(true),
                solved_by: SolveTier::RmrlsRelaxed,
            },
        );
        let s = t.jobs.status(0).unwrap();
        assert_eq!(s.state, JobState::Done);
        assert_eq!(s.solved_by, Some(SolveTier::RmrlsRelaxed));
        t.jobs.mark_running(1);
        t.jobs.mark_finished(
            1,
            &JobOutcome::Unsolved {
                stop_reason: "node budget exhausted".into(),
            },
        );
        assert_eq!(t.jobs.status(1).unwrap().state, JobState::Failed);
        assert_eq!(t.jobs.status(1).unwrap().solved_by, None);
        // Out-of-range indices are ignored, not panics.
        t.jobs.mark_running(99);
        assert!(t.jobs.status(99).is_none());
    }

    #[test]
    fn sampler_publishes_running_sums() {
        let t = telemetry(3);
        t.set_workers_total(2);
        t.jobs.mark_running(0);
        t.jobs.mark_running(1);
        t.jobs.update_progress(0, 10, 100, 1000, 0);
        t.jobs.update_progress(1, 20, 50, 500, 0);
        t.sample(Some(7));
        let snap = t.registry().snapshot();
        let gauge = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, v, _)| *v)
                .unwrap()
        };
        assert_eq!(gauge("queue_depth"), 150);
        assert_eq!(gauge("live_terms"), 1500);
        assert_eq!(gauge("cache_entries"), 7);
        assert_eq!(gauge("workers_busy"), 2);
        assert_eq!(gauge("workers_total"), 2);
        assert_eq!(gauge("jobs_pending"), 1);
        // A finished job leaves the running sums.
        t.jobs.mark_finished(
            0,
            &JobOutcome::Error {
                message: "x".into(),
            },
        );
        t.sample(None);
        let snap = t.registry().snapshot();
        let gauge = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, v, _)| *v)
                .unwrap()
        };
        assert_eq!(gauge("queue_depth"), 50);
        assert_eq!(gauge("workers_busy"), 1);
    }

    #[test]
    fn healthz_reports_degradation() {
        let t = telemetry(1);
        assert!(t.healthz_json().contains("\"degraded\":false"));
        t.note_memory_sheds(0);
        assert!(!t.degraded());
        t.note_memory_sheds(3);
        assert!(t.degraded());
        assert!(t.healthz_json().contains("\"degraded\":true"));
    }

    #[test]
    fn backpressure_degrades_health_while_set() {
        let t = telemetry(1);
        assert!(!t.degraded());
        t.set_backpressure(true);
        assert!(t.degraded());
        assert!(t.healthz_json().contains("\"degraded\":true"));
        t.set_backpressure(false);
        assert!(!t.degraded(), "clears when shedding stops");
    }

    #[test]
    fn assign_relabels_and_resets_a_slot() {
        let t = telemetry(2);
        t.jobs.mark_running(0);
        t.jobs.update_progress(0, 512, 40, 900, 1);
        t.jobs.mark_finished(
            0,
            &JobOutcome::Solved {
                circuit: Circuit::new(3),
                verified: Some(true),
                solved_by: SolveTier::Rmrls,
            },
        );
        t.jobs.assign(0, "request:7");
        let s = t.jobs.status(0).unwrap();
        assert_eq!(s.name, "request:7");
        assert_eq!(s.state, JobState::Pending);
        assert_eq!(s.solved_by, None);
        assert_eq!(s.nodes_expanded, 0);
        assert_eq!(s.elapsed_seconds, 0.0);
        // Out-of-range assigns are ignored, not panics.
        t.jobs.assign(99, "x");
    }

    #[test]
    fn jobs_json_is_parseable_and_ordered() {
        let t = telemetry(2);
        t.jobs.mark_running(1);
        let parsed = Json::parse(&t.jobs_json()).unwrap();
        let rows = parsed.as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("job").unwrap().as_str(), Some("job-0"));
        assert_eq!(rows[1].get("state").unwrap().as_str(), Some("running"));
        assert_eq!(rows[0].get("solved_by"), Some(&Json::Null));
    }

    #[test]
    fn metrics_text_has_histogram_series_even_before_traffic() {
        let t = telemetry(1);
        let text = t.metrics_text();
        assert!(text.contains("rmrls_job_seconds_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("# TYPE rmrls_expansion_batch_seconds histogram"));
        assert!(text.contains("# TYPE rmrls_cache_lookup_seconds histogram"));
        t.job_seconds.record(0.25);
        assert!(t.metrics_text().contains("rmrls_job_seconds_count 1\n"));
    }
}
