//! LRU-bounded memo cache of synthesized canonical circuits.
//!
//! Keys are canonical permutation tables (see [`canon`](crate::canon)),
//! values are the circuits synthesized for those canonical
//! representatives **plus the ladder tier that produced them**, so a
//! cache hit reports the same `solved_by` attribution as the original
//! synthesis (keeping batch results byte-identical across cache
//! settings). Only successful syntheses are cached — a failure under
//! one job's deadline says nothing about the next job's budget.
//!
//! The engine wraps one `CircuitCache` in a `Mutex` shared by all
//! workers; every operation is O(capacity) worst case (eviction scans
//! for the least-recently-used entry), which is irrelevant next to the
//! cost of a synthesis run the cache exists to avoid.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use rmrls_circuit::Circuit;

use crate::engine::SolveTier;

/// Cache key: the width and canonical table of a permutation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Number of wires.
    pub num_vars: usize,
    /// Canonical permutation table.
    pub table: Vec<u64>,
}

/// A bounded least-recently-used map from canonical tables to their
/// synthesized circuits.
#[derive(Debug)]
pub struct CircuitCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<CacheKey, (Circuit, SolveTier, u64)>,
}

impl CircuitCache {
    /// An empty cache holding at most `capacity` circuits. A zero
    /// capacity caches nothing (every lookup misses).
    pub fn new(capacity: usize) -> CircuitCache {
        CircuitCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Number of cached circuits.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a canonical table, refreshing its recency on a hit.
    /// Returns the circuit together with the ladder tier that
    /// originally produced it.
    pub fn get(&mut self, key: &CacheKey) -> Option<(Circuit, SolveTier)> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(circuit, tier, used)| {
            *used = tick;
            (circuit.clone(), *tier)
        })
    }

    /// Inserts a canonical circuit and its producing tier, evicting the
    /// least-recently-used entry if the cache is full.
    ///
    /// Insertion is **cost-monotonic**: re-inserting an existing key
    /// keeps whichever circuit is cheaper (fewer gates, then lower
    /// quantum cost), refreshing the entry's recency either way. Store
    /// merges and cache upgrades therefore can never regress a
    /// best-known result — only improve it.
    pub fn insert(&mut self, key: CacheKey, circuit: Circuit, tier: SolveTier) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some((existing, existing_tier, used)) = self.entries.get_mut(&key) {
            let cheaper = circuit.gate_count() < existing.gate_count()
                || (circuit.gate_count() == existing.gate_count()
                    && circuit.quantum_cost() < existing.quantum_cost());
            if cheaper {
                *existing = circuit;
                *existing_tier = tier;
            }
            *used = self.tick;
            return;
        }
        self.entries.insert(key, (circuit, tier, self.tick));
        if self.entries.len() > self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
    }
}

/// A [`CircuitCache`] behind one shared lock, cloneable across
/// threads: the batch engine's workers and the serve daemon's request
/// handlers all hit the same LRU, so one tenant's synthesis warms the
/// cache for every other. Lock poisoning is recovered (a panicked
/// holder can at worst have refreshed a recency tick — the map itself
/// is only mutated through `&mut` methods that keep it consistent).
#[derive(Clone, Debug)]
pub struct SharedCache {
    inner: Arc<Mutex<CircuitCache>>,
}

impl SharedCache {
    /// A shared cache holding at most `capacity` circuits.
    pub fn new(capacity: usize) -> SharedCache {
        SharedCache {
            inner: Arc::new(Mutex::new(CircuitCache::new(capacity))),
        }
    }

    /// Locks the underlying cache, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, CircuitCache> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Number of cached circuits right now (takes the lock briefly).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty right now.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmrls_circuit::Gate;

    fn key(id: u64) -> CacheKey {
        CacheKey {
            num_vars: 1,
            table: vec![id],
        }
    }

    fn circuit(n: usize) -> Circuit {
        Circuit::from_gates(2, vec![Gate::toffoli(&[] as &[usize], n % 2)])
    }

    #[test]
    fn hit_returns_the_stored_circuit_and_tier() {
        let mut c = CircuitCache::new(4);
        c.insert(key(1), circuit(0), SolveTier::Rmrls);
        c.insert(key(3), circuit(1), SolveTier::Mmd);
        let (hit, tier) = c.get(&key(1)).unwrap();
        assert_eq!(hit.gates(), circuit(0).gates());
        assert_eq!(tier, SolveTier::Rmrls);
        assert_eq!(c.get(&key(3)).unwrap().1, SolveTier::Mmd);
        assert!(c.get(&key(2)).is_none());
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut c = CircuitCache::new(2);
        c.insert(key(1), circuit(1), SolveTier::Rmrls);
        c.insert(key(2), circuit(2), SolveTier::Rmrls);
        let _ = c.get(&key(1)); // refresh 1; 2 becomes LRU
        c.insert(key(3), circuit(3), SolveTier::RmrlsRelaxed);
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(3)).is_some());
    }

    #[test]
    fn reinsert_keeps_the_cheaper_circuit() {
        let mut c = CircuitCache::new(4);
        let cheap = Circuit::from_gates(2, vec![Gate::not(0)]);
        let costly = Circuit::from_gates(2, vec![Gate::not(0), Gate::not(1), Gate::not(1)]);
        c.insert(key(1), costly.clone(), SolveTier::Mmd);
        // A worse circuit never overwrites a better one...
        c.insert(key(1), cheap.clone(), SolveTier::Rmrls);
        c.insert(key(1), costly.clone(), SolveTier::Mmd);
        let (hit, tier) = c.get(&key(1)).unwrap();
        assert_eq!(hit.gate_count(), 1);
        assert_eq!(tier, SolveTier::Rmrls, "tier follows the kept circuit");
        // ...and an equal-cost re-insert keeps the incumbent.
        let other_cheap = Circuit::from_gates(2, vec![Gate::not(1)]);
        c.insert(key(1), other_cheap, SolveTier::Mmd);
        let (hit, tier) = c.get(&key(1)).unwrap();
        assert_eq!(hit.gates(), cheap.gates());
        assert_eq!(tier, SolveTier::Rmrls);
    }

    #[test]
    fn reinsert_refreshes_recency_even_when_kept() {
        let mut c = CircuitCache::new(2);
        let cheap = Circuit::from_gates(2, vec![Gate::not(0)]);
        let costly = Circuit::from_gates(2, vec![Gate::not(0), Gate::not(1), Gate::not(1)]);
        c.insert(key(1), cheap, SolveTier::Rmrls);
        c.insert(key(2), circuit(2), SolveTier::Rmrls);
        // Re-offering a worse circuit for key 1 keeps the entry but
        // marks it used, so key 2 is now the LRU victim.
        c.insert(key(1), costly, SolveTier::Mmd);
        c.insert(key(3), circuit(3), SolveTier::Rmrls);
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(3)).is_some());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = CircuitCache::new(0);
        c.insert(key(1), circuit(1), SolveTier::Rmrls);
        assert!(c.is_empty());
        assert!(c.get(&key(1)).is_none());
    }

    #[test]
    fn shared_cache_is_one_cache_across_clones_and_threads() {
        let shared = SharedCache::new(4);
        let clone = shared.clone();
        let handle = std::thread::spawn(move || {
            clone.lock().insert(key(7), circuit(1), SolveTier::Mmd);
        });
        handle.join().unwrap();
        assert_eq!(shared.len(), 1);
        let (_, tier) = shared.lock().get(&key(7)).unwrap();
        assert_eq!(tier, SolveTier::Mmd);
    }

    #[test]
    fn shared_cache_recovers_from_poisoning() {
        let shared = SharedCache::new(4);
        let clone = shared.clone();
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("poison the lock");
        })
        .join();
        shared.lock().insert(key(1), circuit(0), SolveTier::Rmrls);
        assert_eq!(shared.len(), 1);
    }
}
