//! The write-ahead results journal: crash-safe batch checkpointing.
//!
//! In batch mode the per-job results file is written as a **journal**:
//! a self-describing header line followed by one JSON record per
//! finished job, each appended and fsync'd as the job completes. A
//! killed batch (SIGKILL, OOM, power loss) therefore loses at most the
//! one record that was mid-write; `rmrls batch --resume FILE` replays
//! the journal, skips every job it already holds, and re-runs only the
//! rest.
//!
//! Format:
//!
//! - line 1 — header object:
//!   `{"journal":"rmrls-batch","schema_version":1,"manifest_hash":"…",
//!   "options_fingerprint":"…","jobs_total":N}`. The two hex hashes
//!   bind the journal to the exact job list and result-affecting
//!   configuration, so resuming against a different workload or
//!   different options is refused instead of silently mixing results;
//! - lines 2… — job records exactly as in the results JSONL, plus a
//!   leading `index` field mapping each record back to its admission
//!   slot (journal order is completion order, not admission order; the
//!   CLI rewrites the file in admission order once the run finishes).
//!
//! **Torn-tail rule:** reading stops at the first line that is not a
//! complete JSON record carrying an in-range `index` and a `status`. A
//! torn final line — the SIGKILL case — is tolerated and flagged, never
//! an error; anything after it is ignored. Records with status
//! `skipped` are also excluded from the completed set: a drained job
//! never ran, so a resume must run it.

use std::collections::HashMap;
use std::fs::File;
use std::io::Write;

use rmrls_core::options_to_json;
use rmrls_obs::Json;

use crate::engine::BatchOptions;
use crate::manifest::{Admission, SpecData};

/// Version of the journal format. Bumped whenever the header or record
/// framing changes incompatibly; additive record fields do not bump it.
pub const JOURNAL_SCHEMA_VERSION: u64 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Hash binding a journal to its job list: covers every admission's
/// name, origin, and resolved specification (table or PPRM
/// fingerprint), so reordering, editing, or re-resolving the manifest
/// changes the hash.
pub fn manifest_hash(admissions: &[Admission]) -> u64 {
    let mut h = FNV_OFFSET;
    for a in admissions {
        fnv1a(&mut h, a.name().as_bytes());
        fnv1a(&mut h, a.origin().as_bytes());
        match a {
            Admission::Job(j) => match &j.spec {
                SpecData::Perm(p) => {
                    fnv1a(&mut h, &(p.num_vars() as u64).to_le_bytes());
                    for v in p.as_slice() {
                        fnv1a(&mut h, &v.to_le_bytes());
                    }
                }
                SpecData::Pprm(m) => {
                    fnv1a(&mut h, &(m.num_vars() as u64).to_le_bytes());
                    fnv1a(&mut h, &m.fingerprint().to_le_bytes());
                }
            },
            Admission::Error { message, .. } => fnv1a(&mut h, message.as_bytes()),
        }
    }
    h
}

/// Hash of the result-affecting batch configuration: deadline,
/// canonicalization bound, verification, fallback, and the full
/// synthesis option set. Worker count, cache size, the durable store,
/// and the per-job search thread count are deliberately excluded —
/// results are independent of them by construction, so a journal
/// written with 8 workers (or `--threads 4`, or `--store`) resumes
/// fine with 2 (or serially, or store-less).
pub fn options_fingerprint(opts: &BatchOptions) -> u64 {
    let mut h = FNV_OFFSET;
    let deadline_ms = opts.deadline.map(|d| d.as_millis() as u64);
    fnv1a(&mut h, format!("{deadline_ms:?}").as_bytes());
    fnv1a(&mut h, &(opts.canon_limit as u64).to_le_bytes());
    fnv1a(&mut h, &[opts.verify as u8, opts.fallback as u8]);
    let mut synthesis = opts.synthesis.clone();
    synthesis.threads = 0;
    fnv1a(&mut h, options_to_json(&synthesis).to_string().as_bytes());
    h
}

/// The journal's self-describing first line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// [`manifest_hash`] of the admitted job list.
    pub manifest_hash: u64,
    /// [`options_fingerprint`] of the batch configuration.
    pub options_fingerprint: u64,
    /// Number of admitted jobs (indices run `0..jobs_total`).
    pub jobs_total: u64,
}

impl JournalHeader {
    /// Header describing `admissions` run under `opts`.
    pub fn new(admissions: &[Admission], opts: &BatchOptions) -> JournalHeader {
        JournalHeader {
            manifest_hash: manifest_hash(admissions),
            options_fingerprint: options_fingerprint(opts),
            jobs_total: admissions.len() as u64,
        }
    }

    /// Serializes the header as the journal's first line.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("journal".to_string(), Json::str("rmrls-batch")),
            (
                "schema_version".to_string(),
                Json::uint(JOURNAL_SCHEMA_VERSION),
            ),
            (
                "manifest_hash".to_string(),
                Json::str(format!("{:016x}", self.manifest_hash)),
            ),
            (
                "options_fingerprint".to_string(),
                Json::str(format!("{:016x}", self.options_fingerprint)),
            ),
            ("jobs_total".to_string(), Json::uint(self.jobs_total)),
        ])
    }

    /// Parses a header object.
    ///
    /// # Errors
    ///
    /// When the object is not an `rmrls-batch` journal header, is from
    /// an unknown schema version, or has malformed fields.
    pub fn from_json(json: &Json) -> Result<JournalHeader, String> {
        if json.get("journal").and_then(Json::as_str) != Some("rmrls-batch") {
            return Err("not an rmrls-batch journal (missing tag)".to_string());
        }
        let version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("journal header has no schema_version")?;
        if version != JOURNAL_SCHEMA_VERSION {
            return Err(format!(
                "unsupported journal schema version {version} (expected {JOURNAL_SCHEMA_VERSION})"
            ));
        }
        let hex = |field: &str| -> Result<u64, String> {
            let s = json
                .get(field)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("journal header has no {field}"))?;
            u64::from_str_radix(s, 16).map_err(|_| format!("journal header {field} is not hex"))
        };
        Ok(JournalHeader {
            manifest_hash: hex("manifest_hash")?,
            options_fingerprint: hex("options_fingerprint")?,
            jobs_total: json
                .get("jobs_total")
                .and_then(Json::as_u64)
                .ok_or("journal header has no jobs_total")?,
        })
    }
}

/// Appends fsync'd records to a journal file.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates (truncating) the journal at `path` and durably writes
    /// its header line.
    ///
    /// # Errors
    ///
    /// When the file cannot be created or written.
    pub fn create(path: &str, header: &JournalHeader) -> Result<JournalWriter, String> {
        let file = File::create(path).map_err(|e| format!("cannot create journal {path}: {e}"))?;
        let mut writer = JournalWriter { file };
        writer
            .write_line(&header.to_json().to_string())
            .map_err(|e| format!("cannot write journal header to {path}: {e}"))?;
        Ok(writer)
    }

    /// Creates (truncating) a journal at `path` with a caller-supplied
    /// header line — for journals that are not batch-results journals
    /// but reuse this framing (the serve request journal writes its own
    /// self-describing header).
    ///
    /// # Errors
    ///
    /// When the file cannot be created or written.
    pub fn create_raw(path: &str, header_line: &str) -> Result<JournalWriter, String> {
        let file = File::create(path).map_err(|e| format!("cannot create journal {path}: {e}"))?;
        let mut writer = JournalWriter { file };
        writer
            .write_line(header_line)
            .map_err(|e| format!("cannot write journal header to {path}: {e}"))?;
        Ok(writer)
    }

    /// Opens an existing journal for appending, without touching its
    /// contents — the crash-recovery path, where the surviving records
    /// have already been read back and the file must keep growing from
    /// its current tail.
    ///
    /// # Errors
    ///
    /// When the file cannot be opened for append.
    pub fn open_append(path: &str) -> Result<JournalWriter, String> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {path} for append: {e}"))?;
        Ok(JournalWriter { file })
    }

    /// Durably appends one record line (the line plus `\n`, then
    /// fsync). On return the record either is fully on disk or the
    /// error says it may not be.
    ///
    /// # Errors
    ///
    /// When the write or the fsync fails.
    pub fn append(&mut self, line: &str) -> Result<(), String> {
        self.append_at(line, "engine/journal/append")
    }

    /// [`append`](JournalWriter::append) under a caller-chosen
    /// failpoint, so each journal site (batch results, serve requests)
    /// is injectable independently in the fault matrix.
    ///
    /// # Errors
    ///
    /// When the write or the fsync fails (or the failpoint fires).
    pub fn append_at(&mut self, line: &str, failpoint: &str) -> Result<(), String> {
        // Failpoint: a full disk / dying device at the worst moment.
        // Only record appends are injectable — headers are written
        // before any work starts, where failure is an ordinary error.
        rmrls_obs::fail::trigger(failpoint).map_err(|e| format!("journal append failed: {e}"))?;
        self.write_line(line)
    }

    fn write_line(&mut self, line: &str) -> Result<(), String> {
        let io = (|| -> std::io::Result<()> {
            self.file.write_all(line.as_bytes())?;
            self.file.write_all(b"\n")?;
            self.file.sync_data()
        })();
        io.map_err(|e| format!("journal append failed: {e}"))
    }
}

/// One record recovered from a journal: the verbatim JSON plus the
/// fields a resume needs for counter accounting.
#[derive(Clone, Debug)]
pub struct CompletedJob {
    /// Admission index the record belongs to.
    pub index: usize,
    /// The record, verbatim (includes the `index` field).
    pub json: Json,
    /// `solved` / `unsolved` / `error` / `panicked`.
    pub status: String,
    /// The record's `verified` field, when boolean.
    pub verified: Option<bool>,
    /// The record's `solved_by` tier name, when present.
    pub solved_by: Option<String>,
    /// The record's `stop_reason`, when present.
    pub stop_reason: Option<String>,
}

/// Everything recovered from reading a journal.
#[derive(Debug)]
pub struct ResumeData {
    /// The parsed header.
    pub header: JournalHeader,
    /// Completed records by admission index (`skipped` records and
    /// anything at or past a torn line are excluded).
    pub completed: HashMap<usize, CompletedJob>,
    /// Whether the journal ended in a torn (unparsable) line — the
    /// at-most-one record a SIGKILL can lose.
    pub torn_tail: bool,
}

/// Reads a journal file, tolerating a torn final line.
///
/// # Errors
///
/// When the file cannot be read or its header line is missing or
/// malformed — record-level damage is never an error (see the torn-tail
/// rule in the module docs).
pub fn read_journal(path: &str) -> Result<ResumeData, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read journal {path}: {e}"))?;
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| format!("journal {path} is empty"))?;
    let header_json =
        Json::parse(header_line).map_err(|e| format!("journal {path}: bad header: {e}"))?;
    let header =
        JournalHeader::from_json(&header_json).map_err(|e| format!("journal {path}: {e}"))?;
    let mut completed = HashMap::new();
    let mut torn_tail = false;
    for line in lines {
        let Some(job) = parse_record(line, header.jobs_total) else {
            torn_tail = true;
            break;
        };
        if job.status == "skipped" {
            continue;
        }
        // Last record wins: a resume-of-a-resume may legitimately
        // journal the same index twice.
        completed.insert(job.index, job);
    }
    Ok(ResumeData {
        header,
        completed,
        torn_tail,
    })
}

fn parse_record(line: &str, jobs_total: u64) -> Option<CompletedJob> {
    let json = Json::parse(line).ok()?;
    let index = json.get("index")?.as_u64()?;
    if index >= jobs_total {
        return None;
    }
    let status = json.get("status")?.as_str()?.to_string();
    let verified = json.get("verified").and_then(Json::as_bool);
    let solved_by = json
        .get("solved_by")
        .and_then(Json::as_str)
        .map(str::to_string);
    let stop_reason = json
        .get("stop_reason")
        .and_then(Json::as_str)
        .map(str::to_string);
    Some(CompletedJob {
        index: index as usize,
        json,
        status,
        verified,
        solved_by,
        stop_reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::suite_admissions;

    fn scratch(name: &str) -> String {
        let dir = std::env::temp_dir().join("rmrls-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    fn header() -> JournalHeader {
        let jobs = suite_admissions("examples").unwrap();
        JournalHeader::new(&jobs, &BatchOptions::default())
    }

    #[test]
    fn header_round_trips_through_json() {
        let h = header();
        let parsed = JournalHeader::from_json(&h.to_json()).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.jobs_total, 8);
    }

    #[test]
    fn manifest_hash_tracks_content_and_order() {
        let a = suite_admissions("examples").unwrap();
        let b = suite_admissions("examples").unwrap();
        assert_eq!(manifest_hash(&a), manifest_hash(&b), "deterministic");
        let mut reordered = suite_admissions("examples").unwrap();
        reordered.swap(0, 1);
        assert_ne!(manifest_hash(&a), manifest_hash(&reordered));
        assert_ne!(
            manifest_hash(&a),
            manifest_hash(&suite_admissions("table4").unwrap())
        );
    }

    #[test]
    fn options_fingerprint_ignores_workers_and_cache_only() {
        let base = BatchOptions::default();
        let more_workers = BatchOptions {
            workers: 12,
            cache_size: None,
            ..BatchOptions::default()
        };
        assert_eq!(
            options_fingerprint(&base),
            options_fingerprint(&more_workers),
            "workers/cache do not affect results"
        );
        let more_threads = BatchOptions {
            synthesis: base.synthesis.clone().with_threads(8),
            ..BatchOptions::default()
        };
        assert_eq!(
            options_fingerprint(&base),
            options_fingerprint(&more_threads),
            "search threads do not affect results"
        );
        let fallback = BatchOptions {
            fallback: true,
            ..BatchOptions::default()
        };
        assert_ne!(options_fingerprint(&base), options_fingerprint(&fallback));
        let deadline = BatchOptions {
            deadline: Some(std::time::Duration::from_millis(50)),
            ..BatchOptions::default()
        };
        assert_ne!(options_fingerprint(&base), options_fingerprint(&deadline));
    }

    #[test]
    fn journal_write_read_round_trip() {
        let path = scratch("round-trip.jsonl");
        let h = header();
        let mut w = JournalWriter::create(&path, &h).unwrap();
        w.append(
            r#"{"index":3,"job":"ex4","status":"solved","verified":true,"solved_by":"rmrls"}"#,
        )
        .unwrap();
        w.append(r#"{"index":0,"job":"ex1","status":"unsolved","stop_reason":"node budget"}"#)
            .unwrap();
        drop(w);
        let data = read_journal(&path).unwrap();
        assert_eq!(data.header, h);
        assert!(!data.torn_tail);
        assert_eq!(data.completed.len(), 2);
        let solved = &data.completed[&3];
        assert_eq!(solved.status, "solved");
        assert_eq!(solved.verified, Some(true));
        assert_eq!(solved.solved_by.as_deref(), Some("rmrls"));
        assert_eq!(
            data.completed[&0].stop_reason.as_deref(),
            Some("node budget")
        );
    }

    #[test]
    fn torn_final_line_is_tolerated_and_flagged() {
        let path = scratch("torn.jsonl");
        let h = header();
        let mut w = JournalWriter::create(&path, &h).unwrap();
        w.append(r#"{"index":1,"job":"ex2","status":"solved","verified":true}"#)
            .unwrap();
        drop(w);
        // Simulate a SIGKILL mid-append: a truncated record at the end.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(r#"{"index":2,"job":"ex3","sta"#);
        std::fs::write(&path, text).unwrap();
        let data = read_journal(&path).unwrap();
        assert!(data.torn_tail, "truncated tail must be flagged");
        assert_eq!(data.completed.len(), 1, "only the intact record counts");
        assert!(data.completed.contains_key(&1));
    }

    #[test]
    fn skipped_and_out_of_range_records_are_not_completed() {
        let path = scratch("skips.jsonl");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append(r#"{"index":2,"job":"ex3","status":"skipped"}"#)
            .unwrap();
        w.append(r#"{"index":99,"job":"bogus","status":"solved"}"#)
            .unwrap();
        drop(w);
        let data = read_journal(&path).unwrap();
        assert!(data.completed.is_empty(), "skipped jobs must re-run");
        // The out-of-range index reads as a torn line (it cannot belong
        // to this manifest), so everything after it is ignored too.
        assert!(data.torn_tail);
    }

    #[test]
    fn non_journal_files_are_refused() {
        let path = scratch("not-a-journal.jsonl");
        std::fs::write(&path, "{\"job\":\"x\",\"status\":\"solved\"}\n").unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(err.contains("not an rmrls-batch journal"), "{err}");

        let empty = scratch("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        assert!(read_journal(&empty).unwrap_err().contains("empty"));
    }

    #[test]
    fn future_schema_versions_are_refused() {
        let mut json = header().to_json();
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "schema_version" {
                    *v = Json::uint(JOURNAL_SCHEMA_VERSION + 1);
                }
            }
        }
        let err = JournalHeader::from_json(&json).unwrap_err();
        assert!(err.contains("unsupported journal schema version"), "{err}");
    }
}
