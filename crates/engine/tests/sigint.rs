//! Two-stage SIGINT shutdown, driven through real batch runs. The
//! signal counter is simulated (same atomic increment the handler
//! performs), so the tests cover the genuine drain/abort protocol
//! without raising process signals.
//!
//! The counter is process-global state, so the tests serialize on a
//! mutex and reset it on entry and exit.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmrls_core::SynthesisOptions;
use rmrls_engine::manifest::{Admission, BatchJob, SpecData};
use rmrls_engine::signal::{reset_sigint_count, simulate_sigint};
use rmrls_engine::{run_batch, suite_admissions, BatchOptions, JobOutcome, ShutdownHandles};
use rmrls_spec::random_permutation;

static GUARD: Mutex<()> = Mutex::new(());

struct CounterReset;
impl Drop for CounterReset {
    fn drop(&mut self) {
        reset_sigint_count();
    }
}

fn serial() -> (std::sync::MutexGuard<'static, ()>, CounterReset) {
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    reset_sigint_count();
    (g, CounterReset)
}

#[test]
fn one_sigint_drains_remaining_jobs_into_skipped_records() {
    let (_g, _r) = serial();
    simulate_sigint();
    let jobs = suite_admissions("examples").unwrap();
    let run = run_batch(&jobs, &BatchOptions::default(), &ShutdownHandles::new());
    // The signal landed before the first dequeue: every job is skipped,
    // none processed, and the run still produces a complete record set.
    assert_eq!(run.counters.jobs_skipped, 8);
    assert_eq!(run.jobs_processed(), 0);
    assert_eq!(run.records.len(), 8, "skipped jobs still get records");
    assert!(run
        .records
        .iter()
        .all(|r| matches!(r.outcome, JobOutcome::Skipped)));
    // And the JSONL stream says so, line for line.
    for line in run.results_jsonl().lines() {
        assert!(line.contains("\"status\":\"skipped\""), "{line}");
    }
}

#[test]
fn second_sigint_escalates_to_abort() {
    let (_g, _r) = serial();
    simulate_sigint();
    simulate_sigint();
    let shutdown = ShutdownHandles::new();
    shutdown.poll_signals();
    assert!(shutdown.draining());
    assert!(
        shutdown.abort.is_cancelled(),
        "two SIGINTs must cancel in-flight searches"
    );
}

#[test]
fn drain_then_second_sigint_cancels_inflight_searches() {
    let (_g, _r) = serial();
    // Stage the tokens as a worker would see them mid-run: one SIGINT
    // already propagated (drain), then the second arrives.
    let shutdown = ShutdownHandles::new();
    simulate_sigint();
    shutdown.poll_signals();
    assert!(shutdown.draining());
    assert!(!shutdown.abort.is_cancelled(), "stage one only drains");
    simulate_sigint();
    shutdown.poll_signals();
    assert!(shutdown.abort.is_cancelled(), "stage two aborts");
}

/// `count` hard jobs: random `vars`-variable permutations searched
/// exhaustively (no stop-at-first, no dive) so each occupies its worker
/// for a predictable, substantial stretch under the given node budget.
fn slow_jobs(count: usize, vars: usize, max_nodes: u64) -> (Vec<Admission>, BatchOptions) {
    let mut rng = StdRng::seed_from_u64(0x51);
    let jobs = (0..count)
        .map(|i| {
            Admission::Job(BatchJob {
                name: format!("slow{vars}v-{i}"),
                origin: "test:sigint".to_string(),
                spec: SpecData::Perm(random_permutation(vars, &mut rng)),
            })
        })
        .collect();
    let opts = BatchOptions {
        workers: 1,
        verify: false,
        synthesis: SynthesisOptions::new()
            .with_stop_at_first(false)
            .with_initial_dive(false)
            .with_max_nodes(max_nodes),
        ..BatchOptions::default()
    };
    (jobs, opts)
}

#[test]
fn mid_batch_sigint_finishes_inflight_job_and_writes_partial_report() {
    let (_g, _r) = serial();
    // Four multi-second jobs on one worker; one SIGINT lands while the
    // first is in flight. Drain semantics: the in-flight job runs to
    // completion, the rest become skipped records, and the report/JSONL
    // stream is still complete.
    let (jobs, opts) = slow_jobs(4, 5, 30_000);
    let run = std::thread::scope(|scope| {
        let batch = scope.spawn(|| run_batch(&jobs, &opts, &ShutdownHandles::new()));
        std::thread::sleep(Duration::from_millis(250));
        simulate_sigint();
        batch.join().expect("batch thread")
    });
    assert_eq!(run.records.len(), 4, "every job gets a record");
    assert_eq!(
        run.jobs_processed() + run.counters.jobs_skipped,
        4,
        "processed and skipped partition the batch"
    );
    assert!(
        run.jobs_processed() >= 1,
        "the in-flight job ran to completion"
    );
    assert!(
        run.counters.jobs_skipped >= 1,
        "jobs behind the drain were shed"
    );
    // The partial report is well-formed: one line per job, skipped ones
    // saying so explicitly.
    let jsonl = run.results_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 4);
    let skipped = lines
        .iter()
        .filter(|l| l.contains("\"status\":\"skipped\""))
        .count();
    assert_eq!(skipped as u64, run.counters.jobs_skipped);
}

#[test]
fn second_sigint_aborts_an_inflight_search_promptly() {
    let (_g, _r) = serial();
    // One job that would search for minutes (6 variables, effectively
    // unbounded node budget) on one busy worker. Both SIGINTs arrive
    // while it is in flight — nothing is ever between jobs — so only
    // the engine's signal monitor can propagate the abort. The batch
    // must return within a poll interval plus one budget poll, not
    // after the search exhausts its budget.
    let (jobs, opts) = slow_jobs(1, 6, 100_000_000);
    let started = Instant::now();
    let run = std::thread::scope(|scope| {
        let batch = scope.spawn(|| run_batch(&jobs, &opts, &ShutdownHandles::new()));
        std::thread::sleep(Duration::from_millis(200));
        simulate_sigint();
        simulate_sigint();
        batch.join().expect("batch thread")
    });
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "abort must reach the in-flight search promptly, took {:?}",
        started.elapsed()
    );
    assert_eq!(run.counters.cancelled, 1);
    assert!(matches!(
        &run.records[0].outcome,
        JobOutcome::Unsolved { stop_reason } if stop_reason == "cancelled"
    ));
}

#[test]
fn signal_free_runs_are_unaffected_by_polling() {
    let (_g, _r) = serial();
    let jobs = suite_admissions("examples").unwrap();
    let run = run_batch(&jobs, &BatchOptions::default(), &ShutdownHandles::new());
    assert_eq!(run.counters.jobs_skipped, 0);
    assert_eq!(run.counters.jobs_completed, 8);
}
