//! Property tests hardening the manifest loader: arbitrary text —
//! garbage lines, truncated documents, duplicated and shuffled entries
//! — always loads into a list of [`Admission`] records (jobs or
//! per-line errors) and never panics or aborts the batch.

use std::path::Path;

use proptest::prelude::*;
use rmrls_engine::{parse_manifest, Admission};

fn parse(text: &str) -> Vec<Admission> {
    parse_manifest(text, "prop.manifest", Path::new("."))
}

/// Every admission carries a non-empty name and a `file:line` origin —
/// the invariant downstream reporting relies on.
fn well_formed(admissions: &[Admission]) -> Result<(), TestCaseError> {
    for a in admissions {
        prop_assert!(!a.name().is_empty(), "empty name: {a:?}");
        prop_assert!(
            a.origin().starts_with("prop.manifest:"),
            "origin {} lacks file:line",
            a.origin()
        );
    }
    Ok(())
}

proptest! {
    /// Printable garbage, with injected newlines, loads totally.
    #[test]
    fn random_text_loads_totally(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let text: String = bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| if i % 9 == 0 { '\n' } else { (b % 96 + 32) as char })
            .collect();
        well_formed(&parse(&text))?;
    }

    /// Truncating a valid manifest at any byte still loads totally.
    #[test]
    fn truncations_load_totally(cut in 0usize..200) {
        let doc = "# jobs\nperm 1,0,7,2,3,4,5,6\nbench hwb4\nsuite examples\nfrobnicate x\nperm 0,0\n";
        let cut = cut.min(doc.len());
        if doc.is_char_boundary(cut) {
            well_formed(&parse(&doc[..cut]))?;
        }
    }

    /// Duplicated and reordered lines: still total, and a duplicated
    /// job line simply admits twice.
    #[test]
    fn duplicated_lines_admit_twice(pick in 0usize..4) {
        let lines = ["perm 1,0,7,2,3,4,5,6", "bench hwb4", "nonsense entry", "table missing.tt"];
        let mut doc: Vec<&str> = lines.to_vec();
        doc.insert(pick, lines[pick]);
        let a = parse(&doc.join("\n"));
        prop_assert_eq!(a.len(), lines.len() + 1);
        well_formed(&a)?;
        // The duplicate pair resolves identically (same name, same kind
        // of admission) — only the line numbers differ.
        let dup_is_job = matches!(a[pick], Admission::Job(_));
        prop_assert_eq!(matches!(a[pick + 1], Admission::Job(_)), dup_is_job);
        prop_assert_eq!(a[pick].name(), a[pick + 1].name());
    }
}
