//! Integration tests for the batch flight recorder: per-job trace
//! dumps, anomaly dumps on fallback escalation, profile aggregation in
//! the batch report, and the no-perturbation guarantee (tracing must
//! not change results).

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmrls_core::SynthesisOptions;
use rmrls_engine::manifest::{Admission, BatchJob, SpecData};
use rmrls_engine::{run_batch, BatchOptions, ShutdownHandles};
use rmrls_obs::{Json, RecorderSnapshot, TraceKind};

fn workload(count: usize, vars: usize, seed: u64) -> Vec<Admission> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            Admission::Job(BatchJob {
                name: format!("job{i}"),
                origin: "test".to_string(),
                spec: SpecData::Perm(rmrls_spec::random_permutation(vars, &mut rng)),
            })
        })
        .collect()
}

/// A fresh per-test trace directory under the system temp dir.
fn trace_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmrls-trace-test-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_dump(path: &PathBuf) -> (Json, RecorderSnapshot) {
    let text = std::fs::read_to_string(path).unwrap();
    let json = Json::parse(&text).expect("dump is valid JSON");
    let snapshot = RecorderSnapshot::from_json(&json).expect("dump parses as a trace snapshot");
    (json, snapshot)
}

#[test]
fn trace_dir_writes_one_parseable_dump_per_job() {
    let dir = trace_dir("per-job");
    let jobs = workload(3, 3, 11);
    let opts = BatchOptions {
        cache_size: Some(16),
        trace_dir: Some(dir.to_str().unwrap().to_string()),
        ..BatchOptions::default()
    };
    let run = run_batch(&jobs, &opts, &ShutdownHandles::new());
    assert_eq!(run.counters.jobs_completed, 3);
    assert_eq!(run.counters.trace_write_errors, 0);
    for (i, record) in run.records.iter().enumerate() {
        let path = dir.join(format!("{i:04}-{}.trace.json", record.name));
        let (json, snapshot) = read_dump(&path);
        // The dump names its job without relying on the filename.
        assert_eq!(
            json.get("job").unwrap().as_str(),
            Some(record.name.as_str())
        );
        // Every job's trace brackets the engine "job" phase around the
        // search's own "search" phase.
        let phases: Vec<&str> = snapshot
            .records
            .iter()
            .filter_map(|r| match &r.kind {
                TraceKind::PhaseEnter { phase } => Some(phase.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(phases.first(), Some(&"job"), "{}", record.name);
        assert!(phases.contains(&"search"), "{}", record.name);
        // A cache-enabled batch records every lookup.
        assert!(snapshot
            .records
            .iter()
            .any(|r| matches!(r.kind, TraceKind::CacheLookup { .. })));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fallback_escalation_produces_an_anomaly_dump_naming_the_trigger() {
    let dir = trace_dir("escalation");
    // A starved tier-1 budget forces the ladder to descend.
    let jobs = workload(2, 5, 61);
    let opts = BatchOptions {
        cache_size: None,
        fallback: true,
        trace_dir: Some(dir.to_str().unwrap().to_string()),
        synthesis: SynthesisOptions::new()
            .with_initial_dive(false)
            .with_max_nodes(20),
        ..BatchOptions::default()
    };
    let run = run_batch(&jobs, &opts, &ShutdownHandles::new());
    assert_eq!(run.counters.jobs_unsolved, 0, "fallback is total");
    assert!(
        run.counters.anomaly_dumps > 0,
        "escalated jobs must dump: {:?}",
        run.counters
    );
    let mut anomaly_files = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if !path.to_str().unwrap().ends_with(".anomaly.json") {
            continue;
        }
        anomaly_files += 1;
        let (json, snapshot) = read_dump(&path);
        assert_eq!(
            json.get("trigger").unwrap().as_str(),
            Some("tier_escalation")
        );
        assert!(snapshot.anomalies > 0);
        // The trailing records name the failing site.
        assert!(snapshot.records.iter().any(|r| matches!(
            &r.kind,
            TraceKind::Anomaly { kind, site }
                if kind == "tier_escalation" && site == "engine/ladder"
        )));
        assert!(snapshot
            .records
            .iter()
            .any(|r| matches!(&r.kind, TraceKind::TierEscalate { from, .. } if from == "rmrls")));
    }
    assert_eq!(anomaly_files as u64, run.counters.anomaly_dumps);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_profile_aggregates_into_the_report_only_when_enabled() {
    let jobs = workload(3, 3, 17);
    let base = BatchOptions {
        cache_size: None,
        ..BatchOptions::default()
    };
    let off = run_batch(&jobs, &base, &ShutdownHandles::new());
    assert!(off.profile.is_empty(), "no profile unless opted in");
    assert_eq!(
        off.report_json(&base).get("profile"),
        Some(&Json::Null),
        "profile is null, not an empty array, when off"
    );

    let profiled = BatchOptions {
        synthesis: base.synthesis.clone().with_profile(true),
        ..base.clone()
    };
    let on = run_batch(&jobs, &profiled, &ShutdownHandles::new());
    assert!(!on.profile.is_empty());
    // Search phases and engine phases land in the same merged table.
    for phase in ["scoring", "materialize", "dedup", "verify"] {
        assert!(
            on.profile.seconds(phase).is_some(),
            "missing phase {phase}: {:?}",
            on.profile
        );
    }
    let report = on.report_json(&profiled);
    let parsed = Json::parse(&report.to_string()).unwrap();
    assert!(parsed.get("profile").unwrap().as_arr().is_some());
    // Per-record profiles stay out of the deterministic JSONL stream.
    for line in on.results_jsonl().lines() {
        assert!(Json::parse(line).unwrap().get("profile").is_none());
    }
}

#[test]
fn tracing_does_not_change_results() {
    let dir = trace_dir("no-perturb");
    let jobs = workload(4, 4, 29);
    let plain = BatchOptions {
        cache_size: Some(16),
        ..BatchOptions::default()
    };
    let traced = BatchOptions {
        trace_dir: Some(dir.to_str().unwrap().to_string()),
        synthesis: plain.synthesis.clone().with_profile(true),
        ..plain.clone()
    };
    let reference = run_batch(&jobs, &plain, &ShutdownHandles::new());
    let observed = run_batch(&jobs, &traced, &ShutdownHandles::new());
    assert_eq!(
        observed.results_jsonl(),
        reference.results_jsonl(),
        "recorder and profiler must not perturb the search"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_job_names_become_safe_filenames() {
    let dir = trace_dir("hostile-names");
    let jobs = vec![Admission::Job(BatchJob {
        name: "../../etc/passwd x".to_string(),
        origin: "test".to_string(),
        spec: SpecData::Perm(rmrls_spec::Permutation::from_vec(vec![1, 0, 3, 2]).unwrap()),
    })];
    let opts = BatchOptions {
        cache_size: None,
        trace_dir: Some(dir.to_str().unwrap().to_string()),
        ..BatchOptions::default()
    };
    let run = run_batch(&jobs, &opts, &ShutdownHandles::new());
    assert_eq!(run.counters.trace_write_errors, 0);
    let entries: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(entries.len(), 1, "dump stays inside the trace dir");
    assert_eq!(entries[0], "0000-.._.._etc_passwd_x.trace.json");
    let _ = std::fs::remove_dir_all(&dir);
}
