//! Fault-injection integration: every fault class the `failpoints`
//! facility can inject is driven through a real batch run and must be
//! contained — a clean exit, correct tallies, no aborts.
//!
//! The failpoint registry is process-global, so these tests serialize
//! on a mutex and run every batch with one worker for deterministic
//! hit ordering.

#![cfg(feature = "failpoints")]

use std::sync::Mutex;

use rmrls_engine::{
    fsck, read_journal, run_batch, run_batch_resumable, suite_admissions, BatchOptions, JobOutcome,
    JournalHeader, JournalWriter, SharedStore, ShutdownHandles,
};
use rmrls_obs::{fail, Json, RecorderSnapshot, TraceKind};

static GUARD: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn options() -> BatchOptions {
    BatchOptions::default()
}

fn scratch(name: &str) -> String {
    let dir = std::env::temp_dir().join("rmrls-faults-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

#[test]
fn injected_dispatch_error_becomes_an_error_record() {
    let _g = serial();
    fail::configure("engine/worker/dispatch=err@2").unwrap();
    let jobs = suite_admissions("examples").unwrap();
    let run = run_batch(&jobs, &options(), &ShutdownHandles::new());
    fail::clear();
    assert_eq!(run.counters.jobs_errored, 1);
    assert_eq!(run.counters.jobs_completed, 7);
    assert_eq!(run.counters.panics_contained, 0);
    let errored: Vec<_> = run
        .records
        .iter()
        .filter_map(|r| match &r.outcome {
            JobOutcome::Error { message } => Some(message.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(errored.len(), 1);
    assert!(
        errored[0].contains("injected fault at engine/worker/dispatch"),
        "{}",
        errored[0]
    );
}

#[test]
fn injected_dispatch_panic_is_contained() {
    let _g = serial();
    fail::configure("engine/worker/dispatch=panic@3").unwrap();
    let jobs = suite_admissions("examples").unwrap();
    let run = run_batch(&jobs, &options(), &ShutdownHandles::new());
    fail::clear();
    assert_eq!(run.counters.panics_contained, 1, "panic caught, run alive");
    assert_eq!(run.counters.jobs_completed, 7);
    let panicked: Vec<_> = run
        .records
        .iter()
        .filter_map(|r| match &r.outcome {
            JobOutcome::Panicked { message } => Some(message.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(panicked.len(), 1);
    assert!(
        panicked[0].contains("engine/worker/dispatch"),
        "{}",
        panicked[0]
    );
}

#[test]
fn injected_cache_lookup_failure_degrades_to_a_miss() {
    let _g = serial();
    let jobs: Vec<_> = suite_admissions("examples")
        .unwrap()
        .into_iter()
        .take(1)
        .collect();
    // Same job twice: without faults the second run of the pair would
    // hit; with the lookup failpoint armed it must quietly re-solve.
    let doubled: Vec<_> = jobs.iter().cloned().chain(jobs.iter().cloned()).collect();
    fail::configure("engine/cache/lookup=err").unwrap();
    let run = run_batch(&doubled, &options(), &ShutdownHandles::new());
    fail::clear();
    assert_eq!(run.counters.jobs_completed, 2);
    assert_eq!(run.counters.cache_hits, 0, "lookups failed into misses");
    assert_eq!(run.counters.verified_ok, 2, "both jobs still verify");
    assert_eq!(run.counters.jobs_errored, 0);
}

#[test]
fn injected_cache_insert_failure_only_costs_future_hits() {
    let _g = serial();
    let jobs: Vec<_> = suite_admissions("examples")
        .unwrap()
        .into_iter()
        .take(1)
        .collect();
    let doubled: Vec<_> = jobs.iter().cloned().chain(jobs.iter().cloned()).collect();
    fail::configure("engine/cache/insert=err").unwrap();
    let run = run_batch(&doubled, &options(), &ShutdownHandles::new());
    fail::clear();
    assert_eq!(run.counters.jobs_completed, 2);
    assert_eq!(run.counters.cache_hits, 0, "nothing was ever inserted");
    assert_eq!(run.counters.verified_ok, 2);
}

#[test]
fn injected_verifier_failure_is_an_error_not_a_false_solve() {
    let _g = serial();
    fail::configure("engine/worker/pre-verify=err@1").unwrap();
    let jobs = suite_admissions("examples").unwrap();
    let run = run_batch(&jobs, &options(), &ShutdownHandles::new());
    fail::clear();
    assert_eq!(run.counters.jobs_errored, 1);
    assert_eq!(run.counters.jobs_completed, 7);
    assert_eq!(run.counters.verify_failures, 0, "no false verdicts");
    assert_eq!(run.counters.verified_ok, 7);
}

#[test]
fn injected_journal_append_failure_is_tallied_not_fatal() {
    let _g = serial();
    let jobs = suite_admissions("examples").unwrap();
    let opts = options();
    let header = JournalHeader::new(&jobs, &opts);
    let path = scratch("append-fault.jsonl");
    let writer = Mutex::new(JournalWriter::create(&path, &header).unwrap());
    fail::configure("engine/journal/append=err@2").unwrap();
    let run = run_batch_resumable(&jobs, &opts, &ShutdownHandles::new(), Some(&writer), None);
    fail::clear();
    drop(writer);
    assert_eq!(run.counters.journal_append_errors, 1);
    assert_eq!(run.counters.jobs_completed, 8, "the batch itself is fine");
    // The journal is short one record but still well-formed and
    // resumable: exactly the 7 appended records come back.
    let data = read_journal(&path).unwrap();
    assert!(!data.torn_tail);
    assert_eq!(data.completed.len(), 7);
}

#[test]
fn injected_budget_poll_cancellation_stops_the_search_cleanly() {
    let _g = serial();
    fail::configure("core/search/budget-poll=err@1").unwrap();
    let jobs = suite_admissions("examples").unwrap();
    let run = run_batch(&jobs, &options(), &ShutdownHandles::new());
    fail::clear();
    // The poisoned poll cancels exactly one search; every other job is
    // untouched and the run exits cleanly.
    assert_eq!(run.counters.panics_contained, 0);
    assert_eq!(
        run.counters.jobs_completed + run.counters.jobs_unsolved,
        8,
        "every job is accounted for"
    );
    assert_eq!(run.counters.jobs_unsolved, run.counters.cancelled);
    assert!(run.counters.jobs_unsolved <= 1);
}

#[test]
fn injected_delay_slows_but_does_not_change_results() {
    let _g = serial();
    let jobs = suite_admissions("examples").unwrap();
    let reference = run_batch(&jobs, &options(), &ShutdownHandles::new());
    fail::configure("engine/worker/pre-verify=delay:5").unwrap();
    let run = run_batch(&jobs, &options(), &ShutdownHandles::new());
    fail::clear();
    assert_eq!(run.results_jsonl(), reference.results_jsonl());
}

/// Parses every `.anomaly.json` in `dir` and returns true when any of
/// them carries an anomaly record matching `kind` at `site`.
fn any_dump_names(dir: &std::path::Path, kind: &str, site: &str) -> bool {
    std::fs::read_dir(dir).unwrap().any(|entry| {
        let path = entry.unwrap().path();
        if !path.to_str().unwrap().ends_with(".anomaly.json") {
            return false;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let json = Json::parse(&text).expect("anomaly dump is valid JSON");
        let snapshot = RecorderSnapshot::from_json(&json).expect("dump parses");
        snapshot.records.iter().any(|r| {
            matches!(&r.kind, TraceKind::Anomaly { kind: k, site: s } if k == kind && s == site)
        })
    })
}

#[test]
fn every_fault_class_produces_an_anomaly_dump_naming_the_site() {
    let _g = serial();
    // (failpoint config, expected anomaly kind, expected failing site).
    // The panic class is attributed to the containment site — the
    // worker's catch_unwind — because the panic unwound past the
    // injection point before anything could record it.
    let matrix = [
        (
            "engine/worker/dispatch=err@2",
            "injected_fault",
            "engine/worker/dispatch",
        ),
        (
            "engine/worker/pre-verify=err@1",
            "injected_fault",
            "engine/worker/pre-verify",
        ),
        (
            "engine/worker/dispatch=panic@3",
            "panic",
            "engine/worker/job",
        ),
        (
            "core/search/budget-poll=err@1",
            "cancelled",
            "core/search/budget-poll",
        ),
    ];
    for (config, kind, site) in matrix {
        let dir = std::env::temp_dir().join(format!("rmrls-fault-dump-{}", kind.replace('/', "_")));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        fail::configure(config).unwrap();
        let jobs = suite_admissions("examples").unwrap();
        let opts = BatchOptions {
            trace_dir: Some(dir.to_str().unwrap().to_string()),
            ..options()
        };
        let run = run_batch(&jobs, &opts, &ShutdownHandles::new());
        fail::clear();
        assert!(
            run.counters.anomaly_dumps >= 1,
            "{config}: fault left no anomaly dump ({:?})",
            run.counters
        );
        assert_eq!(run.counters.trace_write_errors, 0, "{config}");
        assert!(
            any_dump_names(&dir, kind, site),
            "{config}: no dump records {kind}@{site}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn journal_append_fault_lands_in_the_anomaly_dump() {
    let _g = serial();
    let dir = std::env::temp_dir().join("rmrls-fault-dump-journal");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = suite_admissions("examples").unwrap();
    let opts = BatchOptions {
        trace_dir: Some(dir.to_str().unwrap().to_string()),
        ..options()
    };
    let header = JournalHeader::new(&jobs, &opts);
    let path = scratch("append-fault-dump.jsonl");
    let writer = Mutex::new(JournalWriter::create(&path, &header).unwrap());
    fail::configure("engine/journal/append=err@2").unwrap();
    let run = run_batch_resumable(&jobs, &opts, &ShutdownHandles::new(), Some(&writer), None);
    fail::clear();
    drop(writer);
    assert_eq!(run.counters.journal_append_errors, 1);
    assert!(run.counters.anomaly_dumps >= 1);
    assert!(
        any_dump_names(&dir, "journal_append_failed", "engine/journal/append"),
        "append fault must surface in the job's anomaly dump"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_task_fault_on_search_worker_degrades_to_live_expansion() {
    let _g = serial();
    // The failpoint sits inside the speculative search workers (a
    // non-main thread of each job's parallel search). An injected error
    // there only loses one precomputed result: the commit thread
    // expands that node live and the batch output stays byte-identical
    // to an unfaulted run at the same thread count.
    let jobs = suite_admissions("examples").unwrap();
    let mut opts = options();
    opts.synthesis = opts.synthesis.clone().with_threads(2);
    let reference = run_batch(&jobs, &opts, &ShutdownHandles::new());
    fail::configure("core/search/worker-task=err@3").unwrap();
    let run = run_batch(&jobs, &opts, &ShutdownHandles::new());
    fail::clear();
    assert_eq!(run.results_jsonl(), reference.results_jsonl());
    assert_eq!(run.counters.panics_contained, 0);
    assert_eq!(run.counters.jobs_completed, 8, "no job may be lost");
}

#[test]
fn worker_task_panic_on_search_worker_is_contained_to_the_job() {
    let _g = serial();
    // A panic on a search worker is re-raised on the job's commit
    // thread ("search worker panicked: ...") and contained by the batch
    // engine like any other job panic; the pool shuts down cleanly and
    // the remaining jobs are untouched.
    fail::configure("core/search/worker-task=panic@2").unwrap();
    let jobs = suite_admissions("examples").unwrap();
    let mut opts = options();
    opts.synthesis = opts.synthesis.clone().with_threads(2);
    let run = run_batch(&jobs, &opts, &ShutdownHandles::new());
    fail::clear();
    assert_eq!(run.counters.panics_contained, 1);
    assert_eq!(run.counters.jobs_completed, 7);
    let panicked: Vec<_> = run
        .records
        .iter()
        .filter_map(|r| match &r.outcome {
            JobOutcome::Panicked { message } => Some(message.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(panicked.len(), 1);
    assert!(
        panicked[0].contains("search worker panicked"),
        "{}",
        panicked[0]
    );
}

#[test]
fn budget_poll_fault_is_deterministic_across_thread_counts() {
    let _g = serial();
    // Deadline/cancellation polling stays on the commit thread, so an
    // injected budget-poll failure cancels the same search at the same
    // point regardless of how many speculation workers are attached.
    let jobs = suite_admissions("examples").unwrap();
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 4] {
        let mut opts = options();
        opts.synthesis = opts.synthesis.clone().with_threads(threads);
        fail::configure("core/search/budget-poll=err@1").unwrap();
        let run = run_batch(&jobs, &opts, &ShutdownHandles::new());
        fail::clear();
        assert_eq!(run.counters.panics_contained, 0, "threads={threads}");
        assert_eq!(run.counters.jobs_unsolved, run.counters.cancelled);
        let jsonl = run.results_jsonl();
        match &reference {
            None => reference = Some(jsonl),
            Some(r) => assert_eq!(
                &jsonl, r,
                "injected cancellation must not depend on threads={threads}"
            ),
        }
    }
}

#[test]
fn injected_store_append_failure_is_tallied_rolled_back_and_dumped() {
    let _g = serial();
    let path = scratch("store-append-err.store");
    let _ = std::fs::remove_file(&path);
    let dir = std::env::temp_dir().join("rmrls-fault-dump-store");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = suite_admissions("examples").unwrap();
    let mut opts = BatchOptions {
        trace_dir: Some(dir.to_str().unwrap().to_string()),
        ..options()
    };
    opts.store = Some(SharedStore::open(&path).unwrap());
    fail::configure("engine/store/append=err@2").unwrap();
    let run = run_batch(&jobs, &opts, &ShutdownHandles::new());
    fail::clear();
    drop(opts);
    // The store merely under-remembers: every job completes and
    // verifies, one append is tallied as an error and surfaced in the
    // job's anomaly dump.
    assert_eq!(run.counters.jobs_completed, 8);
    assert_eq!(run.counters.verify_failures, 0);
    assert_eq!(run.counters.store_append_errors, 1);
    assert!(run.counters.store_inserts >= 1);
    assert!(
        any_dump_names(&dir, "store_append_failed", "engine/store/append"),
        "append fault must surface in the job's anomaly dump"
    );
    // The failed append was rolled back, leaving a structurally clean
    // file holding exactly the successful inserts.
    let report = fsck(&path).unwrap();
    assert!(report.clean(), "{report:?}");
    assert_eq!(report.valid_records, run.counters.store_inserts);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_store_load_failure_degrades_to_no_store() {
    let _g = serial();
    let path = scratch("store-load-err.store");
    let _ = std::fs::remove_file(&path);
    fail::configure("engine/store/load=err").unwrap();
    let opened = SharedStore::open(&path);
    fail::clear();
    let e = opened.expect_err("injected load fault must fail the open");
    assert!(e.contains("engine/store/load"), "{e}");
    // The caller (the CLI) answers a failed open by running store-less;
    // the same batch without a store is unaffected.
    let jobs = suite_admissions("examples").unwrap();
    let run = run_batch(&jobs, &options(), &ShutdownHandles::new());
    assert_eq!(run.counters.jobs_completed, 8);
    assert_eq!(run.counters.verify_failures, 0);
}

#[test]
fn injected_compact_failure_leaves_the_file_untouched() {
    let _g = serial();
    let path = scratch("store-compact-err.store");
    let _ = std::fs::remove_file(&path);
    let jobs = suite_admissions("examples").unwrap();
    let mut opts = options();
    opts.store = Some(SharedStore::open(&path).unwrap());
    let run = run_batch(&jobs, &opts, &ShutdownHandles::new());
    assert!(run.counters.store_inserts >= 1);
    let before = std::fs::read(&path).unwrap();

    let shared = opts.store.take().unwrap();
    fail::configure("engine/store/compact=err").unwrap();
    let compacted = shared.lock().compact();
    fail::clear();
    let e = compacted.expect_err("injected compact fault must fail the compact");
    assert!(e.contains("engine/store/compact"), "{e}");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "a failed compact must not modify the store"
    );
    // And the store is still fully usable afterwards.
    assert!(fsck(&path).unwrap().clean());
    drop(shared);
    let reopened = SharedStore::open(&path).unwrap();
    assert_eq!(reopened.len() as u64, run.counters.store_inserts);
}

#[test]
fn a_crash_mid_append_truncates_cleanly_and_the_rerun_is_byte_identical() {
    let _g = serial();
    // The crash-safety acceptance path, end to end: a panic injected
    // between the two halves of a frame write leaves exactly the torn
    // tail a SIGKILL would; reopening truncates it; the rerun re-solves
    // the one lost job and serves the rest from the store,
    // byte-identical to a run that never involved a store.
    let jobs = suite_admissions("examples").unwrap();
    let reference = run_batch(&jobs, &options(), &ShutdownHandles::new());

    // Cold run, counting the appends so the panic can be aimed at the
    // LAST one (the torn tail must stay at end of file: a later append
    // from the same stale handle would paper over it).
    let path = scratch("store-crash.store");
    let _ = std::fs::remove_file(&path);
    let mut opts = options();
    opts.store = Some(SharedStore::open(&path).unwrap());
    let cold = run_batch(&jobs, &opts, &ShutdownHandles::new());
    let inserts = cold.counters.store_inserts;
    assert!(inserts >= 2, "need at least two unique canonicals");
    assert_eq!(cold.results_jsonl(), reference.results_jsonl());

    let crash_path = scratch("store-crash-torn.store");
    let _ = std::fs::remove_file(&crash_path);
    let mut opts = options();
    opts.store = Some(SharedStore::open(&crash_path).unwrap());
    fail::configure(&format!("engine/store/append=panic@{inserts}")).unwrap();
    let crashed = run_batch(&jobs, &opts, &ShutdownHandles::new());
    fail::clear();
    drop(opts);
    assert_eq!(crashed.counters.panics_contained, 1, "crash is contained");

    // fsck (read-only) sees the torn tail and the intact prefix.
    let report = fsck(&crash_path).unwrap();
    assert!(!report.clean(), "{report:?}");
    assert!(report.torn_tail_bytes > 0, "{report:?}");
    assert!(report.quarantined.is_empty(), "a tear is not corruption");
    assert_eq!(report.valid_records, inserts - 1);

    // Reopen: the tail is physically truncated, every surviving record
    // re-verified; nothing corrupt can reach the cache.
    let store = SharedStore::open(&crash_path).unwrap();
    let stats = store.stats();
    assert!(stats.torn_bytes_truncated > 0, "{stats:?}");
    assert_eq!(stats.entries, inserts - 1);
    assert_eq!(stats.verify_rejected, 0);

    // Rerun against the recovered store: byte-identical results, the
    // survivors served from the store, the lost circuit re-solved and
    // re-inserted.
    let mut opts = options();
    opts.store = Some(store);
    let rerun = run_batch(&jobs, &opts, &ShutdownHandles::new());
    assert_eq!(rerun.results_jsonl(), reference.results_jsonl());
    assert!(
        rerun.counters.store_hits >= inserts - 1,
        "{:?}",
        rerun.counters
    );
    assert_eq!(rerun.counters.store_inserts, 1, "the torn record re-solves");
    assert_eq!(rerun.counters.verify_failures, 0);
    assert!(fsck(&crash_path).unwrap().clean());
}

#[test]
fn env_configuration_round_trips() {
    let _g = serial();
    // `configure_from_env` with the variable unset clears the registry.
    std::env::remove_var("RMRLS_FAILPOINTS");
    fail::configure("engine/worker/dispatch=err").unwrap();
    fail::configure_from_env().unwrap();
    let jobs = suite_admissions("examples").unwrap();
    let run = run_batch(&jobs, &options(), &ShutdownHandles::new());
    assert_eq!(run.counters.jobs_errored, 0, "env cleared the failpoint");
}
