//! Checkpoint/resume integration: the write-ahead journal plus
//! `run_batch_resumable`, including the simulated-SIGKILL path with a
//! torn final record.

use std::sync::Mutex;

use rmrls_engine::{
    read_journal, run_batch_resumable, suite_admissions, BatchOptions, JournalHeader,
    JournalWriter, ShutdownHandles,
};

fn scratch(name: &str) -> String {
    let dir = std::env::temp_dir().join("rmrls-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

#[test]
fn journaled_batch_records_every_job() {
    let jobs = suite_admissions("examples").unwrap();
    let opts = BatchOptions::default();
    let header = JournalHeader::new(&jobs, &opts);
    let path = scratch("full.jsonl");
    let writer = Mutex::new(JournalWriter::create(&path, &header).unwrap());
    let run = run_batch_resumable(&jobs, &opts, &ShutdownHandles::new(), Some(&writer), None);
    drop(writer);
    assert_eq!(run.counters.jobs_completed, 8);
    assert_eq!(run.counters.journal_append_errors, 0);
    let data = read_journal(&path).unwrap();
    assert_eq!(data.header, header);
    assert!(!data.torn_tail);
    assert_eq!(data.completed.len(), 8, "one journal record per job");
    for i in 0..8 {
        assert_eq!(data.completed[&i].status, "solved");
    }
}

#[test]
fn resume_after_simulated_sigkill_reruns_only_the_remainder() {
    let jobs = suite_admissions("examples").unwrap();
    let opts = BatchOptions::default();
    let header = JournalHeader::new(&jobs, &opts);

    // Reference: an uninterrupted journaled run.
    let full_path = scratch("reference.jsonl");
    let writer = Mutex::new(JournalWriter::create(&full_path, &header).unwrap());
    let reference = run_batch_resumable(&jobs, &opts, &ShutdownHandles::new(), Some(&writer), None);
    drop(writer);

    // Simulate a SIGKILL mid-append: keep the header and the first
    // three records, then half of the fourth record's bytes.
    let text = std::fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + 8, "header plus one record per job");
    let mut torn = lines[..4].join("\n");
    torn.push('\n');
    torn.push_str(&lines[4][..lines[4].len() / 2]);
    let partial_path = scratch("partial.jsonl");
    std::fs::write(&partial_path, &torn).unwrap();

    // Recover: exactly the three intact records come back.
    let data = read_journal(&partial_path).unwrap();
    assert_eq!(data.header, header, "hashes survive the crash");
    assert!(data.torn_tail, "the half-written record is detected");
    assert_eq!(data.completed.len(), 3, "SIGKILL lost at most one job");

    // Resume into a fresh journal.
    let resumed_path = scratch("resumed.jsonl");
    let writer = Mutex::new(JournalWriter::create(&resumed_path, &header).unwrap());
    let resumed = run_batch_resumable(
        &jobs,
        &opts,
        &ShutdownHandles::new(),
        Some(&writer),
        Some(&data.completed),
    );
    drop(writer);

    assert_eq!(resumed.counters.jobs_resumed, 3);
    assert_eq!(
        resumed.counters.jobs_completed, reference.counters.jobs_completed,
        "aggregate counters cover resumed and re-run jobs alike"
    );
    assert_eq!(resumed.counters.verified_ok, reference.counters.verified_ok);
    assert_eq!(
        resumed.results_jsonl(),
        reference.results_jsonl(),
        "a resumed batch's results stream is byte-identical"
    );
    // The new journal holds only the re-run jobs — proof the resumed
    // three were skipped, not re-synthesized.
    let rerun = read_journal(&resumed_path).unwrap();
    assert_eq!(rerun.completed.len(), 8 - 3);
    for i in 0..3 {
        assert!(
            !rerun.completed.contains_key(&i),
            "job {i} must not have re-run"
        );
    }
}

#[test]
fn resumed_records_serialize_without_index_but_journal_with() {
    let jobs = suite_admissions("examples").unwrap();
    let opts = BatchOptions::default();
    let header = JournalHeader::new(&jobs, &opts);
    let path = scratch("roundtrip.jsonl");
    let writer = Mutex::new(JournalWriter::create(&path, &header).unwrap());
    let run = run_batch_resumable(&jobs, &opts, &ShutdownHandles::new(), Some(&writer), None);
    drop(writer);
    let data = read_journal(&path).unwrap();
    let resumed = run_batch_resumable(
        &jobs,
        &opts,
        &ShutdownHandles::new(),
        None,
        Some(&data.completed),
    );
    assert_eq!(resumed.counters.jobs_resumed, 8);
    assert_eq!(resumed.results_jsonl(), run.results_jsonl());
    for (i, record) in resumed.records.iter().enumerate() {
        let indexed = record.to_json_indexed(i);
        assert_eq!(
            indexed.get("index").unwrap().as_u64(),
            Some(i as u64),
            "journal form keeps the index"
        );
        assert!(
            record.to_json().get("index").is_none(),
            "results form strips the index"
        );
    }
}
