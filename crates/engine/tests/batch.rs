//! Integration tests for the batch engine: determinism across worker
//! counts and cache settings, cache-hit equivalence, corrupt-manifest
//! flow, panic containment, and shutdown semantics.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmrls_circuit::check_equivalence;
use rmrls_core::SynthesisOptions;
use rmrls_engine::canon::conjugate_table;
use rmrls_engine::manifest::{Admission, BatchJob, SpecData};
use rmrls_engine::{run_batch, BatchOptions, JobOutcome, ShutdownHandles};
use rmrls_obs::Json;
use rmrls_pprm::MultiPprm;
use rmrls_spec::Permutation;

/// A relabeling-heavy workload: `bases` random 3-variable permutations,
/// each also admitted under three nontrivial wire relabelings.
fn relabeling_workload(bases: usize, seed: u64) -> Vec<Admission> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigmas: [[u8; 3]; 4] = [[0, 1, 2], [1, 0, 2], [2, 1, 0], [1, 2, 0]];
    let mut jobs = Vec::new();
    for b in 0..bases {
        let p = rmrls_spec::random_permutation(3, &mut rng);
        for (s, sigma) in sigmas.iter().enumerate() {
            let table = conjugate_table(p.as_slice(), sigma);
            jobs.push(Admission::Job(BatchJob {
                name: format!("base{b}-relabel{s}"),
                origin: "test".to_string(),
                spec: SpecData::Perm(Permutation::from_vec(table).unwrap()),
            }));
        }
    }
    jobs
}

fn opts(workers: usize, cache: Option<usize>) -> BatchOptions {
    BatchOptions {
        workers,
        cache_size: cache,
        ..BatchOptions::default()
    }
}

#[test]
fn results_are_byte_identical_across_workers_and_cache() {
    let jobs = relabeling_workload(6, 42);
    let reference = run_batch(&jobs, &opts(1, None), &ShutdownHandles::new()).results_jsonl();
    for (workers, cache) in [(1, Some(64)), (4, None), (8, Some(64)), (8, None)] {
        let run = run_batch(&jobs, &opts(workers, cache), &ShutdownHandles::new());
        assert_eq!(
            run.results_jsonl(),
            reference,
            "results must not depend on workers={workers} cache={cache:?}"
        );
        assert_eq!(run.counters.panics_contained, 0);
        assert_eq!(run.counters.verify_failures, 0);
    }
}

#[test]
fn relabeling_workload_hits_the_cache_hard() {
    // 6 bases x 4 labelings share 6 canonical forms: with one worker,
    // exactly 6 misses and 18 hits (75% >= the 50% target).
    let jobs = relabeling_workload(6, 42);
    let run = run_batch(&jobs, &opts(1, Some(64)), &ShutdownHandles::new());
    assert_eq!(run.counters.cache_misses, 6);
    assert_eq!(run.counters.cache_hits, 18);
    assert!(run.counters.cache_hit_rate().unwrap() >= 0.5);
    // Every hit-served circuit still verifies against its own spec.
    assert_eq!(run.counters.verified_ok, 24);
    assert_eq!(run.counters.verify_failures, 0);
}

#[test]
fn cache_hits_are_equivalent_to_fresh_synthesis() {
    let jobs = relabeling_workload(4, 7);
    let fresh = run_batch(&jobs, &opts(1, None), &ShutdownHandles::new());
    let cached = run_batch(&jobs, &opts(1, Some(64)), &ShutdownHandles::new());
    assert!(cached.counters.cache_hits > 0);
    let mut hits_checked = 0;
    for (a, b) in fresh.records.iter().zip(&cached.records) {
        let (JobOutcome::Solved { circuit: ca, .. }, JobOutcome::Solved { circuit: cb, .. }) =
            (&a.outcome, &b.outcome)
        else {
            panic!("both runs must solve every job ({} / {})", a.name, b.name);
        };
        let eq = check_equivalence(ca, cb).expect("same width");
        assert!(eq.holds(), "{}: cache result not equivalent", a.name);
        if b.cache_hit {
            hits_checked += 1;
        }
    }
    assert!(hits_checked > 0, "at least one hit must be exercised");
}

#[test]
fn results_jsonl_lines_are_valid_json() {
    let jobs = relabeling_workload(2, 3);
    let run = run_batch(&jobs, &opts(2, Some(16)), &ShutdownHandles::new());
    let jsonl = run.results_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), jobs.len());
    for line in lines {
        let parsed = Json::parse(line).expect("each record is one JSON object");
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("solved"));
        assert!(parsed.get("circuit").unwrap().as_arr().is_some());
    }
    let report = run.report_json(&opts(2, Some(16)));
    let parsed = Json::parse(&report.to_string()).unwrap();
    assert_eq!(parsed.get("schema_version").unwrap().as_u64(), Some(1));
    assert!(parsed.get("counters").unwrap().get("cache_hits").is_some());
}

#[test]
fn corrupt_manifest_entries_flow_as_error_records() {
    let dir = std::env::temp_dir().join("rmrls-batch-corrupt-test");
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("jobs.manifest");
    std::fs::write(
        &manifest,
        "perm 1,0,7,2,3,4,5,6\n\
         perm 0,0,1,2\n\
         bench nonexistent-bench\n\
         table missing-file.tt\n\
         bench hwb4\n",
    )
    .unwrap();
    let jobs = rmrls_engine::load_manifest(manifest.to_str().unwrap()).unwrap();
    assert_eq!(jobs.len(), 5);
    let run = run_batch(&jobs, &opts(4, Some(16)), &ShutdownHandles::new());
    assert_eq!(run.counters.jobs_errored, 3, "three corrupt entries");
    assert_eq!(run.counters.jobs_completed, 2, "good entries still run");
    assert_eq!(run.counters.panics_contained, 0);
    // Error records carry file:line context into the JSONL output.
    let jsonl = run.results_jsonl();
    let second = jsonl.lines().nth(1).unwrap();
    let parsed = Json::parse(second).unwrap();
    assert_eq!(parsed.get("status").unwrap().as_str(), Some("error"));
    let origin = parsed.get("origin").unwrap().as_str().unwrap();
    assert!(origin.ends_with(":2"), "line context in {origin}");
}

#[test]
fn panicking_job_is_contained_and_reported() {
    // A 33-output spec is constructible (every term stays within the
    // 32-variable term algebra) but overflows a width assert deep
    // inside synthesis — exactly the class of poisoned input the
    // isolation exists for. The neighbour job must be unaffected.
    let mut outputs: Vec<rmrls_pprm::Pprm> = (0..32).map(rmrls_pprm::Pprm::var).collect();
    outputs.push(rmrls_pprm::Pprm::var(0));
    let poisoned_spec = MultiPprm::from_outputs(outputs, 33);
    let jobs = vec![
        Admission::Job(BatchJob {
            name: "poisoned".to_string(),
            origin: "test".to_string(),
            spec: SpecData::Pprm(poisoned_spec),
        }),
        Admission::Job(BatchJob {
            name: "healthy".to_string(),
            origin: "test".to_string(),
            spec: SpecData::Perm(Permutation::from_vec(vec![1, 0, 7, 2, 3, 4, 5, 6]).unwrap()),
        }),
    ];
    let run = run_batch(&jobs, &opts(2, None), &ShutdownHandles::new());
    assert_eq!(run.counters.panics_contained, 1);
    assert_eq!(run.counters.jobs_completed, 1);
    assert!(matches!(
        &run.records[0].outcome,
        JobOutcome::Panicked { message } if message.contains("out of range")
    ));
    assert!(matches!(
        &run.records[1].outcome,
        JobOutcome::Solved {
            verified: Some(true),
            ..
        }
    ));
}

#[test]
fn pre_drained_batch_skips_everything_but_still_reports() {
    let jobs = relabeling_workload(2, 5);
    let shutdown = ShutdownHandles::new();
    shutdown.drain.cancel();
    let run = run_batch(&jobs, &opts(4, None), &shutdown);
    assert_eq!(run.counters.jobs_skipped, jobs.len() as u64);
    assert!(run
        .records
        .iter()
        .all(|r| matches!(r.outcome, JobOutcome::Skipped)));
    // The partial report is still well-formed.
    let report = run.report_json(&opts(4, None)).to_string();
    assert!(Json::parse(&report).is_ok());
}

#[test]
fn abort_cancels_inflight_searches() {
    // Two unbounded hard jobs on two workers; abort lands mid-search.
    let mut rng = StdRng::seed_from_u64(19);
    let jobs: Vec<Admission> = (0..2)
        .map(|i| {
            Admission::Job(BatchJob {
                name: format!("hard{i}"),
                origin: "test".to_string(),
                spec: SpecData::Perm(rmrls_spec::random_permutation(6, &mut rng)),
            })
        })
        .collect();
    let options = BatchOptions {
        workers: 2,
        cache_size: None,
        // No node budget and no dive: the searches cannot finish on
        // their own in this test's lifetime.
        synthesis: SynthesisOptions::new().with_initial_dive(false),
        ..BatchOptions::default()
    };
    let shutdown = ShutdownHandles::new();
    let run = std::thread::scope(|s| {
        let handle = s.spawn(|| run_batch(&jobs, &options, &shutdown));
        std::thread::sleep(Duration::from_millis(50));
        shutdown.abort.cancel();
        handle.join().expect("batch does not panic")
    });
    assert_eq!(run.counters.panics_contained, 0);
    for r in &run.records {
        match &r.outcome {
            JobOutcome::Unsolved { stop_reason } => assert_eq!(stop_reason, "cancelled"),
            JobOutcome::Skipped => {}
            other => panic!("{}: aborted batch produced {other:?}", r.name),
        }
    }
    assert!(
        run.counters.cancelled + run.counters.jobs_skipped == jobs.len() as u64,
        "every job either cancelled in flight or skipped"
    );
}

/// Hard 5-variable jobs under a starved node budget: the configured
/// tier-1 search cannot finish, so fallback behaviour is fully
/// exercised.
fn starved_workload(count: usize, seed: u64) -> Vec<Admission> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            Admission::Job(BatchJob {
                name: format!("starved{i}"),
                origin: "test".to_string(),
                spec: SpecData::Perm(rmrls_spec::random_permutation(5, &mut rng)),
            })
        })
        .collect()
}

fn starved_options(workers: usize, cache: Option<usize>, fallback: bool) -> BatchOptions {
    BatchOptions {
        workers,
        cache_size: cache,
        fallback,
        synthesis: SynthesisOptions::new()
            .with_initial_dive(false)
            .with_max_nodes(20),
        ..BatchOptions::default()
    }
}

#[test]
fn fallback_off_leaves_starved_jobs_unsolved() {
    let jobs = starved_workload(4, 61);
    let run = run_batch(
        &jobs,
        &starved_options(2, None, false),
        &ShutdownHandles::new(),
    );
    assert_eq!(run.counters.jobs_unsolved, 4);
    assert_eq!(run.counters.jobs_completed, 0);
}

#[test]
fn fallback_ladder_leaves_nothing_unsolved() {
    let jobs = starved_workload(6, 61);
    let run = run_batch(
        &jobs,
        &starved_options(2, None, true),
        &ShutdownHandles::new(),
    );
    assert_eq!(run.counters.jobs_unsolved, 0, "fallback must be total");
    assert_eq!(run.counters.jobs_completed, 6);
    assert_eq!(run.counters.verified_ok, 6);
    assert_eq!(run.counters.verify_failures, 0);
    let c = &run.counters;
    assert_eq!(
        c.solved_by_rmrls + c.solved_by_relaxed + c.solved_by_mmd,
        6,
        "every solved job is attributed to exactly one tier"
    );
    assert!(
        c.solved_by_relaxed + c.solved_by_mmd > 0,
        "the starved tier 1 cannot have solved everything itself"
    );
    // solved_by is part of the JSONL stream and report.
    for line in run.results_jsonl().lines() {
        let parsed = Json::parse(line).unwrap();
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("solved"));
        let tier = parsed.get("solved_by").unwrap().as_str().unwrap();
        assert!(
            ["rmrls", "rmrls-relaxed", "mmd"].contains(&tier),
            "unknown tier {tier}"
        );
    }
    let report = run.report_json(&starved_options(2, None, true));
    let parsed = Json::parse(&report.to_string()).unwrap();
    assert_eq!(parsed.get("fallback").unwrap().as_bool(), Some(true));
    let counters = parsed.get("counters").unwrap();
    assert_eq!(
        counters.get("solved_by_mmd").unwrap().as_u64(),
        Some(c.solved_by_mmd)
    );
}

#[test]
fn solved_by_tiers_identical_across_thread_counts() {
    // The fallback ladder's tier attribution rides on the search
    // outcome, which the parallel search keeps byte-identical — so the
    // whole JSONL stream (circuits, tiers, stop reasons) must match for
    // any per-job thread count, on both a tier-diverse starved workload
    // and the plain examples suite.
    let starved = starved_workload(5, 83);
    let examples = rmrls_engine::suite_admissions("examples").unwrap();
    for (name, jobs, base) in [
        ("starved", &starved, starved_options(1, None, true)),
        ("examples", &examples, BatchOptions::default()),
    ] {
        let mut reference: Option<(String, [u64; 3])> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut o = base.clone();
            o.synthesis = o.synthesis.clone().with_threads(threads);
            let run = run_batch(jobs, &o, &ShutdownHandles::new());
            let tiers = [
                run.counters.solved_by_rmrls,
                run.counters.solved_by_relaxed,
                run.counters.solved_by_mmd,
            ];
            let key = (run.results_jsonl(), tiers);
            match &reference {
                None => reference = Some(key),
                Some(r) => assert_eq!(&key, r, "{name}: results/tiers differ at threads={threads}"),
            }
        }
    }
}

#[test]
fn fallback_results_are_deterministic_across_workers_and_cache() {
    let jobs = starved_workload(5, 71);
    let reference = run_batch(
        &jobs,
        &starved_options(1, None, true),
        &ShutdownHandles::new(),
    );
    for (workers, cache) in [(1, Some(64)), (4, None), (4, Some(64))] {
        let run = run_batch(
            &jobs,
            &starved_options(workers, cache, true),
            &ShutdownHandles::new(),
        );
        assert_eq!(
            run.results_jsonl(),
            reference.results_jsonl(),
            "tier attribution must not depend on workers={workers} cache={cache:?}"
        );
        assert_eq!(
            run.counters.solved_by_rmrls,
            reference.counters.solved_by_rmrls
        );
        assert_eq!(
            run.counters.solved_by_relaxed,
            reference.counters.solved_by_relaxed
        );
        assert_eq!(run.counters.solved_by_mmd, reference.counters.solved_by_mmd);
    }
}

#[test]
fn expired_deadline_still_solves_with_fallback() {
    // The never-fail guarantee for deadline-killed jobs: tiers 1 and 2
    // expire instantly, tier 3 (MMD) does not poll the clock and always
    // terminates.
    let mut rng = StdRng::seed_from_u64(23);
    let jobs: Vec<Admission> = (0..3)
        .map(|i| {
            Admission::Job(BatchJob {
                name: format!("hard{i}"),
                origin: "test".to_string(),
                spec: SpecData::Perm(rmrls_spec::random_permutation(6, &mut rng)),
            })
        })
        .collect();
    let options = BatchOptions {
        workers: 2,
        deadline: Some(Duration::from_millis(1)),
        cache_size: None,
        fallback: true,
        synthesis: SynthesisOptions::new().with_initial_dive(false),
        ..BatchOptions::default()
    };
    let run = run_batch(&jobs, &options, &ShutdownHandles::new());
    assert_eq!(run.counters.jobs_unsolved, 0);
    assert_eq!(run.counters.solved_by_mmd, 3, "deadline forces tier 3");
    assert_eq!(run.counters.verified_ok, 3);
    assert_eq!(run.counters.verify_failures, 0);
}

#[test]
fn symbolic_pprm_specs_descend_the_ladder_too() {
    let mut rng = StdRng::seed_from_u64(91);
    let spec = rmrls_spec::random_permutation(5, &mut rng).to_multi_pprm();
    let jobs = vec![Admission::Job(BatchJob {
        name: "symbolic".to_string(),
        origin: "test".to_string(),
        spec: SpecData::Pprm(spec),
    })];
    let run = run_batch(
        &jobs,
        &starved_options(1, None, true),
        &ShutdownHandles::new(),
    );
    assert_eq!(run.counters.jobs_completed, 1);
    assert!(matches!(
        &run.records[0].outcome,
        JobOutcome::Solved {
            verified: Some(true),
            ..
        }
    ));
}

#[test]
fn non_reversible_pprm_stays_cleanly_unsolved_under_fallback() {
    // (x, y) -> (x, x) is not a permutation: the search can never reach
    // identity and MMD's precondition fails, so the ladder reports
    // unsolved instead of handing garbage to the baseline.
    let spec = MultiPprm::from_outputs(vec![rmrls_pprm::Pprm::var(0), rmrls_pprm::Pprm::var(0)], 2);
    let jobs = vec![Admission::Job(BatchJob {
        name: "non-reversible".to_string(),
        origin: "test".to_string(),
        spec: SpecData::Pprm(spec),
    })];
    let run = run_batch(
        &jobs,
        &starved_options(1, None, true),
        &ShutdownHandles::new(),
    );
    assert_eq!(run.counters.jobs_unsolved, 1);
    assert_eq!(run.counters.panics_contained, 0);
    assert!(matches!(
        &run.records[0].outcome,
        JobOutcome::Unsolved { .. }
    ));
}

#[test]
fn per_job_deadline_expires_cleanly() {
    let mut rng = StdRng::seed_from_u64(23);
    let jobs: Vec<Admission> = (0..3)
        .map(|i| {
            Admission::Job(BatchJob {
                name: format!("hard{i}"),
                origin: "test".to_string(),
                spec: SpecData::Perm(rmrls_spec::random_permutation(6, &mut rng)),
            })
        })
        .collect();
    let options = BatchOptions {
        workers: 2,
        deadline: Some(Duration::from_millis(30)),
        cache_size: Some(16),
        synthesis: SynthesisOptions::new().with_initial_dive(false),
        ..BatchOptions::default()
    };
    let run = run_batch(&jobs, &options, &ShutdownHandles::new());
    assert_eq!(run.counters.deadline_expired, 3);
    assert!(run.records.iter().all(
        |r| matches!(&r.outcome, JobOutcome::Unsolved { stop_reason }
            if stop_reason == "deadline expired")
    ));
}
