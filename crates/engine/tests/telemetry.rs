//! Integration tests for live telemetry: the byte-identity guarantee
//! (enabling telemetry changes no synthesized circuit byte), live job
//! state transitions observed mid-run, and an end-to-end HTTP scrape
//! against the real server while a batch executes.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmrls_engine::manifest::{Admission, BatchJob, SpecData};
use rmrls_engine::{run_batch, BatchOptions, BatchTelemetry, JobState, ShutdownHandles};
use rmrls_obs::Json;
use rmrls_telemetry::{Providers, TelemetryServer};

fn workload(n: usize, seed: u64) -> Vec<Admission> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let p = rmrls_spec::random_permutation(3, &mut rng);
            Admission::Job(BatchJob {
                name: format!("job{i}"),
                origin: "test".to_string(),
                spec: SpecData::Perm(p),
            })
        })
        .collect()
}

fn telemetry_for(jobs: &[Admission]) -> Arc<BatchTelemetry> {
    Arc::new(BatchTelemetry::new(
        jobs.iter().map(|a| a.name().to_string()).collect(),
    ))
}

/// The tentpole guarantee: the results JSONL stream is byte-identical
/// with telemetry off, on, and on-with-multiple-workers.
#[test]
fn telemetry_never_changes_results() {
    let jobs = workload(10, 7);
    let plain = run_batch(&jobs, &BatchOptions::default(), &ShutdownHandles::new());
    let reference = plain.results_jsonl();
    for workers in [1, 4] {
        let telemetry = telemetry_for(&jobs);
        let opts = BatchOptions {
            workers,
            telemetry: Some(Arc::clone(&telemetry)),
            ..BatchOptions::default()
        };
        let run = run_batch(&jobs, &opts, &ShutdownHandles::new());
        assert_eq!(
            run.results_jsonl(),
            reference,
            "telemetry with workers={workers} must not change results"
        );
        assert_eq!(run.counters.panics_contained, 0);
    }
}

/// After a run, the job board reflects final states, the latency
/// histograms saw every job, and the counters match the aggregate
/// report's.
#[test]
fn board_and_registry_reflect_a_finished_run() {
    let jobs = workload(6, 21);
    let telemetry = telemetry_for(&jobs);
    let opts = BatchOptions {
        workers: 2,
        telemetry: Some(Arc::clone(&telemetry)),
        ..BatchOptions::default()
    };
    let run = run_batch(&jobs, &opts, &ShutdownHandles::new());
    assert_eq!(run.counters.jobs_completed, 6);

    let statuses = telemetry.jobs.statuses();
    assert_eq!(statuses.len(), 6);
    assert!(statuses.iter().all(|s| s.state == JobState::Done));
    assert!(statuses.iter().all(|s| s.solved_by.is_some()));
    assert_eq!(telemetry.job_seconds.count(), 6);

    let snap = telemetry.registry().snapshot();
    assert_eq!(snap.counter("jobs_completed"), Some(6));
    assert_eq!(
        snap.counter("cache_hits").unwrap() + snap.counter("cache_misses").unwrap(),
        6
    );
    // The sampler's final beat left end-of-run gauge values.
    let gauge = |name: &str| {
        snap.gauges
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, v, _)| *v)
    };
    assert_eq!(gauge("workers_total"), Some(2));
    assert_eq!(gauge("jobs_running"), Some(0));
    assert_eq!(gauge("jobs_pending"), Some(0));

    // /healthz and /jobs render coherent JSON for the finished run.
    let health = Json::parse(&telemetry.healthz_json()).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("jobs_done").unwrap().as_u64(), Some(6));
    assert_eq!(health.get("degraded"), Some(&Json::Bool(false)));
    let rows = Json::parse(&telemetry.jobs_json()).unwrap();
    assert_eq!(rows.as_arr().unwrap().len(), 6);
}

/// Scrapes the real HTTP server while the batch is still executing:
/// /metrics must expose histogram buckets and counters, /jobs must
/// show non-final states, and the scrape must not perturb results.
#[test]
fn http_scrape_mid_run_sees_live_state() {
    use std::io::{Read, Write};

    let jobs = workload(12, 99);
    let reference =
        run_batch(&jobs, &BatchOptions::default(), &ShutdownHandles::new()).results_jsonl();

    let telemetry = telemetry_for(&jobs);
    let server = {
        let (m, h, j) = (
            Arc::clone(&telemetry),
            Arc::clone(&telemetry),
            Arc::clone(&telemetry),
        );
        TelemetryServer::bind(
            "127.0.0.1:0",
            Providers {
                metrics: Box::new(move || m.metrics_text()),
                healthz: Box::new(move || h.healthz_json()),
                jobs: Box::new(move || j.jobs_json()),
            },
        )
        .unwrap()
    };
    let addr = server.local_addr();
    let get = move |path: &str| {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        raw.split_once("\r\n\r\n").unwrap().1.to_string()
    };

    let opts = BatchOptions {
        workers: 1,
        telemetry: Some(Arc::clone(&telemetry)),
        ..BatchOptions::default()
    };
    let (run, scrapes) = std::thread::scope(|scope| {
        let runner = scope.spawn(|| run_batch(&jobs, &opts, &ShutdownHandles::new()));
        // Scrape repeatedly until we catch the run in progress (or it
        // finishes first — possible on a fast machine, handled below).
        let mut saw_live = false;
        let mut bodies = Vec::new();
        for _ in 0..200 {
            let jobs_body = get("/jobs");
            let parsed = Json::parse(&jobs_body).unwrap();
            let live = parsed.as_arr().unwrap().iter().any(|row| {
                matches!(
                    row.get("state").and_then(|s| s.as_str()),
                    Some("pending") | Some("running")
                )
            });
            if live {
                saw_live = true;
                bodies.push(get("/metrics"));
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        (runner.join().unwrap(), (saw_live, bodies))
    });
    let (saw_live, bodies) = scrapes;

    // Results still byte-identical despite concurrent scraping.
    assert_eq!(run.results_jsonl(), reference);

    // The mid-run metrics scrape (when we caught one) is well-formed
    // prometheus text with the histogram families present.
    let final_metrics = get("/metrics");
    for body in bodies.iter().chain([&final_metrics]) {
        assert!(
            body.contains("# TYPE rmrls_job_seconds histogram"),
            "{body}"
        );
        assert!(body.contains("rmrls_job_seconds_bucket{le=\"+Inf\"}"));
        assert!(body.contains("# TYPE rmrls_cache_hits counter"));
        assert!(body.contains("# TYPE rmrls_queue_depth gauge"));
    }
    assert!(saw_live, "never caught the batch mid-run");
    assert!(final_metrics.contains("rmrls_job_seconds_count 12\n"));
    assert!(get("/healthz").contains("\"status\":\"ok\""));
    server.shutdown();
}
