//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! resolves `proptest` to this path crate (see the root `Cargo.toml`).
//! It implements the subset of the API the test suites use — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_filter_map` / `prop_perturb`, `any`, ranges, tuples,
//! `collection::vec`, `bits::u32::masked`, `Just`, the `prop_assert*`
//! macros and [`ProptestConfig`] — as straightforward random testing:
//! each case draws fresh values from a deterministic RNG and runs the
//! body. **No shrinking** is performed on failure; the failing values
//! are printed instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! The runtime driving each generated test.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// The RNG handed to strategies (and to `prop_perturb` closures).
    /// Implements the workspace `rand` traits so test bodies can use it
    /// with `SliceRandom::shuffle` and friends.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A deterministic generator for the named test.
        pub fn deterministic(test_name: &str) -> TestRng {
            // FNV-1a over the test name: stable across runs, distinct
            // streams per test.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Splits off an independent generator (used by `prop_perturb`).
        pub fn fork(&mut self) -> TestRng {
            TestRng(StdRng::seed_from_u64(self.0.next_u64()))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A failed property: carries the assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Overrides the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest defaults to 256; tests here synthesize
            // circuits per case, so default lower and honour the same
            // env override.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Maps through `f`, rejecting values where it returns `None`.
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                f,
                whence,
            }
        }

        /// Post-processes values with access to an independent RNG.
        fn prop_perturb<O, F: Fn(Self::Value, TestRng) -> O>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
        {
            Perturb { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.sample(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map rejected 10000 candidates: {}", self.whence);
        }
    }

    /// See [`Strategy::prop_perturb`].
    pub struct Perturb<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            let v = self.inner.sample(rng);
            (self.f)(v, rng.fork())
        }
    }

    /// Always yields a clone of the wrapped value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform values of the full type domain; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Types `any::<T>()` can generate.
    pub trait ArbitraryValue {
        /// Draws a uniform value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    use rand::RngCore;

    /// Uniform values over the whole domain of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bits {
    //! Bit-set strategies.

    #[allow(non_snake_case)]
    pub mod u32 {
        //! `u32` bit masks.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::RngCore;

        /// Uniform `u32`s restricted to the given mask's bits.
        pub fn masked(mask: ::core::primitive::u32) -> Masked {
            Masked { mask }
        }

        /// See [`masked`].
        pub struct Masked {
            mask: ::core::primitive::u32,
        }

        impl Strategy for Masked {
            type Value = ::core::primitive::u32;
            fn sample(&self, rng: &mut TestRng) -> ::core::primitive::u32 {
                rng.next_u64() as ::core::primitive::u32 & self.mask
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface matching real proptest.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

// Re-exports so `proptest::collection::vec` etc. resolve (they already
// do as modules above); keep the umbrella paths stable.
pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestCaseError};

// Suppress unused-import lints for the top-level convenience imports.
#[allow(unused_imports)]
use std::{marker::PhantomData as _PhantomData_, ops::Range as _Range_};
const _: Option<PhantomData<()>> = None;
const _: Option<Range<u8>> = None;

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    l, r, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: both sides equal `{:?}`", l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: both sides equal `{:?}`: {}",
                    l, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body for `config.cases` randomly
/// generated inputs. Failures print the generated values (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let __strats = ($($strat,)+);
                for __case in 0..__config.cases {
                    let ($(ref $arg,)+) = __strats;
                    let ($($arg,)+) = ($(
                        $crate::strategy::Strategy::sample($arg, &mut __rng),
                    )+);
                    let __described = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1,
                            __config.cases,
                            e,
                            __described
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Generated values respect range strategies.
        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 0u32..16) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 16, "y = {}", y);
        }

        /// Vec strategies honour their size band and element strategy.
        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        /// Map/filter-map compose.
        #[test]
        fn combinators(x in (0usize..10).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 20);
        }

        /// Masked bit strategies never set bits outside the mask.
        #[test]
        fn masked_bits(m in crate::bits::u32::masked(0b1010)) {
            prop_assert_eq!(m & !0b1010, 0);
        }

        /// Tuples and Just work.
        #[test]
        fn tuples(pair in (Just(7usize), any::<bool>())) {
            prop_assert_eq!(pair.0, 7);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn always_fails(x in 0usize..4) {
                    prop_assert!(x > 100, "x is small");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("x is small") && msg.contains("inputs"),
            "{msg}"
        );
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use crate::test_runner::TestRng;
        use rand::RngCore;
        let mut a = TestRng::deterministic("foo");
        let mut b = TestRng::deterministic("foo");
        let mut c = TestRng::deterministic("bar");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
