//! Offline stand-in for the `rand` crate, exposing exactly the API
//! surface this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{random_range, random_bool}`, `seq::SliceRandom::shuffle`).
//!
//! The build environment has no registry access, so the workspace
//! resolves `rand` to this path crate instead (see the root
//! `Cargo.toml`). It is pure std and fully deterministic: `StdRng` is a
//! SplitMix64-seeded xoshiro256++ generator, which is more than enough
//! statistical quality for the randomized tests and workload generators
//! here. It makes no cryptographic claims whatsoever.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the range (panics if empty, like
    /// the real `rand`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (deterministic, fast, statistically solid; not
    /// cryptographic).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait adding random shuffling to slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..9usize);
            assert!((3..9).contains(&x));
            let y = rng.random_range(2..=5usize);
            assert!((2..=5).contains(&y));
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "a 32-element shuffle is almost surely nontrivial"
        );
    }
}
