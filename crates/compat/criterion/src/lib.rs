//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace
//! resolves `criterion` to this path crate (see the root `Cargo.toml`).
//! It keeps the same bench-authoring API (`Criterion`,
//! `benchmark_group`, `Bencher::iter` / `iter_batched`, `BatchSize`,
//! `criterion_group!` / `criterion_main!`) but implements it as plain
//! wall-clock timing: each benchmark runs a warm-up pass, then
//! `sample_size` timed samples, and prints the median per-iteration
//! time. No statistics engine, plots, or baseline storage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are sized; accepted for API compatibility, the
/// stub treats every variant the same.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Larger setup values.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate the per-sample iteration count so each sample takes a
    // perceptible but bounded slice of wall clock.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(10);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed / iters as u32);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!("bench {id:<40} {median:>12.2?}/iter  ({samples} samples x {iters} iters)");
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group (no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench-harness `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_runs_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut total = 0usize;
        group.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1usize, 2, 3],
                |v| total += v.iter().sum::<usize>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(total > 0);
    }

    criterion_group!(smoke, noop_target);
    fn noop_target(c: &mut Criterion) {
        c.bench_function("target", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macro_declared_group_is_callable() {
        smoke();
    }
}
