//! The append-only request journal: crash-safe request intake.
//!
//! Reuses the engine's fsync'd [`JournalWriter`] line discipline with
//! a serve-specific header and two line kinds:
//!
//! ```json
//! {"journal":"rmrls-serve","schema_version":1}
//! {"event":"submitted","id":1,"name":"swap","kind":"perm","spec":"1,0"}
//! {"event":"completed","id":1,"cache_hit":false,"record":{...}}
//! ```
//!
//! `submitted` is written *before* the request is enqueued (write
//! ahead), `completed` after its record is final. On restart, replay
//! partitions journaled ids: submitted-without-completed requests are
//! re-enqueued (the crash interrupted them), completed ones are
//! restored read-only so `GET /requests/<id>` keeps answering. A torn
//! tail — half a line from a crash mid-append — is tolerated and
//! ignored, matching the engine journal's contract.

use std::sync::{Mutex, MutexGuard};

use rmrls_engine::JournalWriter;
use rmrls_obs::Json;

use crate::request::SynthesisRequest;

/// Schema version of the serve journal.
pub const SERVE_JOURNAL_SCHEMA_VERSION: u64 = 1;

/// First line of every serve journal.
fn header_line() -> String {
    Json::Obj(vec![
        ("journal".to_string(), Json::str("rmrls-serve")),
        (
            "schema_version".to_string(),
            Json::uint(SERVE_JOURNAL_SCHEMA_VERSION),
        ),
    ])
    .to_string()
}

/// What replay recovered from an existing journal.
#[derive(Default, Debug)]
pub struct Replay {
    /// Requests journaled as submitted but never completed — the crash
    /// interrupted them; re-enqueue in id order.
    pub pending: Vec<(u64, SynthesisRequest)>,
    /// Requests with a final record: `(id, request, cache_hit, record)`.
    pub completed: Vec<(u64, SynthesisRequest, bool, Json)>,
    /// Highest id seen (0 when the journal was empty).
    pub max_id: u64,
}

/// The daemon's shared journal handle. All appends are serialized
/// behind one lock; each is fsync'd by the underlying writer.
pub struct RequestJournal {
    writer: Mutex<JournalWriter>,
}

impl RequestJournal {
    /// Opens `path`, creating it with a fresh header when absent and
    /// replaying it when present. Returns the handle (positioned for
    /// appends) plus whatever replay recovered.
    pub fn open(path: &str) -> Result<(RequestJournal, Replay), String> {
        if !std::path::Path::new(path).exists() {
            let writer = JournalWriter::create_raw(path, &header_line())?;
            return Ok((
                RequestJournal {
                    writer: Mutex::new(writer),
                },
                Replay::default(),
            ));
        }
        let replay = replay_file(path)?;
        let writer = JournalWriter::open_append(path)?;
        Ok((
            RequestJournal {
                writer: Mutex::new(writer),
            },
            replay,
        ))
    }

    fn lock(&self) -> MutexGuard<'_, JournalWriter> {
        self.writer.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Write-ahead record of an accepted request (before enqueue).
    pub fn append_submitted(&self, id: u64, request: &SynthesisRequest) -> Result<(), String> {
        let Json::Obj(request_fields) = request.to_json() else {
            unreachable!("SynthesisRequest::to_json always returns an object");
        };
        let mut fields = vec![
            ("event".to_string(), Json::str("submitted")),
            ("id".to_string(), Json::uint(id)),
        ];
        fields.extend(request_fields);
        self.append_line(&Json::Obj(fields).to_string())
    }

    /// Final record of a finished request.
    pub fn append_completed(&self, id: u64, cache_hit: bool, record: &Json) -> Result<(), String> {
        let line = Json::Obj(vec![
            ("event".to_string(), Json::str("completed")),
            ("id".to_string(), Json::uint(id)),
            ("cache_hit".to_string(), Json::Bool(cache_hit)),
            ("record".to_string(), record.clone()),
        ]);
        self.append_line(&line.to_string())
    }

    fn append_line(&self, line: &str) -> Result<(), String> {
        self.lock().append_at(line, "serve/journal/append")
    }
}

/// Parses an existing journal, tolerating a torn final line.
fn replay_file(path: &str) -> Result<Replay, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read request journal {path}: {e}"))?;
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) => {
            let header =
                Json::parse(first).map_err(|e| format!("{path}:1: bad journal header: {e}"))?;
            if header.get("journal").and_then(Json::as_str) != Some("rmrls-serve") {
                return Err(format!("{path}: not an rmrls-serve request journal"));
            }
        }
        None => return Ok(Replay::default()),
    }
    // (request, completion) per id; BTreeMap keeps replay in id order.
    type Seen = std::collections::BTreeMap<u64, (Option<SynthesisRequest>, Option<(bool, Json)>)>;
    let mut seen: Seen = Seen::new();
    let total = text.lines().count();
    for (index, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let json = match Json::parse(line) {
            Ok(j) => j,
            // A torn tail (crash mid-append) is expected; a malformed
            // line anywhere else means the file is not ours.
            Err(_) if index + 1 == total => break,
            Err(e) => return Err(format!("{path}:{}: bad journal line: {e}", index + 1)),
        };
        let id = json
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{path}:{}: journal line without id", index + 1))?;
        let slot = seen.entry(id).or_default();
        match json.get("event").and_then(Json::as_str) {
            Some("submitted") => {
                let request = SynthesisRequest::from_json_str(&json.to_string())
                    .map_err(|e| format!("{path}:{}: bad submitted line: {e}", index + 1))?;
                slot.0 = Some(request);
            }
            Some("completed") => {
                let cache_hit = json
                    .get("cache_hit")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                let record = json.get("record").cloned().unwrap_or(Json::Null);
                slot.1 = Some((cache_hit, record));
            }
            other => {
                return Err(format!(
                    "{path}:{}: unknown journal event {other:?}",
                    index + 1
                ))
            }
        }
    }
    let mut replay = Replay::default();
    for (id, (request, completion)) in seen {
        replay.max_id = replay.max_id.max(id);
        let Some(request) = request else {
            // A completed line without its submitted line cannot be
            // restored meaningfully; skip it but keep the id reserved.
            continue;
        };
        match completion {
            Some((cache_hit, record)) => {
                replay.completed.push((id, request, cache_hit, record));
            }
            None => replay.pending.push((id, request)),
        }
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("rmrls-serve-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("requests.jsonl").to_string_lossy().into_owned()
    }

    fn request(name: &str) -> SynthesisRequest {
        SynthesisRequest {
            name: name.into(),
            kind: "perm".into(),
            spec: "1,0".into(),
            deadline_ms: None,
        }
    }

    #[test]
    fn replay_partitions_pending_from_completed() {
        let path = tmp("partition");
        {
            let (journal, replay) = RequestJournal::open(&path).unwrap();
            assert!(replay.pending.is_empty() && replay.completed.is_empty());
            journal.append_submitted(1, &request("a")).unwrap();
            journal.append_submitted(2, &request("b")).unwrap();
            let record = Json::Obj(vec![("status".into(), Json::str("solved"))]);
            journal.append_completed(1, true, &record).unwrap();
        }
        let (_journal, replay) = RequestJournal::open(&path).unwrap();
        assert_eq!(replay.max_id, 2);
        assert_eq!(replay.completed.len(), 1);
        let (id, req, cache_hit, record) = &replay.completed[0];
        assert_eq!((*id, req.name.as_str(), *cache_hit), (1, "a", true));
        assert_eq!(record.get("status").and_then(Json::as_str), Some("solved"));
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0].0, 2);
        assert_eq!(replay.pending[0].1.name, "b");
    }

    #[test]
    fn a_torn_tail_is_tolerated() {
        let path = tmp("torn");
        {
            let (journal, _) = RequestJournal::open(&path).unwrap();
            journal.append_submitted(1, &request("a")).unwrap();
        }
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"event\":\"submitted\",\"id\":2,\"na").unwrap();
        }
        let (_journal, replay) = RequestJournal::open(&path).unwrap();
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0].0, 1);
    }

    #[test]
    fn a_foreign_file_is_rejected() {
        let path = tmp("foreign");
        std::fs::write(&path, "{\"journal\":\"other\"}\n").unwrap();
        let err = match RequestJournal::open(&path) {
            Ok(_) => panic!("foreign file accepted"),
            Err(e) => e,
        };
        assert!(err.contains("not an rmrls-serve request journal"), "{err}");
    }

    #[test]
    fn appends_after_reopen_land_after_existing_lines() {
        let path = tmp("reopen");
        {
            let (journal, _) = RequestJournal::open(&path).unwrap();
            journal.append_submitted(1, &request("a")).unwrap();
        }
        {
            let (journal, _) = RequestJournal::open(&path).unwrap();
            journal.append_submitted(2, &request("b")).unwrap();
        }
        let (_journal, replay) = RequestJournal::open(&path).unwrap();
        assert_eq!(replay.pending.len(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "header plus two appends");
    }
}
