//! `rmrls serve` — a long-lived, multi-tenant synthesis service.
//!
//! The batch engine answers "run this manifest once"; this crate
//! answers "keep a synthesis engine warm and let clients bring work
//! to it". One daemon holds a [`JobRunner`](rmrls_engine::JobRunner)
//! (the engine's single-job path: canonical cache, fallback ladder,
//! verification, panic containment) and serves it over the
//! zero-dependency HTTP/1.1 stack from `rmrls-telemetry`:
//!
//! - `POST /synthesize` — a JSON spec in, the job record out
//!   (blocking; the connection is the request's lifetime, so a client
//!   that disconnects cancels its search);
//! - `GET /requests/<id>` — status and final record by id;
//! - `GET /requests/<id>/events` — live JSONL progress stream sourced
//!   from the engine's event sinks;
//! - `GET /metrics` / `/healthz` / `/jobs` — the familiar batch
//!   telemetry, now reporting service state (admission queue depth,
//!   shed counts, cache occupancy and hit rate).
//!
//! Admission is bounded (queue capacity and the search budget's
//! memory caps; saturation sheds with `429 Retry-After`), every
//! accepted request is journaled write-ahead so a crash replays
//! interrupted work on restart, and SIGINT drains exactly like the
//! batch engine (second SIGINT aborts in-flight searches).
//!
//! - [`request`] — the wire form of one request;
//! - [`registry`] — per-request state, waiters, event logs;
//! - [`journal`] — the append-only request journal and its replay;
//! - [`server`] — the daemon: admission, workers, routes, shutdown.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod registry;
pub mod request;
pub mod server;

pub use journal::{RequestJournal, SERVE_JOURNAL_SCHEMA_VERSION};
pub use registry::{RequestEntry, RequestRegistry};
pub use request::SynthesisRequest;
pub use server::{ServeDaemon, ServeOptions};
