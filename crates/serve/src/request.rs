//! The wire form of one synthesis request.
//!
//! A `POST /synthesize` body is a small JSON object naming a spec in
//! one of the manifest's inline kinds. Parsing here only validates the
//! *envelope* (JSON shape, required fields); the spec string itself is
//! validated by the engine's admission path ([`admit`]
//! (SynthesisRequest::admit)), so a bad spec becomes a per-request
//! error record exactly like a bad manifest line in batch mode.

use rmrls_engine::{admit_inline, Admission};
use rmrls_obs::Json;

/// One parsed `POST /synthesize` body.
///
/// ```json
/// {"kind": "perm", "spec": "1,0,3,2", "name": "swap01", "deadline_ms": 2000}
/// ```
///
/// `kind` is one of the manifest's inline kinds (`perm`, `table`,
/// `tfc`, `bench`); `spec` is its argument. `name` and `deadline_ms`
/// are optional.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthesisRequest {
    /// Display name (defaults to `"request"` when omitted).
    pub name: String,
    /// Spec kind: `perm`, `table`, `tfc`, or `bench`.
    pub kind: String,
    /// The spec payload (permutation list, TFC text, benchmark name…).
    pub spec: String,
    /// Per-request deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl SynthesisRequest {
    /// Parses a request body. Errors name the offending field so the
    /// 400 response is actionable.
    pub fn from_json_str(body: &str) -> Result<SynthesisRequest, String> {
        let json = Json::parse(body).map_err(|e| format!("body is not valid JSON: {e}"))?;
        if !matches!(json, Json::Obj(_)) {
            return Err("body must be a JSON object".to_string());
        }
        let field = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field: {key:?}"))
        };
        let kind = field("kind")?;
        let spec = field("spec")?;
        let name = match json.get("name") {
            None => "request".to_string(),
            Some(v) => v
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| "field \"name\" must be a string".to_string())?,
        };
        let deadline_ms = match json.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                "field \"deadline_ms\" must be a non-negative integer".to_string()
            })?),
        };
        Ok(SynthesisRequest {
            name,
            kind,
            spec,
            deadline_ms,
        })
    }

    /// The request as JSON — the exact fields [`from_json_str`]
    /// (SynthesisRequest::from_json_str) reads, so journaled requests
    /// round-trip.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::str(&self.name)),
            ("kind".to_string(), Json::str(&self.kind)),
            ("spec".to_string(), Json::str(&self.spec)),
        ];
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Json::uint(ms)));
        }
        Json::Obj(fields)
    }

    /// Resolves the request into an engine admission. Malformed specs
    /// become [`Admission::Error`] — reported per request, never fatal
    /// to the daemon.
    pub fn admit(&self, id: u64) -> Admission {
        admit_inline(&self.name, &self.kind, &self.spec, format!("request:{id}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_body() {
        let r = SynthesisRequest::from_json_str(
            r#"{"kind":"perm","spec":"1,0,3,2","name":"swap","deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(r.name, "swap");
        assert_eq!(r.kind, "perm");
        assert_eq!(r.spec, "1,0,3,2");
        assert_eq!(r.deadline_ms, Some(250));
    }

    #[test]
    fn name_and_deadline_are_optional() {
        let r = SynthesisRequest::from_json_str(r#"{"kind":"perm","spec":"1,0"}"#).unwrap();
        assert_eq!(r.name, "request");
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn malformed_bodies_name_the_problem() {
        for (body, needle) in [
            ("not json", "not valid JSON"),
            ("[1,2]", "JSON object"),
            (r#"{"spec":"1,0"}"#, "kind"),
            (r#"{"kind":"perm"}"#, "spec"),
            (
                r#"{"kind":"perm","spec":"1,0","deadline_ms":"soon"}"#,
                "deadline_ms",
            ),
            (r#"{"kind":"perm","spec":"1,0","name":7}"#, "name"),
        ] {
            let err = SynthesisRequest::from_json_str(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn round_trips_through_json() {
        let r = SynthesisRequest {
            name: "x".into(),
            kind: "perm".into(),
            spec: "1,0".into(),
            deadline_ms: Some(9),
        };
        let back = SynthesisRequest::from_json_str(&r.to_json().to_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn bad_specs_surface_as_admission_errors() {
        let r = SynthesisRequest::from_json_str(r#"{"kind":"perm","spec":"0,0"}"#).unwrap();
        assert!(matches!(r.admit(1), Admission::Error { .. }));
    }
}
