//! In-memory request state: one entry per accepted request, looked up
//! by id for `GET /requests/<id>` and the JSONL event stream.
//!
//! Each entry is its own little synchronization hub: the submitting
//! connection blocks on [`wait_done`](RequestEntry::wait_done), the
//! worker publishes the final record through [`finish`]
//! (RequestEntry::finish), and any number of event-stream connections
//! block on [`events_wait`](RequestEntry::events_wait) while the
//! search pushes progress lines. All waits are condvar-based with
//! short timeouts so callers can interleave liveness checks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use rmrls_core::CancelToken;
use rmrls_obs::Json;

use crate::request::SynthesisRequest;

/// Progress lines kept per request. The stream is a live tail, not an
/// archive: once the buffer is full, further events are counted as
/// dropped rather than grown without bound. The terminal
/// `request_done` line always fits (it bypasses the cap).
pub const EVENT_LOG_CAP: usize = 512;

/// Lifecycle phase of a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Accepted and journaled, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished — the record is available.
    Done,
}

impl Phase {
    /// Stable lowercase name used in status JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
        }
    }
}

/// Mutable core of an entry, guarded by one mutex.
struct Inner {
    phase: Phase,
    cache_hit: bool,
    record: Option<Json>,
}

/// Bounded progress-event buffer.
struct EventLog {
    lines: Vec<String>,
    dropped: u64,
}

/// One accepted request.
pub struct RequestEntry {
    /// Monotonic request id (also the journal key).
    pub id: u64,
    /// The request as submitted.
    pub request: SynthesisRequest,
    /// Cancels the request's search mid-flight. A child of the
    /// daemon's abort token, so a second SIGINT trips every in-flight
    /// request at once.
    pub cancel: CancelToken,
    inner: Mutex<Inner>,
    done: Condvar,
    events: Mutex<EventLog>,
    events_cv: Condvar,
}

impl RequestEntry {
    /// A fresh queued entry.
    pub fn new(id: u64, request: SynthesisRequest, cancel: CancelToken) -> RequestEntry {
        RequestEntry {
            id,
            request,
            cancel,
            inner: Mutex::new(Inner {
                phase: Phase::Queued,
                cache_hit: false,
                record: None,
            }),
            done: Condvar::new(),
            events: Mutex::new(EventLog {
                lines: Vec::new(),
                dropped: 0,
            }),
            events_cv: Condvar::new(),
        }
    }

    /// An entry restored from the journal in its final state (used by
    /// replay for requests that had already completed).
    pub fn finished(
        id: u64,
        request: SynthesisRequest,
        cache_hit: bool,
        record: Json,
    ) -> RequestEntry {
        let entry = RequestEntry::new(id, request, CancelToken::new());
        entry.set_running();
        entry.finish(cache_hit, record);
        entry
    }

    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_events(&self) -> MutexGuard<'_, EventLog> {
        self.events.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Marks the entry running (worker picked it up).
    pub fn set_running(&self) {
        self.lock_inner().phase = Phase::Running;
    }

    /// Publishes the final record and wakes every waiter, including
    /// event streams (which then see the terminal line and finish).
    pub fn finish(&self, cache_hit: bool, record: Json) {
        let status = record
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        {
            let mut inner = self.lock_inner();
            inner.phase = Phase::Done;
            inner.cache_hit = cache_hit;
            inner.record = Some(record);
        }
        let terminal = Json::Obj(vec![
            ("event".to_string(), Json::str("request_done")),
            ("id".to_string(), Json::uint(self.id)),
            ("status".to_string(), Json::Str(status)),
        ]);
        {
            // Terminal line bypasses the cap: streams must always see
            // the end of the request.
            let mut log = self.lock_events();
            log.lines.push(terminal.to_string());
        }
        self.done.notify_all();
        self.events_cv.notify_all();
    }

    /// Whether the final record is available.
    pub fn is_done(&self) -> bool {
        self.lock_inner().phase == Phase::Done
    }

    /// Blocks until the entry finishes or `timeout` elapses; returns
    /// whether it is done. Short timeouts let the caller interleave
    /// client-liveness probes.
    pub fn wait_done(&self, timeout: Duration) -> bool {
        let mut inner = self.lock_inner();
        if inner.phase != Phase::Done {
            let (guard, _) = self
                .done
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|p| p.into_inner());
            inner = guard;
        }
        inner.phase == Phase::Done
    }

    /// The final `(cache_hit, record)` pair, once done.
    pub fn result(&self) -> Option<(bool, Json)> {
        let inner = self.lock_inner();
        inner.record.clone().map(|r| (inner.cache_hit, r))
    }

    /// Appends one progress line (drops beyond the cap).
    pub fn push_event(&self, line: String) {
        {
            let mut log = self.lock_events();
            if log.lines.len() >= EVENT_LOG_CAP {
                log.dropped += 1;
            } else {
                log.lines.push(line);
            }
        }
        self.events_cv.notify_all();
    }

    /// Returns event lines from index `from` onward, blocking up to
    /// `timeout` when none are available yet. The returned tuple is
    /// `(new_lines, next_index, done)`; a `(empty, from, true)` result
    /// means the stream is complete.
    pub fn events_wait(&self, from: usize, timeout: Duration) -> (Vec<String>, usize, bool) {
        let mut log = self.lock_events();
        if log.lines.len() <= from && !self.is_done() {
            let (guard, _) = self
                .events_cv
                .wait_timeout(log, timeout)
                .unwrap_or_else(|p| p.into_inner());
            log = guard;
        }
        let fresh: Vec<String> = log.lines.get(from..).unwrap_or(&[]).to_vec();
        let next = from + fresh.len();
        drop(log);
        (fresh, next, self.is_done())
    }

    /// Progress lines dropped past the buffer cap.
    pub fn dropped_events(&self) -> u64 {
        self.lock_events().dropped
    }

    /// Status document for `GET /requests/<id>`.
    pub fn status_json(&self) -> Json {
        let inner = self.lock_inner();
        let mut fields = vec![
            ("id".to_string(), Json::uint(self.id)),
            ("name".to_string(), Json::str(&self.request.name)),
            ("state".to_string(), Json::str(inner.phase.as_str())),
        ];
        if inner.phase == Phase::Done {
            fields.push(("cache_hit".to_string(), Json::Bool(inner.cache_hit)));
            if let Some(record) = &inner.record {
                fields.push(("record".to_string(), record.clone()));
            }
        }
        drop(inner);
        let dropped = self.dropped_events();
        if dropped > 0 {
            fields.push(("dropped_events".to_string(), Json::uint(dropped)));
        }
        Json::Obj(fields)
    }
}

/// All requests the daemon has accepted, by id.
pub struct RequestRegistry {
    entries: Mutex<HashMap<u64, Arc<RequestEntry>>>,
    next_id: AtomicU64,
}

impl Default for RequestRegistry {
    fn default() -> RequestRegistry {
        RequestRegistry::new()
    }
}

impl RequestRegistry {
    /// An empty registry; ids start at 1.
    pub fn new() -> RequestRegistry {
        RequestRegistry {
            entries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Allocates the next request id.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Bumps the id allocator past journaled ids (replay).
    pub fn reserve_through(&self, max_seen: u64) {
        let floor = max_seen.saturating_add(1);
        self.next_id.fetch_max(floor, Ordering::Relaxed);
    }

    /// Registers an entry under its id.
    pub fn insert(&self, entry: Arc<RequestEntry>) {
        self.lock().insert(entry.id, entry);
    }

    /// Looks up an entry.
    pub fn get(&self, id: u64) -> Option<Arc<RequestEntry>> {
        self.lock().get(&id).cloned()
    }

    /// Number of registered requests (all phases).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no request has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u64, Arc<RequestEntry>>> {
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> SynthesisRequest {
        SynthesisRequest {
            name: "t".into(),
            kind: "perm".into(),
            spec: "1,0".into(),
            deadline_ms: None,
        }
    }

    #[test]
    fn wait_done_observes_a_cross_thread_finish() {
        let entry = Arc::new(RequestEntry::new(1, request(), CancelToken::new()));
        let waiter = {
            let entry = Arc::clone(&entry);
            std::thread::spawn(move || {
                let mut rounds = 0;
                while !entry.wait_done(Duration::from_millis(20)) {
                    rounds += 1;
                    assert!(rounds < 500, "never finished");
                }
                entry.result().unwrap()
            })
        };
        entry.set_running();
        entry.finish(
            true,
            Json::Obj(vec![("status".into(), Json::str("solved"))]),
        );
        let (cache_hit, record) = waiter.join().unwrap();
        assert!(cache_hit);
        assert_eq!(record.get("status").and_then(Json::as_str), Some("solved"));
    }

    #[test]
    fn event_streams_end_with_the_terminal_line() {
        let entry = RequestEntry::new(2, request(), CancelToken::new());
        entry.push_event("{\"event\":\"a\"}".to_string());
        entry.finish(
            false,
            Json::Obj(vec![("status".into(), Json::str("solved"))]),
        );
        let (lines, next, done) = entry.events_wait(0, Duration::from_millis(1));
        assert!(done);
        assert_eq!(next, 2);
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("request_done"));
        let (tail, _, done) = entry.events_wait(next, Duration::from_millis(1));
        assert!(done && tail.is_empty());
    }

    #[test]
    fn the_event_log_is_bounded() {
        let entry = RequestEntry::new(3, request(), CancelToken::new());
        for i in 0..(EVENT_LOG_CAP + 10) {
            entry.push_event(format!("{{\"n\":{i}}}"));
        }
        assert_eq!(entry.dropped_events(), 10);
        let (lines, _, _) = entry.events_wait(0, Duration::from_millis(1));
        assert_eq!(lines.len(), EVENT_LOG_CAP);
    }

    #[test]
    fn ids_are_monotonic_and_replay_reserves_past_them() {
        let reg = RequestRegistry::new();
        assert_eq!(reg.next_id(), 1);
        reg.reserve_through(40);
        assert_eq!(reg.next_id(), 41);
        // Reserving backwards never rewinds the allocator.
        reg.reserve_through(5);
        assert_eq!(reg.next_id(), 42);
    }

    #[test]
    fn status_json_reflects_the_phase() {
        let entry = RequestEntry::new(7, request(), CancelToken::new());
        let queued = entry.status_json();
        assert_eq!(queued.get("state").and_then(Json::as_str), Some("queued"));
        assert!(queued.get("record").is_none());
        entry.finish(
            false,
            Json::Obj(vec![("status".into(), Json::str("error"))]),
        );
        let done = entry.status_json();
        assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
        assert!(done.get("record").is_some());
    }
}
