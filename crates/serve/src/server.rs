//! The daemon: one listener, an admission-controlled queue, a worker
//! pool over [`JobRunner`], and the request journal.
//!
//! ## Request flow
//!
//! `POST /synthesize` → admission control (queue capacity, memory
//! backpressure → `429 Retry-After`) → write-ahead `submitted` journal
//! line → bounded queue → worker (`JobRunner::run`: shared warm cache,
//! fallback ladder, verification, panic containment) → `completed`
//! journal line → the blocked connection answers with the record.
//! While blocked, the connection probes its socket; a client that
//! disconnects cancels its request's search via [`CancelToken`].
//!
//! ## Shutdown
//!
//! The daemon shares the engine's two-stage semantics: the first
//! SIGINT (or [`ServeDaemon::drain`]) stops admitting and starting
//! work — queued requests finish as `skipped` (their waiting clients
//! get 503) while in-flight searches run to completion; a second
//! SIGINT ([`abort`](ServeDaemon::abort)) cancels in-flight searches
//! through their tokens. Work interrupted by abort is *not* journaled
//! as completed, so a restart replays it.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use rmrls_core::Budget;
use rmrls_engine::{
    Admission, BatchOptions, BatchTelemetry, JobRunner, SharedStore, ShutdownHandles,
    SAMPLE_INTERVAL,
};
use rmrls_obs::{Event, EventSink, Json, SyncCounter, SyncGauge};
use rmrls_telemetry::{
    read_request_limited, respond_to_error, write_response, write_stream_head, Request, Response,
    PROMETHEUS_CONTENT_TYPE,
};

use crate::journal::RequestJournal;
use crate::registry::{RequestEntry, RequestRegistry};
use crate::request::SynthesisRequest;

/// Per-connection socket timeout. Generous enough for slow POST
/// bodies, small enough that a stalled client cannot pin a connection
/// thread for long.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// How long the synthesize handler sleeps between completion checks
/// and client-liveness probes.
const WAIT_TICK: Duration = Duration::from_millis(150);

/// Telemetry job-board slots per worker: the board is a ring the
/// daemon relabels per request, sized so recently finished requests
/// stay visible on `/jobs` for a while.
const SLOTS_PER_WORKER: usize = 4;

/// Configuration of one daemon.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address (`127.0.0.1:0` binds an ephemeral port).
    pub addr: String,
    /// Worker threads executing requests (clamped to at least 1).
    pub workers: usize,
    /// Queued-request bound; beyond it new requests are shed with 429.
    pub queue_capacity: usize,
    /// Deadline for requests that do not carry their own
    /// `deadline_ms`. `None` leaves only the search's node budget.
    pub default_deadline: Option<Duration>,
    /// Largest accepted request body; larger POSTs get 413.
    pub max_body_bytes: usize,
    /// Request-journal path; `None` disables crash recovery.
    pub journal_path: Option<String>,
    /// Engine configuration shared by every request (cache sizing,
    /// canonicalization, verification, fallback ladder, budgets).
    pub batch: BatchOptions,
}

impl Default for ServeOptions {
    /// Ephemeral localhost port, two workers, a 16-deep queue, 256 KiB
    /// bodies, no journal, default engine options.
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            default_deadline: None,
            max_body_bytes: 256 * 1024,
            journal_path: None,
            batch: BatchOptions::default(),
        }
    }
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    telemetry: Arc<BatchTelemetry>,
    runner: JobRunner,
    registry: RequestRegistry,
    queue: Mutex<VecDeque<Arc<RequestEntry>>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    default_deadline: Option<Duration>,
    max_body_bytes: usize,
    /// The per-request search budget's memory caps, consulted at
    /// admission: when the sampled live-term gauge is over a cap, new
    /// requests are shed until it recedes.
    memory_budget: Budget,
    shutdown: ShutdownHandles,
    stop: AtomicBool,
    journal: Option<RequestJournal>,
    slots: usize,
    requests_total: Arc<SyncCounter>,
    bad_requests: Arc<SyncCounter>,
    requests_shed: Arc<SyncCounter>,
    requests_disconnected: Arc<SyncCounter>,
    requests_replayed: Arc<SyncCounter>,
    requests_completed: Arc<SyncCounter>,
    journal_append_errors: Arc<SyncCounter>,
    queue_depth: Arc<SyncGauge>,
    live_terms: Arc<SyncGauge>,
    cache_hit_rate: Arc<SyncGauge>,
    cache_hits: Arc<SyncCounter>,
    cache_misses: Arc<SyncCounter>,
    /// The durable circuit store (when `--store` is configured): the
    /// warm cache that survives restarts. Sampled into the
    /// `store_*` gauges each telemetry beat.
    store: Option<SharedStore>,
    store_entries: Arc<SyncGauge>,
    store_file_bytes: Arc<SyncGauge>,
    store_quarantined: Arc<SyncGauge>,
    store_verify_rejected: Arc<SyncGauge>,
    store_append_errors: Arc<SyncGauge>,
}

impl Shared {
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Arc<RequestEntry>>> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn draining(&self) -> bool {
        self.shutdown.draining()
    }

    /// Serve-specific `/healthz`: the batch degraded witnesses plus
    /// live admission state.
    fn healthz_json(&self) -> String {
        let degraded = self.telemetry.degraded();
        Json::Obj(vec![
            (
                "status".to_string(),
                Json::str(if degraded { "degraded" } else { "ok" }),
            ),
            ("degraded".to_string(), Json::Bool(degraded)),
            ("draining".to_string(), Json::Bool(self.draining())),
            (
                "queue_depth".to_string(),
                Json::uint(self.lock_queue().len() as u64),
            ),
            (
                "requests_total".to_string(),
                Json::uint(self.requests_total.get()),
            ),
            (
                "requests_completed".to_string(),
                Json::uint(self.requests_completed.get()),
            ),
            (
                "requests_shed".to_string(),
                Json::uint(self.requests_shed.get()),
            ),
        ])
        .to_string()
    }
}

/// Streams search progress events into the request's bounded log.
struct EntrySink {
    entry: Arc<RequestEntry>,
}

impl EventSink for EntrySink {
    fn emit(&mut self, event: Event) {
        self.entry.push_event(event.to_json().to_string());
    }
}

/// A running synthesis daemon.
pub struct ServeDaemon {
    shared: Arc<Shared>,
    addr: SocketAddr,
    workers: Vec<JoinHandle<()>>,
    aux: Vec<JoinHandle<()>>,
}

impl ServeDaemon {
    /// Binds the listener, replays the journal if one is configured,
    /// and starts the worker pool, accept loop, gauge sampler, and
    /// SIGINT monitor. `shutdown` carries the daemon's drain/abort
    /// tokens (use [`ShutdownHandles::install_sigint`] in the CLI, a
    /// plain [`ShutdownHandles::new`] in tests).
    pub fn start(opts: ServeOptions, shutdown: ShutdownHandles) -> Result<ServeDaemon, String> {
        let workers = opts.workers.max(1);
        let slots = workers * SLOTS_PER_WORKER;
        let telemetry = Arc::new(BatchTelemetry::new(vec!["idle".to_string(); slots]));
        telemetry.set_workers_total(workers as u64);
        let mut batch = opts.batch.clone();
        batch.telemetry = Some(Arc::clone(&telemetry));
        let memory_budget = batch.synthesis.budget.clone();
        let store = batch.store.clone();
        let runner = JobRunner::new(batch);

        let registry = RequestRegistry::new();
        let mut replayed: Vec<Arc<RequestEntry>> = Vec::new();
        let journal = match &opts.journal_path {
            None => None,
            Some(path) => {
                let (journal, replay) = RequestJournal::open(path)?;
                registry.reserve_through(replay.max_id);
                for (id, request, cache_hit, record) in replay.completed {
                    registry.insert(Arc::new(RequestEntry::finished(
                        id, request, cache_hit, record,
                    )));
                }
                for (id, request) in replay.pending {
                    let entry = Arc::new(RequestEntry::new(id, request, shutdown.abort.child()));
                    registry.insert(Arc::clone(&entry));
                    replayed.push(entry);
                }
                Some(journal)
            }
        };

        let listener =
            TcpListener::bind(&opts.addr).map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve bound address: {e}"))?;

        let r = telemetry.registry();
        let shared = Arc::new(Shared {
            runner,
            registry,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: opts.queue_capacity.max(1),
            default_deadline: opts.default_deadline,
            max_body_bytes: opts.max_body_bytes,
            memory_budget,
            shutdown,
            stop: AtomicBool::new(false),
            journal,
            slots,
            requests_total: r.counter("requests_total"),
            bad_requests: r.counter("serve_bad_requests"),
            requests_shed: r.counter("requests_shed"),
            requests_disconnected: r.counter("requests_disconnected"),
            requests_replayed: r.counter("requests_replayed"),
            requests_completed: r.counter("requests_completed"),
            journal_append_errors: r.counter("journal_append_errors"),
            queue_depth: r.gauge("admission_queue_depth"),
            live_terms: r.gauge("live_terms"),
            cache_hit_rate: r.gauge("cache_hit_rate_percent"),
            cache_hits: r.counter("cache_hits"),
            cache_misses: r.counter("cache_misses"),
            store,
            store_entries: r.gauge("store_entries"),
            store_file_bytes: r.gauge("store_file_bytes"),
            store_quarantined: r.gauge("store_quarantined_records"),
            store_verify_rejected: r.gauge("store_verify_rejected"),
            store_append_errors: r.gauge("store_append_errors"),
            telemetry,
        });
        sample_once(&shared);

        if !replayed.is_empty() {
            shared.requests_replayed.add(replayed.len() as u64);
            let mut q = shared.lock_queue();
            q.extend(replayed);
            shared.queue_depth.set(q.len() as u64);
        }

        let spawn = |name: String, f: Box<dyn FnOnce() + Send>| -> Result<JoinHandle<()>, String> {
            std::thread::Builder::new()
                .name(name.clone())
                .spawn(f)
                .map_err(|e| format!("cannot spawn {name}: {e}"))
        };

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(spawn(
                format!("rmrls-serve-worker-{i}"),
                Box::new(move || worker_loop(&shared)),
            )?);
        }
        let mut aux = Vec::with_capacity(3);
        {
            let shared = Arc::clone(&shared);
            aux.push(spawn(
                "rmrls-serve-accept".to_string(),
                Box::new(move || accept_loop(&shared, &listener)),
            )?);
        }
        {
            let shared = Arc::clone(&shared);
            aux.push(spawn(
                "rmrls-serve-sampler".to_string(),
                Box::new(move || sampler_loop(&shared)),
            )?);
        }
        {
            let shared = Arc::clone(&shared);
            aux.push(spawn(
                "rmrls-serve-signals".to_string(),
                Box::new(move || signal_loop(&shared)),
            )?);
        }

        Ok(ServeDaemon {
            shared,
            addr,
            workers: worker_handles,
            aux,
        })
    }

    /// The bound listen address (real port even for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live telemetry board behind `/metrics`, `/healthz`, `/jobs`.
    pub fn telemetry(&self) -> &Arc<BatchTelemetry> {
        &self.shared.telemetry
    }

    /// Requests accepted so far (all phases).
    pub fn requests_known(&self) -> usize {
        self.shared.registry.len()
    }

    /// Requests a drain: stop admitting and starting work, finish
    /// what is in flight. Equivalent to the first SIGINT.
    pub fn drain(&self) {
        self.shared.shutdown.drain.cancel();
        self.shared.queue_cv.notify_all();
    }

    /// Aborts: drain plus cancellation of in-flight searches.
    /// Equivalent to the second SIGINT.
    pub fn abort(&self) {
        self.shared.shutdown.drain.cancel();
        self.shared.shutdown.abort.cancel();
        self.shared.queue_cv.notify_all();
    }

    /// Blocks until the daemon has drained (after [`drain`]
    /// (ServeDaemon::drain), [`abort`](ServeDaemon::abort), or
    /// SIGINT), then tears down the listener and helper threads.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        // `accept` has no timeout; one throwaway self-connection wakes
        // the loop so it observes the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        for t in self.aux.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServeDaemon {
    /// A dropped daemon aborts: tests and early-exit paths must not
    /// hang on a worker waiting for requests that will never come.
    fn drop(&mut self) {
        if self.workers.is_empty() && self.aux.is_empty() {
            return;
        }
        self.shared.shutdown.drain.cancel();
        self.shared.shutdown.abort.cancel();
        self.shared.queue_cv.notify_all();
        self.join_all();
    }
}

/// Pops queued requests and runs them; exits once draining and empty.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let entry = {
            let mut q = shared.lock_queue();
            loop {
                if let Some(e) = q.pop_front() {
                    shared.queue_depth.set(q.len() as u64);
                    break Some(e);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        };
        let Some(entry) = entry else { return };
        if shared.draining() {
            // Drain stops *starting* work: the request stays only as a
            // journaled `submitted` line, so a restart replays it. The
            // skipped record unblocks its waiting client with a 503.
            entry.finish(false, skipped_record(&entry));
            continue;
        }
        run_entry(shared, &entry);
    }
}

fn skipped_record(entry: &RequestEntry) -> Json {
    Json::Obj(vec![
        ("job".to_string(), Json::str(&entry.request.name)),
        (
            "origin".to_string(),
            Json::str(format!("request:{}", entry.id)),
        ),
        ("status".to_string(), Json::str("skipped")),
    ])
}

/// Executes one request on the engine's single-job path.
fn run_entry(shared: &Arc<Shared>, entry: &Arc<RequestEntry>) {
    entry.set_running();
    let slot = (entry.id as usize) % shared.slots;
    shared.telemetry.jobs.assign(slot, &entry.request.name);
    let admission: Admission = entry.request.admit(entry.id);
    let deadline = entry
        .request
        .deadline_ms
        .map(Duration::from_millis)
        .or(shared.default_deadline);
    let sink_entry = Arc::clone(entry);
    let factory = move || -> Box<dyn EventSink> {
        Box::new(EntrySink {
            entry: Arc::clone(&sink_entry),
        })
    };
    let record = shared.runner.run(
        &admission,
        deadline,
        &entry.cancel,
        Some(slot),
        Some(&factory),
    );
    let cache_hit = record.cache_hit;
    let json = record.to_json();
    // Abort-cancelled work is deliberately left incomplete in the
    // journal: the restart replays it, which is the crash-consistency
    // contract. Every other outcome (including a client-disconnect
    // cancellation) is final and journaled.
    if !shared.shutdown.abort.is_cancelled() {
        if let Some(journal) = &shared.journal {
            if journal
                .append_completed(entry.id, cache_hit, &json)
                .is_err()
            {
                shared.journal_append_errors.inc();
            }
        }
    }
    shared.requests_completed.inc();
    entry.finish(cache_hit, json);
}

/// Publishes live gauges every [`SAMPLE_INTERVAL`].
fn sampler_loop(shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        sample_once(shared);
        std::thread::sleep(SAMPLE_INTERVAL);
    }
}

fn sample_once(shared: &Shared) {
    let cache_entries = shared.runner.cache().map(|c| c.len() as u64);
    shared.telemetry.sample(cache_entries);
    let hits = shared.cache_hits.get();
    let total = hits + shared.cache_misses.get();
    if let Some(rate) = (hits * 100).checked_div(total) {
        shared.cache_hit_rate.set(rate);
    }
    if let Some(store) = &shared.store {
        let st = store.stats();
        shared.store_entries.set(st.entries);
        shared.store_file_bytes.set(st.file_bytes);
        shared.store_quarantined.set(st.quarantined_records);
        shared.store_verify_rejected.set(st.verify_rejected);
        shared.store_append_errors.set(st.append_errors);
    }
}

/// Maps SIGINT counts onto the drain/abort tokens (same cadence as
/// the batch engine's in-loop polling, which has no loop to piggyback
/// on here).
fn signal_loop(shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        shared.shutdown.poll_signals();
        if shared.draining() {
            shared.queue_cv.notify_all();
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(shared);
        // Connection threads are detached: each one answers exactly one
        // request and exits; the ones blocked on a running job are
        // unblocked by the worker's `finish` even during teardown.
        let _ = std::thread::Builder::new()
            .name("rmrls-serve-conn".to_string())
            .spawn(move || handle_conn(&shared, stream));
    }
}

fn handle_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let request = match read_request_limited(&mut stream, shared.max_body_bytes) {
        Ok(r) => r,
        Err(e) => {
            if !e.is_timeout() {
                shared.bad_requests.inc();
            }
            respond_to_error(&stream, &e);
            return;
        }
    };
    shared.requests_total.inc();
    let head = request.method == "HEAD";
    let respond = |stream: &mut TcpStream, resp: Response| {
        let _ = write_response(stream, &resp, head);
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/synthesize") => handle_synthesize(shared, &mut stream, &request),
        ("GET" | "HEAD", "/metrics") => respond(
            &mut stream,
            Response::ok(PROMETHEUS_CONTENT_TYPE, shared.telemetry.metrics_text()),
        ),
        ("GET" | "HEAD", "/healthz") => {
            let status = if shared.telemetry.degraded() {
                503
            } else {
                200
            };
            respond(&mut stream, Response::json(status, shared.healthz_json()));
        }
        ("GET" | "HEAD", "/jobs") => respond(
            &mut stream,
            Response::json(200, shared.telemetry.jobs_json()),
        ),
        ("GET" | "HEAD", path) if path.starts_with("/requests/") => {
            handle_request_lookup(shared, &mut stream, path, head)
        }
        (_, "/synthesize") => {
            shared.bad_requests.inc();
            respond(
                &mut stream,
                Response::text(405, "use POST /synthesize").with_header("Allow", "POST"),
            );
        }
        ("POST", _) => {
            shared.bad_requests.inc();
            respond(
                &mut stream,
                Response::text(405, "only /synthesize accepts POST")
                    .with_header("Allow", "GET, HEAD"),
            );
        }
        _ => respond(&mut stream, Response::text(404, "not found")),
    }
}

/// `GET /requests/<id>` (status) and `GET /requests/<id>/events`
/// (live JSONL progress stream).
fn handle_request_lookup(shared: &Arc<Shared>, stream: &mut TcpStream, path: &str, head: bool) {
    let rest = &path["/requests/".len()..];
    let (id_text, events) = match rest.strip_suffix("/events") {
        Some(prefix) => (prefix, true),
        None => (rest, false),
    };
    let entry = id_text
        .parse::<u64>()
        .ok()
        .and_then(|id| shared.registry.get(id));
    let Some(entry) = entry else {
        let _ = write_response(stream, &Response::text(404, "no such request"), head);
        return;
    };
    if !events {
        let resp = Response::json(200, entry.status_json().to_string());
        let _ = write_response(stream, &resp, head);
        return;
    }
    if write_stream_head(&mut *stream, 200, "application/x-ndjson").is_err() || head {
        return;
    }
    let mut from = 0;
    loop {
        let (lines, next, done) = entry.events_wait(from, Duration::from_millis(200));
        for line in &lines {
            if stream
                .write_all(line.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .and_then(|()| stream.flush())
                .is_err()
            {
                return;
            }
        }
        from = next;
        if done && lines.is_empty() {
            return;
        }
    }
}

/// The submit path: admission control, journal, enqueue, block until
/// the record is final (probing the socket so a vanished client
/// cancels its search instead of wasting a worker).
fn handle_synthesize(shared: &Arc<Shared>, stream: &mut TcpStream, http: &Request) {
    if shared.draining() {
        let _ = write_response(
            stream,
            &Response::json(503, r#"{"error":"draining"}"#.to_string()),
            false,
        );
        return;
    }
    let parsed = http
        .body_str()
        .map_err(|e| e.to_string())
        .and_then(SynthesisRequest::from_json_str);
    let request = match parsed {
        Ok(r) => r,
        Err(message) => {
            shared.bad_requests.inc();
            let body = Json::Obj(vec![("error".to_string(), Json::Str(message))]).to_string();
            let _ = write_response(stream, &Response::json(400, body), false);
            return;
        }
    };
    // Pre-admit: a malformed spec (bad permutation, unparsable TFC,
    // width over the caps, unknown benchmark) is rejected here with a
    // 400 instead of burning a queue slot. Valid specs are re-admitted
    // by the worker on the unchanged engine path.
    if let Admission::Error { message, .. } = request.admit(0) {
        shared.bad_requests.inc();
        let body = Json::Obj(vec![
            ("error".to_string(), Json::str("bad spec")),
            ("message".to_string(), Json::Str(message)),
        ])
        .to_string();
        let _ = write_response(stream, &Response::json(400, body), false);
        return;
    }

    // Admission control: a full queue or breached memory caps shed the
    // request. `Retry-After: 1` matches the sampler cadence — by the
    // next beat the gauges reflect any recovery.
    let queue_len = shared.lock_queue().len();
    let memory_shed = shared.memory_budget.memory_limited()
        && shared
            .memory_budget
            .memory_breached(shared.live_terms.get(), 0);
    if queue_len >= shared.queue_capacity || memory_shed {
        shared.requests_shed.inc();
        shared.telemetry.set_backpressure(true);
        let reason = if memory_shed { "memory" } else { "queue full" };
        let body = Json::Obj(vec![
            ("error".to_string(), Json::str("overloaded")),
            ("reason".to_string(), Json::str(reason)),
        ])
        .to_string();
        let resp = Response::json(429, body).with_header("Retry-After", "1");
        let _ = write_response(stream, &resp, false);
        return;
    }
    shared.telemetry.set_backpressure(false);

    if let Err(e) = rmrls_obs::fail::trigger("serve/admission/enqueue") {
        let body = Json::Obj(vec![(
            "error".to_string(),
            Json::Str(format!("admission failed: {e}")),
        )])
        .to_string();
        let _ = write_response(stream, &Response::json(503, body), false);
        return;
    }

    let id = shared.registry.next_id();
    let entry = Arc::new(RequestEntry::new(
        id,
        request,
        shared.shutdown.abort.child(),
    ));
    shared.registry.insert(Arc::clone(&entry));
    // Write-ahead: the journal knows about the request before any
    // worker can touch it. An append failure degrades health but does
    // not fail the request — only crash recovery is weakened.
    if let Some(journal) = &shared.journal {
        if journal.append_submitted(id, &entry.request).is_err() {
            shared.journal_append_errors.inc();
        }
    }
    {
        let mut q = shared.lock_queue();
        q.push_back(Arc::clone(&entry));
        shared.queue_depth.set(q.len() as u64);
    }
    shared.queue_cv.notify_one();

    while !entry.wait_done(WAIT_TICK) {
        if client_gone(stream) {
            entry.cancel.cancel();
            shared.requests_disconnected.inc();
            return;
        }
    }
    let Some((cache_hit, record)) = entry.result() else {
        return;
    };
    if record.get("status").and_then(Json::as_str) == Some("skipped") {
        let body = Json::Obj(vec![
            ("error".to_string(), Json::str("draining")),
            ("id".to_string(), Json::uint(id)),
        ])
        .to_string();
        let _ = write_response(stream, &Response::json(503, body), false);
        return;
    }
    let body = Json::Obj(vec![
        ("id".to_string(), Json::uint(id)),
        ("cache_hit".to_string(), Json::Bool(cache_hit)),
        ("record".to_string(), record),
    ])
    .to_string();
    let _ = write_response(stream, &Response::json(200, body), false);
}

/// Probes the socket for client liveness without consuming request
/// data (the request is fully read; anything else the peer sends is
/// protocol noise). EOF or a hard error means the client is gone.
fn client_gone(stream: &TcpStream) -> bool {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    let mut probe = [0u8; 1];
    let gone = match (&*stream).read(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) => !matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
    };
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    gone
}
