//! The durable circuit store under the serve daemon: the warm cache
//! survives restarts (a second incarnation serves circuits the first
//! one solved, byte-identical and verified), and the store's health is
//! visible on `/metrics`.

mod common;

use common::{easy_body, get, post, scratch};
use rmrls_engine::{BatchOptions, SharedStore, ShutdownHandles};
use rmrls_obs::Json;
use rmrls_serve::{ServeDaemon, ServeOptions};

fn start_with_store(store: SharedStore) -> ServeDaemon {
    let batch = BatchOptions {
        store: Some(store),
        store_provenance: "serve".to_string(),
        ..BatchOptions::default()
    };
    let opts = ServeOptions {
        batch,
        ..ServeOptions::default()
    };
    ServeDaemon::start(opts, ShutdownHandles::new()).expect("daemon starts")
}

#[test]
fn the_warm_cache_survives_a_restart_through_the_store() {
    let dir = scratch("serve-store");
    let path = dir.join("circuits.store").to_string_lossy().into_owned();

    // First life: solve once, persisting the circuit.
    let store = SharedStore::open(&path).expect("store opens");
    let daemon = start_with_store(store);
    let addr = daemon.local_addr();
    let first = post(addr, "/synthesize", &easy_body("first-life"));
    assert_eq!(first.status, 200, "{}", first.body);
    let j1 = first.json();
    assert_eq!(j1.get("cache_hit"), Some(&Json::Bool(false)));
    let circuit1 = j1
        .get("record")
        .and_then(|r| r.get("circuit"))
        .expect("solved record")
        .to_string();
    daemon.drain();
    daemon.wait();

    // Second life: a fresh process-worth of state (new LRU, new
    // daemon), same store file. The request is served as a hit with a
    // byte-identical circuit — the store re-verified it on open.
    let store = SharedStore::open(&path).expect("store reopens");
    assert_eq!(store.len(), 1, "the first life's circuit persisted");
    let daemon2 = start_with_store(store);
    let addr2 = daemon2.local_addr();
    let second = post(addr2, "/synthesize", &easy_body("second-life"));
    assert_eq!(second.status, 200, "{}", second.body);
    let j2 = second.json();
    assert_eq!(
        j2.get("cache_hit"),
        Some(&Json::Bool(true)),
        "{}",
        second.body
    );
    let circuit2 = j2
        .get("record")
        .and_then(|r| r.get("circuit"))
        .expect("solved record")
        .to_string();
    assert_eq!(circuit1, circuit2, "circuits byte-identical across lives");

    // Store health rides on /metrics (gauges are primed at startup,
    // before the first sampler beat).
    let metrics = get(addr2, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains("rmrls_store_entries 1"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("rmrls_store_quarantined_records 0"),
        "{}",
        metrics.body
    );

    daemon2.drain();
    daemon2.wait();
}
