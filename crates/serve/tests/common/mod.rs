//! Shared helpers for the serve integration tests: a tiny blocking
//! HTTP client over raw `TcpStream`s (the daemon speaks
//! `Connection: close` HTTP/1.1, so one request is one socket).

// Each test binary uses its own subset of these helpers.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rmrls_obs::Json;

/// One parsed response.
pub struct Reply {
    pub status: u16,
    pub head: String,
    pub body: String,
}

impl Reply {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<String> {
        let needle = format!("{}:", name.to_ascii_lowercase());
        self.head.lines().find_map(|l| {
            l.to_ascii_lowercase()
                .starts_with(&needle)
                .then(|| l[needle.len()..].trim().to_string())
        })
    }

    /// The body parsed as JSON (panics on malformed bodies — tests
    /// always expect JSON where they call this).
    pub fn json(&self) -> Json {
        Json::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body {:?}: {e}", self.body))
    }
}

/// Sends raw bytes, reads the connection to EOF, parses the response.
pub fn send_raw(addr: SocketAddr, raw: &[u8]) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    parse_reply(&text)
}

pub fn parse_reply(text: &str) -> Reply {
    let (head, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {text:?}"));
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    Reply {
        status,
        head: head.to_string(),
        body: body.to_string(),
    }
}

/// `GET path` against the daemon.
pub fn get(addr: SocketAddr, path: &str) -> Reply {
    send_raw(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

/// `POST path` with a body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Reply {
    send_raw(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Opens a POST but returns the live socket instead of waiting for
/// the reply (for disconnect/cancellation tests).
pub fn post_open(addr: SocketAddr, path: &str, body: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write request");
    stream
}

/// A scratch directory unique to this test.
pub fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rmrls-serve-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Polls `GET /requests/<id>` until its state matches, panicking
/// after `tries` rounds of 50 ms.
pub fn wait_for_state(addr: SocketAddr, id: u64, want: &str, tries: usize) -> Json {
    for _ in 0..tries {
        let reply = get(addr, &format!("/requests/{id}"));
        if reply.status == 200 {
            let json = reply.json();
            if json.get("state").and_then(Json::as_str) == Some(want) {
                return json;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("request {id} never reached state {want:?}");
}

/// An easy 3-wire spec body the search solves instantly.
pub fn easy_body(name: &str) -> String {
    format!(r#"{{"kind":"perm","spec":"1,0,3,2,5,4,7,6","name":"{name}"}}"#)
}

/// A scrambled 6-wire spec the search cannot finish quickly — used
/// with [`hard_opts`] to hold a worker busy for
/// cancellation/backpressure tests.
pub fn hard_body(name: &str) -> String {
    format!(
        r#"{{"kind":"perm","spec":"41,60,9,25,63,3,4,52,34,6,23,37,58,32,13,2,5,27,26,57,15,47,35,46,51,36,7,14,39,62,59,38,48,17,40,44,61,49,28,30,33,18,29,24,42,53,54,11,22,8,16,1,21,0,45,43,56,19,55,50,31,12,20,10","name":"{name}"}}"#
    )
}

/// Options for tests that park a [`hard_body`] request on a worker:
/// one worker, an effectively unbounded node budget (so the job ends
/// only by deadline or cancellation), and a 60 s safety deadline.
pub fn hard_opts() -> rmrls_serve::ServeOptions {
    let mut opts = rmrls_serve::ServeOptions {
        workers: 1,
        default_deadline: Some(Duration::from_secs(60)),
        ..rmrls_serve::ServeOptions::default()
    };
    opts.batch.synthesis = opts.batch.synthesis.clone().with_max_nodes(u64::MAX / 2);
    opts
}
