//! SIGINT semantics, isolated in their own test binary because the
//! simulated SIGINT counter is process-global: any daemon in the same
//! process would observe it and drain. Tests here still serialize on
//! a mutex for the same reason.

mod common;

use std::sync::Mutex;
use std::time::Duration;

use common::{easy_body, hard_body, post, post_open, scratch, wait_for_state};
use rmrls_engine::signal::{reset_sigint_count, simulate_sigint};
use rmrls_engine::ShutdownHandles;
use rmrls_serve::{RequestJournal, ServeDaemon, ServeOptions};

static GUARD: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn one_sigint_drains_cleanly_with_a_settled_journal() {
    let _g = serial();
    reset_sigint_count();
    let dir = scratch("sigint-drain");
    let journal_path = dir.join("requests.jsonl").to_string_lossy().into_owned();
    let opts = ServeOptions {
        journal_path: Some(journal_path.clone()),
        ..ServeOptions::default()
    };
    let daemon = ServeDaemon::start(opts, ShutdownHandles::new()).expect("daemon starts");
    let addr = daemon.local_addr();
    let reply = post(addr, "/synthesize", &easy_body("before-sigint"));
    assert_eq!(reply.status, 200, "{}", reply.body);

    simulate_sigint();
    // Must return: the signal monitor maps the count onto the drain
    // token, the idle workers observe it and exit.
    daemon.wait();
    reset_sigint_count();

    let (_h, replay) = RequestJournal::open(&journal_path).expect("journal reopens");
    assert!(replay.pending.is_empty());
    assert_eq!(replay.completed.len(), 1);
}

#[test]
fn a_second_sigint_aborts_in_flight_work_for_replay() {
    let _g = serial();
    reset_sigint_count();
    let dir = scratch("sigint-abort");
    let journal_path = dir.join("requests.jsonl").to_string_lossy().into_owned();
    let opts = ServeOptions {
        workers: 1,
        journal_path: Some(journal_path.clone()),
        default_deadline: Some(Duration::from_secs(60)),
        ..ServeOptions::default()
    };
    let daemon = ServeDaemon::start(opts, ShutdownHandles::new()).expect("daemon starts");
    let addr = daemon.local_addr();
    let _open = post_open(addr, "/synthesize", &hard_body("interrupted"));
    wait_for_state(addr, 1, "running", 200);

    simulate_sigint();
    simulate_sigint();
    daemon.wait();
    reset_sigint_count();

    // Aborted work is left pending in the journal: the crash-recovery
    // contract is that the next life replays it.
    let (_h, replay) = RequestJournal::open(&journal_path).expect("journal reopens");
    assert_eq!(replay.pending.len(), 1);
    assert!(replay.completed.is_empty());
}
