//! Serve-site fault injection (`--features failpoints`): the two
//! daemon failpoints must degrade gracefully — a journal append
//! failure serves the request anyway (weakened crash recovery,
//! degraded health), an admission failure is a clean 503 and the
//! daemon keeps serving. The failpoint registry is process-global, so
//! tests serialize on a mutex.

#![cfg(feature = "failpoints")]

mod common;

use std::sync::Mutex;

use common::{easy_body, get, post, scratch};
use rmrls_engine::ShutdownHandles;
use rmrls_obs::{fail, Json};
use rmrls_serve::{ServeDaemon, ServeOptions};

static GUARD: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn a_journal_append_fault_degrades_health_but_still_serves() {
    let _g = serial();
    let dir = scratch("fault-journal");
    let journal_path = dir.join("requests.jsonl").to_string_lossy().into_owned();
    let opts = ServeOptions {
        journal_path: Some(journal_path),
        ..ServeOptions::default()
    };
    let daemon = ServeDaemon::start(opts, ShutdownHandles::new()).expect("daemon starts");
    let addr = daemon.local_addr();

    fail::configure("serve/journal/append=err").unwrap();
    let reply = post(addr, "/synthesize", &easy_body("despite-fault"));
    fail::clear();

    // The request is served — only crash recovery is weakened.
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(
        reply
            .json()
            .get("record")
            .and_then(|r| r.get("status"))
            .and_then(Json::as_str),
        Some("solved")
    );
    // ... and the weakening is visible: degraded health, counted.
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 503);
    assert_eq!(health.json().get("degraded"), Some(&Json::Bool(true)));
    let metrics = get(addr, "/metrics");
    let errors = metrics
        .body
        .lines()
        .find(|l| l.starts_with("rmrls_journal_append_errors "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("journal_append_errors metric");
    assert!(errors >= 1, "{}", metrics.body);

    daemon.drain();
    daemon.wait();
}

#[test]
fn an_admission_enqueue_fault_is_a_clean_503() {
    let _g = serial();
    let daemon =
        ServeDaemon::start(ServeOptions::default(), ShutdownHandles::new()).expect("daemon starts");
    let addr = daemon.local_addr();

    fail::configure("serve/admission/enqueue=err").unwrap();
    let rejected = post(addr, "/synthesize", &easy_body("rejected"));
    fail::clear();
    assert_eq!(rejected.status, 503, "{}", rejected.body);
    assert!(
        rejected.body.contains("admission failed"),
        "{}",
        rejected.body
    );

    // The fault touched nothing durable: the next request sails through.
    let accepted = post(addr, "/synthesize", &easy_body("accepted"));
    assert_eq!(accepted.status, 200, "{}", accepted.body);

    daemon.drain();
    daemon.wait();
}
