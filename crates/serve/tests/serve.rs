//! End-to-end daemon tests over real sockets: submit/cache-hit
//! semantics, malformed-request handling, client-disconnect
//! cancellation, admission backpressure, and drain + journal replay.

mod common;

use std::time::Duration;

use common::{
    easy_body, get, hard_body, hard_opts, post, post_open, scratch, send_raw, wait_for_state,
};
use rmrls_engine::ShutdownHandles;
use rmrls_obs::Json;
use rmrls_serve::{RequestJournal, ServeDaemon, ServeOptions};

fn start(opts: ServeOptions) -> ServeDaemon {
    ServeDaemon::start(opts, ShutdownHandles::new()).expect("daemon starts")
}

#[test]
fn resubmitting_a_spec_is_a_verified_byte_identical_cache_hit() {
    let daemon = start(ServeOptions::default());
    let addr = daemon.local_addr();

    let first = post(addr, "/synthesize", &easy_body("a"));
    assert_eq!(first.status, 200, "{}", first.body);
    let j1 = first.json();
    assert_eq!(j1.get("cache_hit"), Some(&Json::Bool(false)));
    let r1 = j1.get("record").expect("record");
    assert_eq!(r1.get("status").and_then(Json::as_str), Some("solved"));
    assert_eq!(r1.get("verified"), Some(&Json::Bool(true)));
    assert_eq!(r1.get("solved_by").and_then(Json::as_str), Some("rmrls"));

    // Same spec, different name: served from the warm shared cache
    // with identical attribution and a byte-identical circuit.
    let second = post(addr, "/synthesize", &easy_body("b"));
    assert_eq!(second.status, 200, "{}", second.body);
    let j2 = second.json();
    assert_eq!(j2.get("cache_hit"), Some(&Json::Bool(true)));
    let r2 = j2.get("record").expect("record");
    assert_eq!(r1.get("solved_by"), r2.get("solved_by"));
    assert_eq!(r1.get("circuit"), r2.get("circuit"));
    assert_eq!(
        r1.get("circuit").map(|c| c.to_string()),
        r2.get("circuit").map(|c| c.to_string()),
        "serialized circuits must be byte-identical"
    );

    // The status endpoint and the event stream agree.
    let id = j1.get("id").and_then(Json::as_u64).expect("id");
    let status = get(addr, &format!("/requests/{id}")).json();
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(status.get("cache_hit"), Some(&Json::Bool(false)));
    let events = get(addr, &format!("/requests/{id}/events"));
    assert_eq!(events.status, 200);
    assert!(
        events
            .body
            .lines()
            .last()
            .unwrap_or("")
            .contains("request_done"),
        "stream must end with the terminal line: {}",
        events.body
    );

    // Cache attribution is visible on /metrics.
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains("rmrls_cache_hits 1"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("rmrls_requests_total"),
        "{}",
        metrics.body
    );

    daemon.drain();
    daemon.wait();
}

#[test]
fn telemetry_routes_report_service_state() {
    let daemon = start(ServeOptions::default());
    let addr = daemon.local_addr();
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    let json = health.json();
    assert_eq!(json.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(json.get("draining"), Some(&Json::Bool(false)));
    assert!(json.get("queue_depth").is_some());
    let jobs = get(addr, "/jobs");
    assert_eq!(jobs.status, 200);
    assert!(matches!(jobs.json(), Json::Arr(_)));
    assert_eq!(get(addr, "/nowhere").status, 404);
    assert_eq!(get(addr, "/requests/999").status, 404);
    assert_eq!(get(addr, "/requests/not-a-number").status, 404);
}

#[test]
fn malformed_requests_get_clean_errors_and_the_daemon_survives() {
    let daemon = start(ServeOptions::default());
    let addr = daemon.local_addr();

    // Unsupported method (parser level).
    let put = send_raw(addr, b"PUT /synthesize HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(put.status, 405);
    assert_eq!(put.header("Allow").as_deref(), Some("GET, HEAD, POST"));

    // Method/route mismatches.
    let get_synth = get(addr, "/synthesize");
    assert_eq!(get_synth.status, 405);
    assert_eq!(get_synth.header("Allow").as_deref(), Some("POST"));
    assert_eq!(post(addr, "/metrics", "{}").status, 405);

    // Truncated head: the daemon closes without a response (nothing to
    // answer), and must keep serving.
    {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"POST /synthe").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert_eq!(out, "", "a half request earns no response");
    }

    // Truncated body: the client half-closes mid-body, so the parser
    // sees EOF short of the declared Content-Length.
    {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(b"POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: 50\r\n\r\n{\"kind\"")
            .unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        assert_eq!(common::parse_reply(&text).status, 400, "{text}");
    }

    // Bad JSON, bad spec, unparsable TFC, width over the caps.
    let bad_json = post(addr, "/synthesize", "not json at all");
    assert_eq!(bad_json.status, 400);
    assert!(
        bad_json.body.contains("not valid JSON"),
        "{}",
        bad_json.body
    );
    let bad_perm = post(addr, "/synthesize", r#"{"kind":"perm","spec":"0,0,0"}"#);
    assert_eq!(bad_perm.status, 400);
    assert!(bad_perm.body.contains("bad spec"), "{}", bad_perm.body);
    let bad_tfc = post(
        addr,
        "/synthesize",
        r#"{"kind":"tfc","spec":".v a,b\nBEGIN\nt2 a,z\nEND\n"}"#,
    );
    assert_eq!(bad_tfc.status, 400);
    let wide_names: Vec<String> = (0..17).map(|i| format!("w{i}")).collect();
    let wide_tfc = format!(
        r#"{{"kind":"tfc","spec":".v {}\nBEGIN\nEND\n"}}"#,
        wide_names.join(",")
    );
    let too_wide = post(addr, "/synthesize", &wide_tfc);
    assert_eq!(too_wide.status, 400, "{}", too_wide.body);

    // Oversized body.
    let mut opts_check = String::from(r#"{"kind":"perm","spec":""#);
    opts_check.push_str(&"9,".repeat(200 * 1024));
    opts_check.push_str(r#""}"#);
    let huge = post(addr, "/synthesize", &opts_check);
    assert_eq!(huge.status, 413);

    // Every rejection was counted and none of them wedged the daemon.
    let metrics = get(addr, "/metrics");
    let bad_line = metrics
        .body
        .lines()
        .find(|l| l.starts_with("rmrls_serve_bad_requests "))
        .expect("serve_bad_requests metric");
    let count: u64 = bad_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(count >= 6, "want >= 6 bad requests, got {count}");
    let ok = post(addr, "/synthesize", &easy_body("still-alive"));
    assert_eq!(ok.status, 200, "{}", ok.body);

    daemon.drain();
    daemon.wait();
}

#[test]
fn content_length_edge_cases_get_clean_errors() {
    let daemon = start(ServeOptions {
        max_body_bytes: 1024,
        ..ServeOptions::default()
    });
    let addr = daemon.local_addr();

    // A POST with no Content-Length parses as an empty body, which is
    // not valid JSON — a 400, not a hang waiting for bytes.
    let missing = send_raw(addr, b"POST /synthesize HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(missing.status, 400, "{}", missing.body);
    assert!(missing.body.contains("not valid JSON"), "{}", missing.body);

    // Non-numeric and negative lengths are malformed.
    let bad = send_raw(
        addr,
        b"POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: ten\r\n\r\n",
    );
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(bad.body.contains("Content-Length"), "{}", bad.body);
    let negative = send_raw(
        addr,
        b"POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: -5\r\n\r\n",
    );
    assert_eq!(negative.status, 400, "{}", negative.body);

    // An oversized *declared* length is refused from the header alone:
    // the 413 arrives although no body byte was ever sent.
    let declared = send_raw(
        addr,
        b"POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert_eq!(declared.status, 413, "{}", declared.body);

    // The daemon shrugged all of it off.
    let ok = post(addr, "/synthesize", &easy_body("fine"));
    assert_eq!(ok.status, 200, "{}", ok.body);

    daemon.drain();
    daemon.wait();
}

#[test]
fn a_slow_loris_body_is_cut_off_by_the_read_timeout() {
    use std::io::{Read, Write};

    let daemon = start(ServeOptions::default());
    let addr = daemon.local_addr();

    // Send a complete head that promises a body, then stall with the
    // socket held open. The server's read timeout must cut the
    // connection (no response — nobody honest is listening) without
    // tying up the daemon.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(b"POST /synthesize HTTP/1.1\r\nHost: t\r\nContent-Length: 50\r\n\r\n{\"kind")
        .unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text)
        .expect("server closes the socket");
    assert_eq!(text, "", "a stalled body earns no response");

    // Connection threads are detached, so the daemon served everyone
    // else all along and is still healthy.
    let ok = post(addr, "/synthesize", &easy_body("alive"));
    assert_eq!(ok.status, 200, "{}", ok.body);

    daemon.drain();
    daemon.wait();
}

#[test]
fn a_disconnected_client_cancels_its_request() {
    let daemon = start(hard_opts());
    let addr = daemon.local_addr();

    let stream = post_open(addr, "/synthesize", &hard_body("doomed"));
    wait_for_state(addr, 1, "running", 200);
    drop(stream);

    let done = wait_for_state(addr, 1, "done", 400);
    let record = done.get("record").expect("record");
    assert_eq!(
        record.get("status").and_then(Json::as_str),
        Some("unsolved")
    );
    assert_eq!(
        record.get("stop_reason").and_then(Json::as_str),
        Some("cancelled"),
        "{done:?}"
    );
    let metrics = get(addr, "/metrics");
    assert!(
        metrics.body.contains("rmrls_requests_disconnected 1"),
        "{}",
        metrics.body
    );

    daemon.drain();
    daemon.wait();
}

#[test]
fn a_saturated_queue_sheds_with_429_and_degrades_health() {
    let opts = ServeOptions {
        queue_capacity: 1,
        ..hard_opts()
    };
    let daemon = start(opts);
    let addr = daemon.local_addr();

    // Fill the worker, then the queue.
    let _busy = post_open(addr, "/synthesize", &hard_body("busy"));
    wait_for_state(addr, 1, "running", 200);
    let _queued = post_open(addr, "/synthesize", &hard_body("queued"));
    for _ in 0..200 {
        let depth = get(addr, "/healthz")
            .json()
            .get("queue_depth")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if depth >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let shed = post(addr, "/synthesize", &easy_body("shed"));
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert_eq!(shed.header("Retry-After").as_deref(), Some("1"));

    // Backpressure flips /healthz to degraded for the duration.
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 503);
    assert_eq!(health.json().get("degraded"), Some(&Json::Bool(true)));

    daemon.abort();
    daemon.wait();
}

#[test]
fn drain_skips_queued_work_and_a_restart_replays_the_journal() {
    let dir = scratch("replay");
    let journal_path = dir.join("requests.jsonl").to_string_lossy().into_owned();
    let opts = ServeOptions {
        journal_path: Some(journal_path.clone()),
        ..hard_opts()
    };

    // First life: one completed request, one interrupted by abort.
    let daemon = start(opts.clone());
    let addr = daemon.local_addr();
    let warm = post(addr, "/synthesize", &easy_body("warm"));
    assert_eq!(warm.status, 200, "{}", warm.body);
    let interrupted = std::thread::spawn({
        let body = hard_body("interrupted");
        move || post(addr, "/synthesize", &body)
    });
    wait_for_state(addr, 2, "running", 200);
    daemon.abort();
    daemon.wait();
    let reply = interrupted.join().unwrap();
    assert_eq!(reply.status, 200);

    // The journal holds both submissions but only the first completion:
    // the aborted request is deliberately left open for replay.
    let (_handle, replay) = RequestJournal::open(&journal_path).expect("journal reopens");
    assert_eq!(replay.completed.len(), 1);
    assert_eq!(replay.completed[0].0, 1);
    assert_eq!(replay.pending.len(), 1);
    assert_eq!(replay.pending[0].0, 2);
    drop(_handle);

    // Second life: the interrupted request replays to completion, the
    // finished one is restored read-only, ids continue past both.
    let restart = ServeOptions {
        default_deadline: Some(Duration::from_millis(200)),
        ..opts
    };
    let daemon2 = start(restart);
    let addr2 = daemon2.local_addr();
    let replayed = wait_for_state(addr2, 2, "done", 400);
    assert!(replayed.get("record").is_some(), "{replayed:?}");
    let restored = get(addr2, &format!("/requests/{}", 1)).json();
    assert_eq!(restored.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(
        restored
            .get("record")
            .and_then(|r| r.get("status"))
            .and_then(Json::as_str),
        Some("solved")
    );
    let metrics = get(addr2, "/metrics");
    assert!(
        metrics.body.contains("rmrls_requests_replayed 1"),
        "{}",
        metrics.body
    );
    let next = post(addr2, "/synthesize", &easy_body("after"));
    assert_eq!(next.json().get("id").and_then(Json::as_u64), Some(3));

    daemon2.drain();
    daemon2.wait();

    // After the second life the journal is fully settled: nothing
    // left pending.
    let (_h, settled) = RequestJournal::open(&journal_path).expect("journal reopens");
    assert!(settled.pending.is_empty(), "{:?}", settled.pending);
    assert_eq!(settled.completed.len(), 3);
}
