//! Property tests for the flight recorder: trace records survive a
//! JSON round-trip byte-for-byte, the ring never exceeds its byte
//! budget, and phase enter/exit records keep stack discipline.

use proptest::prelude::*;
use rmrls_obs::{FlightRecorder, Json, RecorderSnapshot, TraceKind, TraceRecord};

/// Decodes a fuzz tuple into one of the eight record kinds. The string
/// payloads exercise JSON escaping: quotes, backslashes, control
/// characters, and non-ASCII.
fn kind_from(selector: u8, a: u64, b: u64, text: String) -> TraceKind {
    // Counts travel through `Json::uint`, which insists on exact f64
    // representability (< 2^53); real counts are far below that.
    let (a, b) = (a % (1 << 53), b % (1 << 53));
    match selector % 8 {
        0 => TraceKind::PhaseEnter { phase: text },
        1 => TraceKind::PhaseExit { phase: text },
        2 => TraceKind::Expand {
            depth: (a % u64::from(u32::MAX)) as u32,
            terms: b,
        },
        3 => TraceKind::Gauge {
            name: text,
            // Gauge values travel through f64; stay in the exactly
            // representable range like the real gauges do.
            value: (a as i64) % (1 << 50),
        },
        4 => TraceKind::CacheLookup { hit: a % 2 == 0 },
        5 => TraceKind::TierEscalate {
            from: text.clone(),
            to: text,
        },
        6 => TraceKind::MemoryShed {
            dropped_entries: a,
            live_terms: b,
        },
        _ => TraceKind::Anomaly {
            kind: "injected_fault".into(),
            site: text,
        },
    }
}

fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24).prop_map(|bytes| {
        bytes
            .iter()
            .map(|&b| match b % 8 {
                0 => '"',
                1 => '\\',
                2 => '\n',
                3 => '\u{1}',
                4 => 'é',
                5 => '𝄞',
                _ => (b % 26 + b'a') as char,
            })
            .collect()
    })
}

proptest! {
    /// Every record kind, with adversarial string payloads, round-trips
    /// through `rmrls_obs::json` text unchanged.
    #[test]
    fn trace_records_round_trip_through_json(
        ts in any::<u64>(),
        selector in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        text in text_strategy(),
    ) {
        // Timestamps travel through Json::uint, which is exact below
        // 2^53; recorder timestamps are microseconds, so cap likewise.
        let record = TraceRecord {
            ts_micros: ts % (1 << 53),
            kind: kind_from(selector, a, b, text),
        };
        let serialized = record.to_json().to_string();
        let parsed = Json::parse(&serialized).expect("export is valid JSON");
        let back = TraceRecord::from_json(&parsed);
        prop_assert_eq!(back.as_ref(), Some(&record), "{}", serialized);
    }

    /// Whatever is thrown at it, the ring's accounted bytes never
    /// exceed the budget, and every record is either retained or
    /// counted as dropped.
    #[test]
    fn ring_never_exceeds_its_byte_budget(
        budget in 0usize..2048,
        records in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), text_strategy()),
            0..64,
        ),
    ) {
        let recorder = FlightRecorder::new(budget);
        let total = records.len() as u64;
        for (selector, a, b, text) in records {
            recorder.record(kind_from(selector, a, b, text));
            prop_assert!(
                recorder.bytes_used() <= budget,
                "{} bytes used exceeds budget {}",
                recorder.bytes_used(),
                budget
            );
        }
        let snapshot = recorder.snapshot();
        prop_assert_eq!(snapshot.records.len() as u64 + snapshot.dropped, total);
        let recomputed: usize = snapshot.records.iter().map(TraceRecord::approx_bytes).sum();
        prop_assert_eq!(recomputed, snapshot.bytes_used);
    }

    /// Phases recorded from a well-nested caller come back properly
    /// nested: scanning the snapshot with a stack, every exit matches
    /// the innermost open phase and nothing is left open.
    #[test]
    fn phase_spans_nest_properly(shape in proptest::collection::vec(0u8..4, 1..24)) {
        let recorder = FlightRecorder::new(1 << 20);
        // Interpret the shape as a walk over a phase tree: each step
        // enters one of four phases and exits in LIFO order, with a
        // non-phase record interleaved to make sure they don't disturb
        // nesting.
        let names = ["dispatch", "scoring", "materialize", "dedup"];
        let mut open: Vec<&str> = Vec::new();
        for (i, &choice) in shape.iter().enumerate() {
            if choice < 2 || open.is_empty() {
                let name = names[usize::from(choice)];
                recorder.phase_enter(name);
                open.push(name);
            } else {
                recorder.record(TraceKind::Expand { depth: i as u32, terms: 1 });
                recorder.phase_exit(open.pop().unwrap());
            }
        }
        while let Some(name) = open.pop() {
            recorder.phase_exit(name);
        }

        let snapshot = recorder.snapshot();
        prop_assert_eq!(snapshot.dropped, 0);
        let mut stack: Vec<&str> = Vec::new();
        let mut last_ts = 0;
        for record in &snapshot.records {
            prop_assert!(record.ts_micros >= last_ts, "timestamps out of order");
            last_ts = record.ts_micros;
            match &record.kind {
                TraceKind::PhaseEnter { phase } => stack.push(phase),
                TraceKind::PhaseExit { phase } => {
                    let innermost = stack.pop();
                    prop_assert_eq!(innermost, Some(phase.as_str()), "crossed spans");
                }
                _ => {}
            }
        }
        prop_assert!(stack.is_empty(), "unclosed phases: {:?}", stack);
    }

    /// A snapshot with any record mix survives dump + reparse.
    #[test]
    fn snapshots_round_trip_through_dump_text(
        records in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), text_strategy()),
            0..32,
        ),
    ) {
        let recorder = FlightRecorder::new(1 << 20);
        for (selector, a, b, text) in records {
            recorder.record(kind_from(selector, a, b, text));
        }
        let snapshot = recorder.snapshot();
        let text = snapshot.to_json().to_string();
        let back = RecorderSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, snapshot);
    }
}
