//! Property tests for the lock-free metrics layer: histogram snapshot
//! merge forms a commutative monoid (commutative, associative, with
//! the empty snapshot as identity), and `SyncCounter`/`SyncGauge` stay
//! consistent under concurrent updates.
//!
//! Merge observations are integer-valued f64s: bucket counts are u64
//! sums (exact and associative), and the observation sum travels
//! through fixed-point accumulation, so equality here is exact — no
//! epsilon comparisons papering over drift.

use std::sync::Arc;

use proptest::prelude::*;
use rmrls_obs::{log2_bounds, SyncCounter, SyncGauge, SyncHistogram};

/// Observations that are exactly representable and exercise every
/// bucket of `log2_bounds(1.0, 64.0)`, including underflow and
/// overflow.
fn observations() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u64..256).prop_map(|v| v as f64), 0..64)
}

fn filled(values: &[f64]) -> SyncHistogram {
    let h = SyncHistogram::new(&log2_bounds(1.0, 64.0));
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// merge(a, b) == merge(b, a), and merging the empty histogram is
    /// the identity on both sides.
    #[test]
    fn histogram_merge_is_commutative_with_identity(
        a in observations(),
        b in observations(),
    ) {
        let (sa, sb) = (filled(&a).snapshot(), filled(&b).snapshot());
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));

        let empty = SyncHistogram::new(&log2_bounds(1.0, 64.0)).snapshot();
        prop_assert_eq!(sa.merge(&empty), sa.clone());
        prop_assert_eq!(empty.merge(&sa), sa);
    }

    /// merge(merge(a, b), c) == merge(a, merge(b, c)), and the merged
    /// snapshot equals recording every observation into one histogram.
    #[test]
    fn histogram_merge_is_associative_and_matches_single_recording(
        a in observations(),
        b in observations(),
        c in observations(),
    ) {
        let (sa, sb, sc) = (
            filled(&a).snapshot(),
            filled(&b).snapshot(),
            filled(&c).snapshot(),
        );
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        prop_assert_eq!(&left, &right);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let combined = filled(&all).snapshot();
        prop_assert_eq!(left, combined);
    }

    /// Counter increments from many threads are never lost: the final
    /// value is the exact sum of every per-thread contribution, and a
    /// mid-run read is a valid partial sum.
    #[test]
    fn counter_sums_exactly_across_threads(
        per_thread in proptest::collection::vec((1u64..64, 0u64..128), 1..8),
    ) {
        let counter = Arc::new(SyncCounter::new());
        let expected: u64 = per_thread.iter().map(|(incs, add)| incs + add).sum();
        std::thread::scope(|scope| {
            for &(incs, add) in &per_thread {
                let c = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..incs {
                        c.inc();
                    }
                    c.add(add);
                });
            }
            // A concurrent read sees some prefix of the total, never
            // more.
            prop_assert!(counter.get() <= expected);
            Ok(())
        })?;
        prop_assert_eq!(counter.get(), expected);
    }

    /// A gauge hammered from many threads lands on one of the written
    /// values, and its peak is the maximum ever written.
    #[test]
    fn gauge_last_write_wins_and_peak_is_exact(
        writes in proptest::collection::vec(
            proptest::collection::vec(0u64..1024, 1..16),
            1..8,
        ),
    ) {
        let gauge = Arc::new(SyncGauge::new());
        std::thread::scope(|scope| {
            for thread_writes in &writes {
                let g = Arc::clone(&gauge);
                scope.spawn(move || {
                    for &v in thread_writes {
                        g.set(v);
                    }
                });
            }
        });
        let finals: Vec<u64> = writes.iter().map(|w| *w.last().unwrap()).collect();
        prop_assert!(
            finals.contains(&gauge.get()),
            "final value {} is not any thread's last write {:?}",
            gauge.get(),
            finals
        );
        let max = writes.iter().flatten().copied().max().unwrap();
        prop_assert_eq!(gauge.peak(), max);
    }

    /// Concurrent histogram recording loses nothing: count and sum
    /// match the all-in-one-thread result exactly (fixed-point sum
    /// accumulation is order-independent).
    #[test]
    fn histogram_concurrent_recording_is_exact(
        per_thread in proptest::collection::vec(observations(), 1..8),
    ) {
        let h = Arc::new(SyncHistogram::new(&log2_bounds(1.0, 64.0)));
        std::thread::scope(|scope| {
            for values in &per_thread {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for &v in values {
                        h.record(v);
                    }
                });
            }
        });
        let all: Vec<f64> = per_thread.iter().flatten().copied().collect();
        prop_assert_eq!(h.snapshot(), filled(&all).snapshot());
    }
}
