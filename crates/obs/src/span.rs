//! Monotonic span timing.

use std::time::{Duration, Instant};

/// Measures a span of work against the monotonic clock.
///
/// ```
/// use rmrls_obs::SpanTimer;
/// let t = SpanTimer::start();
/// // ... work ...
/// let elapsed = t.elapsed();
/// assert!(elapsed >= std::time::Duration::ZERO);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    /// Starts timing now.
    pub fn start() -> SpanTimer {
        SpanTimer {
            start: Instant::now(),
        }
    }

    /// Time since the span started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Restarts the span, returning the time the previous span covered.
    /// Useful for consecutive phases (per-restart timing) without
    /// allocating a timer per phase.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let elapsed = now - self.start;
        self.start = now;
        elapsed
    }
}

impl Default for SpanTimer {
    fn default() -> Self {
        SpanTimer::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let t = SpanTimer::start();
        let a = t.elapsed();
        let b = t.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn lap_resets_the_span() {
        let mut t = SpanTimer::start();
        std::thread::sleep(Duration::from_millis(1));
        let first = t.lap();
        assert!(first >= Duration::from_millis(1));
        // The new span starts fresh; it can't already exceed the first
        // lap plus its own runtime by much, but the cheap invariant to
        // assert is simply that it restarted below the first lap
        // immediately after the call.
        assert!(t.elapsed() <= first + Duration::from_millis(50));
    }
}
