//! A minimal hand-rolled JSON value type with writer and parser.
//!
//! The run-report serializer needs exactly this much JSON and nothing
//! more: objects with string keys, arrays, strings (fully escaped),
//! finite numbers, booleans, and null. The parser exists so tests can
//! round-trip reports (`--report` file → [`Json`] → field checks)
//! without an external crate.

use std::fmt;

/// A JSON document fragment.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Integral values print without a fraction so
    /// counters round-trip exactly (up to 2^53).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for `u64` counters. Values above 2^53
    /// would lose precision in an `f64`; panic loudly instead of
    /// corrupting a report (unreachable for realistic run lengths).
    pub fn uint(v: u64) -> Json {
        assert!(v <= (1 << 53), "counter too large for JSON number: {v}");
        Json::Num(v as f64)
    }

    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes into `out` as compact single-line JSON.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset context.
#[derive(Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-path a run of plain UTF-8 up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xd800..0xdc00).contains(&cp) {
                                // High surrogate: must be followed by \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                s.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else {
                                s.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid code point"))?,
                                );
                            }
                        }
                        other => {
                            return Err(self.err(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + digit;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_documents() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("rmrls")),
            ("count".into(), Json::uint(42)),
            ("ok".into(), Json::Bool(true)),
            ("items".into(), Json::Arr(vec![Json::Null, Json::Num(1.5)])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"rmrls","count":42,"ok":true,"items":[null,1.5]}"#
        );
    }

    #[test]
    fn escapes_strings_correctly() {
        let mut out = String::new();
        Json::str("a\"b\\c\nd\te\r\u{08}\u{0c}\u{01}z").write(&mut out);
        assert_eq!(out, r#""a\"b\\c\nd\te\r\b\f\u0001z""#);
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let original = "quote\" backslash\\ newline\n tab\t ctrl\u{01} unicode λ→∮";
        let serialized = Json::str(original).to_string();
        let parsed = Json::parse(&serialized).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn parses_nested_documents() {
        let doc =
            Json::parse(r#" { "a" : [ 1 , -2.5 , true , null ] , "b" : { "c" : "x" } } "#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parses_surrogate_pairs() {
        let doc = Json::parse(r#""\ud83d\ude00 \u00e9""#).unwrap();
        assert_eq!(doc.as_str(), Some("😀 é"));
    }

    #[test]
    fn integral_numbers_round_trip_exactly() {
        let doc = Json::uint(9_007_199_254_740_992); // 2^53
        let parsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(9_007_199_254_740_992));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "12 34",
            "nul",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-3.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
    }
}
